//! Block compression codecs.
//!
//! Avro container files may compress each data block. We implement a
//! run-length codec in the PackBits style: long runs of a repeated byte
//! (common in sparse/NULL-heavy or low-cardinality data) collapse to a
//! few bytes; incompressible data costs at most one marker byte per 127
//! literals.

use common::error::{Error, Result};

/// Available block codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// No compression (Avro's "null" codec).
    #[default]
    Null,
    /// Run-length PackBits-style compression.
    Rle,
}

impl Codec {
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Null => "null",
            Codec::Rle => "rle",
        }
    }

    pub fn from_name(name: &str) -> Result<Codec> {
        match name {
            "null" => Ok(Codec::Null),
            "rle" => Ok(Codec::Rle),
            other => Err(Error::Parse(format!("unknown codec {other:?}"))),
        }
    }

    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::Null => data.to_vec(),
            Codec::Rle => rle_compress(data),
        }
    }

    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>> {
        match self {
            Codec::Null => Ok(data.to_vec()),
            Codec::Rle => rle_decompress(data),
        }
    }
}

/// PackBits-style run-length encoding:
/// * control byte `0x00..=0x7f` (n): copy the next `n+1` literal bytes,
/// * control byte `0x80..=0xff` (n): repeat the next byte `n - 0x7d`
///   times (runs of 3..=130).
fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    let mut literal_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut start = from;
        while start < to {
            let len = (to - start).min(128);
            out.push((len - 1) as u8);
            out.extend_from_slice(&data[start..start + len]);
            start += len;
        }
    };

    while i < data.len() {
        // Measure the run starting at i.
        let byte = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == byte && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, literal_start, i, data);
            out.push((run - 3 + 0x80) as u8);
            out.push(byte);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, literal_start, data.len(), data);
    out
}

fn rle_decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let ctrl = data[i];
        i += 1;
        if ctrl < 0x80 {
            let len = ctrl as usize + 1;
            if i + len > data.len() {
                return Err(Error::Parse("rle literal overruns input".into()));
            }
            out.extend_from_slice(&data[i..i + len]);
            i += len;
        } else {
            let count = (ctrl - 0x80) as usize + 3;
            let Some(&byte) = data.get(i) else {
                return Err(Error::Parse("rle run missing byte".into()));
            };
            i += 1;
            out.resize(out.len() + count, byte);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let compressed = Codec::Rle.compress(data);
        let back = Codec::Rle.decompress(&compressed).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(&[]);
        round_trip(&[1]);
        round_trip(&[1, 2]);
        round_trip(&[1, 1]);
    }

    #[test]
    fn long_runs_compress() {
        let data = vec![0u8; 10_000];
        let compressed = Codec::Rle.compress(&data);
        assert!(compressed.len() < 200, "compressed to {}", compressed.len());
        round_trip(&data);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut data = Vec::new();
        for i in 0..50u8 {
            data.push(i);
            data.extend(std::iter::repeat_n(i, (i as usize) % 7));
        }
        round_trip(&data);
    }

    #[test]
    fn incompressible_overhead_bounded() {
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) as u8)
            .collect();
        let compressed = Codec::Rle.compress(&data);
        // At most ~1% expansion on pathological input.
        assert!(compressed.len() <= data.len() + data.len() / 64 + 16);
        round_trip(&data);
    }

    #[test]
    fn run_of_exactly_130_and_131() {
        round_trip(&[7u8; 130]);
        round_trip(&[7u8; 131]);
    }

    #[test]
    fn truncated_stream_is_error() {
        let compressed = Codec::Rle.compress(&[1, 2, 3, 4, 5]);
        assert!(Codec::Rle
            .decompress(&compressed[..compressed.len() - 1])
            .is_err());
        assert!(Codec::Rle.decompress(&[0x85]).is_err());
    }

    #[test]
    fn null_codec_is_identity() {
        let data = vec![1, 2, 3];
        assert_eq!(Codec::Null.compress(&data), data);
        assert_eq!(Codec::Null.decompress(&data).unwrap(), data);
    }

    #[test]
    fn codec_names_round_trip() {
        for c in [Codec::Null, Codec::Rle] {
            assert_eq!(Codec::from_name(c.name()).unwrap(), c);
        }
        assert!(Codec::from_name("snappy").is_err());
    }
}
