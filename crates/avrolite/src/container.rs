//! Object-container-style files: header, data blocks, sync markers.

use common::error::{Error, Result};
use common::{Row, Value};

use crate::codec::Codec;
use crate::schema::{AvroSchema, AvroType};
use crate::varint::{read_long, write_long};

const MAGIC: &[u8; 4] = b"Avr\x01";
const SYNC: &[u8; 16] = b"fabric-sync-mark";
/// Rows per data block; small enough to bound decode memory, large
/// enough to amortize block framing.
const DEFAULT_BLOCK_ROWS: usize = 4096;

/// Encode one row into `out` using the Avro binary encoding: each field
/// is a `["null", T]` union — a zigzag branch index (0 = null) followed
/// by the branch value.
pub(crate) fn encode_row_raw(schema: &AvroSchema, row: &Row, out: &mut Vec<u8>) -> Result<()> {
    if row.len() != schema.fields.len() {
        return Err(Error::SchemaMismatch(format!(
            "row has {} values, avro schema has {} fields",
            row.len(),
            schema.fields.len()
        )));
    }
    for (value, (name, ty)) in row.values().iter().zip(schema.fields.iter()) {
        match value {
            Value::Null => write_long(0, out),
            _ => {
                write_long(1, out);
                match (ty, value) {
                    (AvroType::Boolean, Value::Boolean(b)) => out.push(*b as u8),
                    (AvroType::Long, Value::Int64(i)) => write_long(*i, out),
                    (AvroType::Double, Value::Float64(f)) => {
                        out.extend_from_slice(&f.to_le_bytes())
                    }
                    // Int widens to double on the wire, matching column
                    // affinity in the engines.
                    (AvroType::Double, Value::Int64(i)) => {
                        out.extend_from_slice(&(*i as f64).to_le_bytes())
                    }
                    (AvroType::String, Value::Varchar(s)) => {
                        write_long(s.len() as i64, out);
                        out.extend_from_slice(s.as_bytes());
                    }
                    (ty, v) => {
                        return Err(Error::TypeMismatch {
                            expected: ty.avro_name().to_string(),
                            found: v.type_name().to_string(),
                        });
                    }
                }
            }
        }
        let _ = name;
    }
    Ok(())
}

/// Decode one row from `input`; returns the row and bytes consumed.
pub(crate) fn decode_row_raw(schema: &AvroSchema, input: &[u8]) -> Result<(Row, usize)> {
    let mut pos = 0usize;
    let mut values = Vec::with_capacity(schema.fields.len());
    for (name, ty) in &schema.fields {
        let (branch, n) = read_long(&input[pos..])?;
        pos += n;
        match branch {
            0 => values.push(Value::Null),
            1 => match ty {
                AvroType::Boolean => {
                    let Some(&b) = input.get(pos) else {
                        return Err(Error::Parse(format!("truncated boolean field {name}")));
                    };
                    pos += 1;
                    values.push(Value::Boolean(b != 0));
                }
                AvroType::Long => {
                    let (v, n) = read_long(&input[pos..])?;
                    pos += n;
                    values.push(Value::Int64(v));
                }
                AvroType::Double => {
                    let Some(bytes) = input.get(pos..pos + 8) else {
                        return Err(Error::Parse(format!("truncated double field {name}")));
                    };
                    pos += 8;
                    values.push(Value::Float64(f64::from_le_bytes(
                        bytes.try_into().expect("slice is 8 bytes"),
                    )));
                }
                AvroType::String => {
                    let (len, n) = read_long(&input[pos..])?;
                    pos += n;
                    if len < 0 {
                        return Err(Error::Parse(format!("negative string length in {name}")));
                    }
                    let len = len as usize;
                    let Some(bytes) = input.get(pos..pos + len) else {
                        return Err(Error::Parse(format!("truncated string field {name}")));
                    };
                    pos += len;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|e| Error::Parse(format!("bad utf8 in {name}: {e}")))?;
                    values.push(Value::Varchar(s.to_string()));
                }
            },
            other => {
                return Err(Error::Parse(format!(
                    "bad union branch {other} for field {name}"
                )))
            }
        }
    }
    Ok((Row::new(values), pos))
}

/// Streaming writer producing a container file in memory.
pub struct Writer {
    schema: AvroSchema,
    codec: Codec,
    block_rows: usize,
    out: Vec<u8>,
    pending: Vec<u8>,
    pending_rows: usize,
    rows_written: u64,
}

impl Writer {
    pub fn new(schema: AvroSchema, codec: Codec) -> Writer {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(MAGIC);
        let schema_json = schema.to_json();
        write_long(schema_json.len() as i64, &mut out);
        out.extend_from_slice(schema_json.as_bytes());
        let codec_name = codec.name();
        write_long(codec_name.len() as i64, &mut out);
        out.extend_from_slice(codec_name.as_bytes());
        out.extend_from_slice(SYNC);
        Writer {
            schema,
            codec,
            block_rows: DEFAULT_BLOCK_ROWS,
            out,
            pending: Vec::new(),
            pending_rows: 0,
            rows_written: 0,
        }
    }

    /// Override the rows-per-block threshold (mostly for tests).
    pub fn with_block_rows(mut self, rows: usize) -> Writer {
        assert!(rows > 0);
        self.block_rows = rows;
        self
    }

    pub fn schema(&self) -> &AvroSchema {
        &self.schema
    }

    pub fn write_row(&mut self, row: &Row) -> Result<()> {
        encode_row_raw(&self.schema, row, &mut self.pending)?;
        self.pending_rows += 1;
        self.rows_written += 1;
        if self.pending_rows >= self.block_rows {
            self.flush_block();
        }
        Ok(())
    }

    fn flush_block(&mut self) {
        if self.pending_rows == 0 {
            return;
        }
        let payload = self.codec.compress(&self.pending);
        write_long(self.pending_rows as i64, &mut self.out);
        write_long(payload.len() as i64, &mut self.out);
        self.out.extend_from_slice(&payload);
        self.out.extend_from_slice(SYNC);
        self.pending.clear();
        self.pending_rows = 0;
    }

    pub fn rows_written(&self) -> u64 {
        self.rows_written
    }

    /// Finish the file and return its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_block();
        self.out
    }
}

/// Reader over a container file.
pub struct Reader {
    schema: AvroSchema,
    rows: std::vec::IntoIter<Row>,
}

impl Reader {
    pub fn new(data: &[u8]) -> Result<Reader> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(Error::Parse("bad avro container magic".into()));
        }
        let mut pos = 4usize;
        let (schema_len, n) = read_long(&data[pos..])?;
        pos += n;
        let schema_json = std::str::from_utf8(
            data.get(pos..pos + schema_len as usize)
                .ok_or_else(|| Error::Parse("truncated schema json".into()))?,
        )
        .map_err(|e| Error::Parse(format!("schema json not utf8: {e}")))?;
        pos += schema_len as usize;
        let schema = AvroSchema::from_json(schema_json)?;

        let (codec_len, n) = read_long(&data[pos..])?;
        pos += n;
        let codec_name = std::str::from_utf8(
            data.get(pos..pos + codec_len as usize)
                .ok_or_else(|| Error::Parse("truncated codec name".into()))?,
        )
        .map_err(|e| Error::Parse(format!("codec name not utf8: {e}")))?;
        pos += codec_len as usize;
        let codec = Codec::from_name(codec_name)?;

        expect_sync(data, &mut pos)?;

        let mut rows = Vec::new();
        while pos < data.len() {
            let (count, n) = read_long(&data[pos..])?;
            pos += n;
            let (payload_len, n) = read_long(&data[pos..])?;
            pos += n;
            let payload = data
                .get(pos..pos + payload_len as usize)
                .ok_or_else(|| Error::Parse("truncated block payload".into()))?;
            pos += payload_len as usize;
            let decoded = codec.decompress(payload)?;
            let mut off = 0usize;
            for _ in 0..count {
                let (row, n) = decode_row_raw(&schema, &decoded[off..])?;
                off += n;
                rows.push(row);
            }
            if off != decoded.len() {
                return Err(Error::Parse(format!(
                    "block has {} trailing bytes after {count} rows",
                    decoded.len() - off
                )));
            }
            expect_sync(data, &mut pos)?;
        }

        Ok(Reader {
            schema,
            rows: rows.into_iter(),
        })
    }

    pub fn schema(&self) -> &AvroSchema {
        &self.schema
    }

    /// Read all remaining rows.
    pub fn read_all(self) -> Vec<Row> {
        self.rows.collect()
    }
}

impl Iterator for Reader {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }
}

fn expect_sync(data: &[u8], pos: &mut usize) -> Result<()> {
    let Some(marker) = data.get(*pos..*pos + 16) else {
        return Err(Error::Parse("missing sync marker".into()));
    };
    if marker != SYNC {
        return Err(Error::Parse("corrupt sync marker".into()));
    }
    *pos += 16;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::row;
    use common::{DataType, Schema};

    fn schema() -> AvroSchema {
        AvroSchema::from_schema(
            "t",
            &Schema::from_pairs(&[
                ("id", DataType::Int64),
                ("x", DataType::Float64),
                ("ok", DataType::Boolean),
                ("s", DataType::Varchar),
            ]),
        )
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            row![1i64, 1.5f64, true, "hello"],
            Row::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]),
            row![-42i64, -0.25f64, false, "κόσμος"],
        ]
    }

    #[test]
    fn container_round_trip_null_codec() {
        let mut w = Writer::new(schema(), Codec::Null);
        for r in sample_rows() {
            w.write_row(&r).unwrap();
        }
        assert_eq!(w.rows_written(), 3);
        let bytes = w.finish();
        let reader = Reader::new(&bytes).unwrap();
        assert_eq!(reader.schema(), &schema());
        assert_eq!(reader.read_all(), sample_rows());
    }

    #[test]
    fn container_round_trip_rle_codec_many_blocks() {
        let mut w = Writer::new(schema(), Codec::Rle).with_block_rows(2);
        let rows: Vec<Row> = (0..7)
            .map(|i| row![i as i64, 0.0f64, i % 2 == 0, "xxxxxxxxxxxxxxxx"])
            .collect();
        for r in &rows {
            w.write_row(r).unwrap();
        }
        let bytes = w.finish();
        assert_eq!(Reader::new(&bytes).unwrap().read_all(), rows);
    }

    #[test]
    fn int_widens_to_double_column() {
        let s = AvroSchema::new("t", vec![("x".into(), AvroType::Double)]);
        let mut w = Writer::new(s.clone(), Codec::Null);
        w.write_row(&row![5i64]).unwrap();
        let rows = Reader::new(&w.finish()).unwrap().read_all();
        assert_eq!(rows[0], row![5.0f64]);
    }

    #[test]
    fn empty_file_round_trip() {
        let w = Writer::new(schema(), Codec::Rle);
        let bytes = w.finish();
        assert!(Reader::new(&bytes).unwrap().read_all().is_empty());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut w = Writer::new(schema(), Codec::Null);
        assert!(w.write_row(&row![1i64]).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = AvroSchema::new("t", vec![("b".into(), AvroType::Boolean)]);
        let mut w = Writer::new(s, Codec::Null);
        assert!(w.write_row(&row!["not a bool"]).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut w = Writer::new(schema(), Codec::Null);
        w.write_row(&sample_rows()[0]).unwrap();
        let mut bytes = w.finish();
        bytes[0] = b'X';
        assert!(Reader::new(&bytes).is_err());
    }

    #[test]
    fn corrupt_sync_marker_rejected() {
        let mut w = Writer::new(schema(), Codec::Null);
        w.write_row(&sample_rows()[0]).unwrap();
        let mut bytes = w.finish();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(Reader::new(&bytes).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let mut w = Writer::new(schema(), Codec::Null);
        for r in sample_rows() {
            w.write_row(&r).unwrap();
        }
        let bytes = w.finish();
        assert!(Reader::new(&bytes[..bytes.len() - 20]).is_err());
    }
}
