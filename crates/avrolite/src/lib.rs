//! Avro-style binary row serialization.
//!
//! The paper's S2V path encodes each task's partition into the Avro
//! binary format before streaming it into the database's bulk-load COPY
//! utility (Sec. 3.2.2): a binary format needs no delimiter choice for
//! arbitrary text data and its blocks can be compressed. This crate
//! implements the relevant subset from scratch:
//!
//! * record schemas over the fabric's four primitive types, with every
//!   field nullable via the Avro `["null", T]` union convention,
//! * the binary encoding — zigzag varint longs, little-endian doubles,
//!   length-prefixed UTF-8 strings,
//! * an object-container-style file: header with schema JSON and codec,
//!   data blocks of `(row count, byte length, payload)` followed by a
//!   sync marker, with an optional run-length ("packbits") block codec.

pub mod codec;
pub mod container;
pub mod schema;
pub mod varint;

pub use codec::Codec;
pub use container::{Reader, Writer};
pub use schema::{AvroSchema, AvroType};

use common::{Result, Row};

/// Encode a single row (without container framing) into `out`.
pub fn encode_row(schema: &AvroSchema, row: &Row, out: &mut Vec<u8>) -> Result<()> {
    container::encode_row_raw(schema, row, out)
}

/// Decode a single row from `input`, returning the row and the number of
/// bytes consumed.
pub fn decode_row(schema: &AvroSchema, input: &[u8]) -> Result<(Row, usize)> {
    container::decode_row_raw(schema, input)
}
