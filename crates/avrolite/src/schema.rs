//! Avro record schemas over the fabric's primitive types.

use common::error::{Error, Result};
use common::{DataType, Field, Schema};

/// Avro primitive types used by the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvroType {
    Boolean,
    Long,
    Double,
    String,
}

impl AvroType {
    pub fn avro_name(&self) -> &'static str {
        match self {
            AvroType::Boolean => "boolean",
            AvroType::Long => "long",
            AvroType::Double => "double",
            AvroType::String => "string",
        }
    }

    pub fn from_avro_name(name: &str) -> Result<AvroType> {
        match name {
            "boolean" => Ok(AvroType::Boolean),
            "long" => Ok(AvroType::Long),
            "double" => Ok(AvroType::Double),
            "string" => Ok(AvroType::String),
            other => Err(Error::Parse(format!("unknown avro type {other:?}"))),
        }
    }

    pub fn to_data_type(&self) -> DataType {
        match self {
            AvroType::Boolean => DataType::Boolean,
            AvroType::Long => DataType::Int64,
            AvroType::Double => DataType::Float64,
            AvroType::String => DataType::Varchar,
        }
    }

    pub fn from_data_type(t: DataType) -> AvroType {
        match t {
            DataType::Boolean => AvroType::Boolean,
            DataType::Int64 => AvroType::Long,
            DataType::Float64 => AvroType::Double,
            DataType::Varchar => AvroType::String,
        }
    }
}

/// A record schema. All fields are nullable unions `["null", T]`, which
/// is how the real connector encodes tabular data with SQL NULLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvroSchema {
    pub name: String,
    pub fields: Vec<(String, AvroType)>,
}

impl AvroSchema {
    pub fn new(name: impl Into<String>, fields: Vec<(String, AvroType)>) -> AvroSchema {
        AvroSchema {
            name: name.into(),
            fields,
        }
    }

    pub fn from_schema(name: impl Into<String>, schema: &Schema) -> AvroSchema {
        AvroSchema {
            name: name.into(),
            fields: schema
                .fields()
                .iter()
                .map(|f| (f.name.clone(), AvroType::from_data_type(f.dtype)))
                .collect(),
        }
    }

    pub fn to_schema(&self) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|(n, t)| Field::new(n.clone(), t.to_data_type()))
                .collect(),
        )
    }

    /// Render the schema as Avro's canonical JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"record\",\"name\":\"{}\",\"fields\":[",
            escape_json(&self.name)
        ));
        for (i, (name, ty)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"type\":[\"null\",\"{}\"]}}",
                escape_json(name),
                ty.avro_name()
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse the canonical JSON form emitted by [`AvroSchema::to_json`].
    ///
    /// This is a purpose-built parser for our own canonical output (a
    /// container file must be readable by the peer that wrote it), not a
    /// general JSON parser.
    pub fn from_json(json: &str) -> Result<AvroSchema> {
        let name = extract_after(json, "\"name\":\"")
            .ok_or_else(|| Error::Parse("avro schema json missing record name".into()))?;
        let fields_start = json
            .find("\"fields\":[")
            .ok_or_else(|| Error::Parse("avro schema json missing fields".into()))?
            + "\"fields\":[".len();
        let fields_json = &json[fields_start..];
        let mut fields = Vec::new();
        let mut rest = fields_json;
        while let Some(start) = rest.find("{\"name\":\"") {
            let after = &rest[start + "{\"name\":\"".len()..];
            let Some(name_end) = find_unescaped_quote(after) else {
                return Err(Error::Parse("unterminated field name".into()));
            };
            let fname = unescape_json(&after[..name_end]);
            let after_name = &after[name_end..];
            let ty_marker = "\"type\":[\"null\",\"";
            let Some(ty_start) = after_name.find(ty_marker) else {
                return Err(Error::Parse("field missing nullable union type".into()));
            };
            let ty_str = &after_name[ty_start + ty_marker.len()..];
            let Some(ty_end) = ty_str.find('"') else {
                return Err(Error::Parse("unterminated field type".into()));
            };
            fields.push((fname, AvroType::from_avro_name(&ty_str[..ty_end])?));
            rest = &ty_str[ty_end..];
        }
        Ok(AvroSchema { name, fields })
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn find_unescaped_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn extract_after(json: &str, marker: &str) -> Option<String> {
    let start = json.find(marker)? + marker.len();
    let rest = &json[start..];
    let end = find_unescaped_quote(rest)?;
    Some(unescape_json(&rest[..end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AvroSchema {
        AvroSchema::new(
            "tweets",
            vec![
                ("tweet_id".into(), AvroType::Long),
                ("tweet_text".into(), AvroType::String),
            ],
        )
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let json = s.to_json();
        assert!(json.contains("\"type\":\"record\""));
        assert!(json.contains("[\"null\",\"long\"]"));
        assert_eq!(AvroSchema::from_json(&json).unwrap(), s);
    }

    #[test]
    fn json_round_trip_with_special_chars() {
        let s = AvroSchema::new("weird\"name", vec![("col\\umn".into(), AvroType::Double)]);
        assert_eq!(AvroSchema::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn conversion_to_and_from_common_schema() {
        let common = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("x", DataType::Float64),
            ("ok", DataType::Boolean),
            ("s", DataType::Varchar),
        ]);
        let avro = AvroSchema::from_schema("t", &common);
        assert_eq!(avro.fields[0].1, AvroType::Long);
        assert_eq!(avro.to_schema(), common);
    }

    #[test]
    fn unknown_type_is_error() {
        assert!(AvroType::from_avro_name("bytes").is_err());
    }
}
