//! Avro's variable-length zigzag integer encoding.

use common::error::{Error, Result};

/// Zigzag-map a signed long onto an unsigned one (small magnitudes →
/// small codes).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append the zigzag varint encoding of `v` to `out`.
pub fn write_long(v: i64, out: &mut Vec<u8>) {
    let mut z = zigzag(v);
    loop {
        let byte = (z & 0x7f) as u8;
        z >>= 7;
        if z == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a zigzag varint long from the front of `input`, returning the
/// value and the number of bytes consumed.
pub fn read_long(input: &[u8]) -> Result<(i64, usize)> {
    let mut acc: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if shift >= 64 {
            return Err(Error::Parse("varint too long".into()));
        }
        acc |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((unzigzag(acc), i + 1));
        }
        shift += 7;
    }
    Err(Error::Parse("truncated varint".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_examples_from_avro_spec() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(2), 4);
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            127,
            128,
            -128,
            300,
            -300,
            1 << 20,
            i64::MAX,
            i64::MIN,
        ] {
            let mut buf = Vec::new();
            write_long(v, &mut buf);
            let (back, n) = read_long(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in -64i64..=63 {
            let mut buf = Vec::new();
            write_long(v, &mut buf);
            assert_eq!(buf.len(), 1, "value {v} took {} bytes", buf.len());
        }
    }

    #[test]
    fn truncated_input_is_error() {
        let mut buf = Vec::new();
        write_long(i64::MAX, &mut buf);
        assert!(read_long(&buf[..buf.len() - 1]).is_err());
        assert!(read_long(&[]).is_err());
    }

    #[test]
    fn overlong_varint_is_error() {
        let buf = [0x80u8; 11];
        assert!(read_long(&buf).is_err());
    }
}
