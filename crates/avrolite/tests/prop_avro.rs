//! Property tests: arbitrary rows survive the container round trip under
//! both codecs, and the RLE codec is an exact inverse pair.

use avrolite::schema::{AvroSchema, AvroType};
use avrolite::{Codec, Reader, Writer};
use common::{Row, Value};
use proptest::prelude::*;

fn arb_avro_type() -> impl Strategy<Value = AvroType> {
    prop_oneof![
        Just(AvroType::Boolean),
        Just(AvroType::Long),
        Just(AvroType::Double),
        Just(AvroType::String),
    ]
}

fn arb_value_for(ty: AvroType) -> BoxedStrategy<Value> {
    match ty {
        AvroType::Boolean => {
            prop_oneof![Just(Value::Null), any::<bool>().prop_map(Value::Boolean)].boxed()
        }
        AvroType::Long => {
            prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Int64)].boxed()
        }
        AvroType::Double => prop_oneof![
            Just(Value::Null),
            any::<f64>()
                .prop_filter("finite", |f| f.is_finite())
                .prop_map(Value::Float64)
        ]
        .boxed(),
        AvroType::String => {
            prop_oneof![Just(Value::Null), ".{0,40}".prop_map(Value::Varchar)].boxed()
        }
    }
}

fn arb_schema_and_rows() -> impl Strategy<Value = (AvroSchema, Vec<Row>)> {
    proptest::collection::vec(arb_avro_type(), 1..6).prop_flat_map(|types| {
        let schema = AvroSchema::new(
            "t",
            types
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("f{i}"), *t))
                .collect(),
        );
        let row_strategy = types
            .iter()
            .map(|t| arb_value_for(*t))
            .collect::<Vec<_>>()
            .prop_map(Row::new);
        let rows = proptest::collection::vec(row_strategy, 0..30);
        (Just(schema), rows)
    })
}

proptest! {
    #[test]
    fn container_round_trip((schema, rows) in arb_schema_and_rows(), use_rle in any::<bool>()) {
        let codec = if use_rle { Codec::Rle } else { Codec::Null };
        let mut w = Writer::new(schema.clone(), codec).with_block_rows(5);
        for r in &rows {
            w.write_row(r).unwrap();
        }
        let bytes = w.finish();
        let reader = Reader::new(&bytes).unwrap();
        prop_assert_eq!(reader.schema(), &schema);
        prop_assert_eq!(reader.read_all(), rows);
    }

    #[test]
    fn rle_codec_round_trip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let compressed = Codec::Rle.compress(&data);
        prop_assert_eq!(Codec::Rle.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn rle_compresses_runs(byte in any::<u8>(), len in 100usize..1000) {
        let data = vec![byte; len];
        let compressed = Codec::Rle.compress(&data);
        // Pure runs collapse to 2 bytes per 130 input bytes.
        prop_assert!(compressed.len() <= data.len() / 16 + 32);
    }
}
