//! Native DFS read/write for the compute engine (paper Sec. 4.7.2).
//!
//! Writes emit one columnar part-file per partition under the output
//! directory; reads produce one partition per part-file (the paper's
//! Spark defaults to one partition per HDFS *block*; the benchmark
//! harness models block-grained parallelism analytically when scaling
//! up to paper sizes). There is no pushdown into storage: filters and
//! projections are applied after the full bytes are read — storage is
//! dumb, which is exactly the trade-off Fig. 12 probes.

use std::sync::Arc;

use common::expr::Expr;
use common::{Row, Schema};
use dfslite::{colfile, DfsClusterSim};
use netsim::record::NodeRef;
use sparklet::rdd::PartitionSource;
use sparklet::{
    DataFrame, DataSourceProvider, Options, Rdd, SaveMode, ScanRelation, SparkContext, SparkError,
    SparkResult,
};

/// Format name to register under.
pub const DFS_FORMAT: &str = "dfs.colfile";

/// The provider.
pub struct DfsSource {
    dfs: Arc<DfsClusterSim>,
}

impl DfsSource {
    pub fn new(dfs: Arc<DfsClusterSim>) -> Arc<DfsSource> {
        Arc::new(DfsSource { dfs })
    }

    pub fn register(ctx: &SparkContext, dfs: Arc<DfsClusterSim>) {
        ctx.register_format(DFS_FORMAT, DfsSource::new(dfs));
    }
}

fn dir_prefix(path: &str) -> String {
    format!("{}/", path.trim_end_matches('/'))
}

struct DfsRelation {
    dfs: Arc<DfsClusterSim>,
    files: Vec<String>,
    schema: Schema,
}

struct DfsScanSource {
    dfs: Arc<DfsClusterSim>,
    files: Vec<String>,
    schema: Schema,
    projection: Option<Vec<usize>>,
    filters: Vec<Expr>,
    compute_nodes: usize,
}

impl PartitionSource<Row> for DfsScanSource {
    fn num_partitions(&self) -> usize {
        self.files.len()
    }

    fn compute(&self, partition: usize) -> SparkResult<Vec<Row>> {
        let reader = NodeRef::Compute(partition % self.compute_nodes);
        let bytes = self
            .dfs
            .read(&self.files[partition], reader, Some(partition as u64))
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        let (_, rows) =
            colfile::read_all(&bytes).map_err(|e| SparkError::DataSource(e.to_string()))?;
        self.dfs.recorder().work(
            Some(partition as u64),
            reader,
            "colfile_decode",
            rows.len() as u64,
            bytes.len() as u64,
        );
        // Filters/projection apply *after* I/O — no storage pushdown.
        let bound: Vec<Expr> = self
            .filters
            .iter()
            .map(|f| f.bind(&self.schema))
            .collect::<Result<_, _>>()
            .map_err(SparkError::Data)?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let keep = bound
                .iter()
                .try_fold(true, |acc, f| f.matches(&row).map(|m| acc && m))
                .map_err(SparkError::Data)?;
            if !keep {
                continue;
            }
            out.push(match &self.projection {
                Some(idx) => row.into_projected(idx),
                None => row,
            });
        }
        Ok(out)
    }
}

impl ScanRelation for DfsRelation {
    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn scan(
        &self,
        ctx: &SparkContext,
        projection: Option<&[String]>,
        filters: &[Expr],
    ) -> SparkResult<Rdd<Row>> {
        let projection_idx = match projection {
            Some(cols) => Some(
                cols.iter()
                    .map(|c| self.schema.index_of(c))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(SparkError::Data)?,
            ),
            None => None,
        };
        let source = DfsScanSource {
            dfs: Arc::clone(&self.dfs),
            files: self.files.clone(),
            schema: self.schema.clone(),
            projection: projection_idx,
            filters: filters.to_vec(),
            compute_nodes: ctx.conf().nodes,
        };
        Ok(Rdd::from_source(ctx.clone(), Arc::new(source)))
    }
}

impl DataSourceProvider for DfsSource {
    fn create_relation(
        &self,
        _ctx: &SparkContext,
        options: &Options,
    ) -> SparkResult<Arc<dyn ScanRelation>> {
        let path = options.require("path")?;
        let files = self.dfs.list(&dir_prefix(path));
        if files.is_empty() {
            return Err(SparkError::DataSource(format!(
                "no part files under {path}"
            )));
        }
        // Schema from the first part-file's footer.
        let head = self
            .dfs
            .read(&files[0], NodeRef::Client, None)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        let meta = colfile::read_meta(&head).map_err(|e| SparkError::DataSource(e.to_string()))?;
        Ok(Arc::new(DfsRelation {
            dfs: Arc::clone(&self.dfs),
            files,
            schema: meta.schema,
        }))
    }

    fn save(
        &self,
        ctx: &SparkContext,
        options: &Options,
        df: &DataFrame,
        mode: SaveMode,
    ) -> SparkResult<()> {
        let path = options.require("path")?.to_string();
        let prefix = dir_prefix(&path);
        let existing = self.dfs.list(&prefix);
        match mode {
            SaveMode::ErrorIfExists if !existing.is_empty() => {
                return Err(SparkError::DataSource(format!("path {path} exists")))
            }
            SaveMode::Ignore if !existing.is_empty() => return Ok(()),
            SaveMode::Overwrite => {
                for f in &existing {
                    self.dfs
                        .delete(f)
                        .map_err(|e| SparkError::DataSource(e.to_string()))?;
                }
            }
            _ => {}
        }
        let offset = if mode == SaveMode::Append {
            existing.len()
        } else {
            0
        };

        let rdd = df.rdd()?;
        let schema = df.schema().clone();
        let dfs = Arc::clone(&self.dfs);
        ctx.run_job(&rdd, move |tc, rows: Vec<Row>| {
            let bytes = colfile::write(&schema, &rows, colfile::DEFAULT_ROW_GROUP);
            let writer = NodeRef::Compute(tc.executor_node);
            dfs.recorder().work(
                Some(tc.partition as u64),
                writer,
                "colfile_encode",
                rows.len() as u64,
                bytes.len() as u64,
            );
            let file = format!("{prefix}part-{:05}", offset + tc.partition);
            match dfs.create(&file, &bytes, writer, Some(tc.partition as u64)) {
                Ok(()) => Ok(()),
                // A retried task finds its own partial output: replace it.
                Err(dfslite::DfsError::FileExists(_)) => {
                    dfs.delete(&file)
                        .map_err(|e| SparkError::DataSource(e.to_string()))?;
                    dfs.create(&file, &bytes, writer, Some(tc.partition as u64))
                        .map_err(|e| SparkError::DataSource(e.to_string()))
                }
                Err(e) => Err(SparkError::DataSource(e.to_string())),
            }
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_prefix_normalizes() {
        assert_eq!(dir_prefix("/data/out"), "/data/out/");
        assert_eq!(dir_prefix("/data/out/"), "/data/out/");
    }
}
