//! The generic JDBC DefaultSource baseline (paper Sec. 4.7.1).
//!
//! Differences from the connector, all faithful to the paper:
//!
//! * **Load parallelism needs help**: the source table must have an
//!   integer column, and the user must pass its name plus `lowerBound`
//!   and `upperBound`; the range is split evenly per partition. Without
//!   these, the load is a single partition.
//! * **No locality**: every partition's query goes through the single
//!   configured host node, which fans the work out to the other nodes
//!   and shuffles their rows back internally.
//! * **No epoch pinning**: each partition reads whatever is committed
//!   when *it* runs, so concurrent updates can yield an inconsistent
//!   view across partitions.
//! * **Saves are INSERT batches**: per-partition transactions with no
//!   cross-task coordination — a job that dies mid-way leaves a partial
//!   load, and a task that fails after committing duplicates rows when
//!   retried.

use std::sync::Arc;

use common::expr::Expr;
use common::{Row, Schema};
use mppdb::{Cluster, QuerySpec};
use netsim::record::{NetClass, NodeRef};
use sparklet::rdd::PartitionSource;
use sparklet::{
    DataFrame, DataSourceProvider, Options, Rdd, SaveMode, ScanRelation, SparkContext, SparkError,
    SparkResult,
};

/// Format name to register under.
pub const JDBC_FORMAT: &str = "jdbc";

/// Rows per INSERT statement batch.
const INSERT_BATCH: usize = 1000;

/// The provider.
pub struct JdbcDefaultSource {
    cluster: Arc<Cluster>,
}

impl JdbcDefaultSource {
    pub fn new(cluster: Arc<Cluster>) -> Arc<JdbcDefaultSource> {
        Arc::new(JdbcDefaultSource { cluster })
    }

    pub fn register(ctx: &SparkContext, cluster: Arc<Cluster>) {
        ctx.register_format(JDBC_FORMAT, JdbcDefaultSource::new(cluster));
    }
}

struct JdbcRelation {
    cluster: Arc<Cluster>,
    table: String,
    schema: Schema,
    host: usize,
    /// `(column, lower, upper, partitions)` when range-parallelized.
    partitioning: Option<(String, i64, i64, usize)>,
}

struct JdbcScanSource {
    cluster: Arc<Cluster>,
    table: String,
    host: usize,
    /// Per-partition extra range predicate.
    ranges: Vec<Option<Expr>>,
    projection: Option<Vec<String>>,
    filters: Vec<Expr>,
    compute_nodes: usize,
}

impl PartitionSource<Row> for JdbcScanSource {
    fn num_partitions(&self) -> usize {
        self.ranges.len()
    }

    fn compute(&self, partition: usize) -> SparkResult<Vec<Row>> {
        // Everything goes through the single host — the "all queries
        // through one node" behaviour the paper calls out.
        let mut session = self
            .cluster
            .connect(self.host)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        session.set_task_tag(Some(partition as u64));
        self.cluster.recorder().setup(
            Some(partition as u64),
            NodeRef::Db(self.host),
            "jdbc_connect",
        );
        let mut predicates: Vec<Expr> = self.filters.clone();
        if let Some(range) = &self.ranges[partition] {
            predicates.push(range.clone());
        }
        let mut spec = QuerySpec::scan(&self.table);
        spec.projection = self.projection.clone();
        spec.predicate = predicates.into_iter().reduce(|a, b| a.and(b));
        // NOTE: no `at_epoch` — reads are not pinned to a snapshot.
        let result = session
            .query(&spec)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        let executor = partition % self.compute_nodes;
        self.cluster.recorder().transfer(
            Some(partition as u64),
            NodeRef::Db(self.host),
            NodeRef::Compute(executor),
            NetClass::External,
            result.text_wire_bytes(),
            result.rows.len() as u64,
        );
        Ok(result.rows)
    }
}

impl ScanRelation for JdbcRelation {
    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn scan(
        &self,
        ctx: &SparkContext,
        projection: Option<&[String]>,
        filters: &[Expr],
    ) -> SparkResult<Rdd<Row>> {
        let ranges: Vec<Option<Expr>> = match &self.partitioning {
            None => vec![None],
            Some((column, lower, upper, partitions)) => {
                split_bounds(*lower, *upper, *partitions)
                    .into_iter()
                    .map(|(lo, hi, last)| {
                        let col = Expr::col(column.clone());
                        let lower_bound = col.clone().gt_eq(Expr::lit(lo));
                        Some(if last {
                            // The final stride is closed above.
                            lower_bound.and(col.lt_eq(Expr::lit(hi)))
                        } else {
                            lower_bound.and(col.lt(Expr::lit(hi)))
                        })
                    })
                    .collect()
            }
        };
        let source = JdbcScanSource {
            cluster: Arc::clone(&self.cluster),
            table: self.table.clone(),
            host: self.host,
            ranges,
            projection: projection.map(|p| p.to_vec()),
            filters: filters.to_vec(),
            compute_nodes: ctx.conf().nodes,
        };
        Ok(Rdd::from_source(ctx.clone(), Arc::new(source)))
    }
}

/// Even strides over `[lower, upper]`; returns `(lo, hi, is_last)`.
fn split_bounds(lower: i64, upper: i64, partitions: usize) -> Vec<(i64, i64, bool)> {
    let partitions = partitions.max(1) as i64;
    let span = (upper - lower).max(0);
    (0..partitions)
        .map(|p| {
            let lo = lower + span * p / partitions;
            let hi = lower + span * (p + 1) / partitions;
            (lo, hi, p + 1 == partitions)
        })
        .collect()
}

impl DataSourceProvider for JdbcDefaultSource {
    fn create_relation(
        &self,
        _ctx: &SparkContext,
        options: &Options,
    ) -> SparkResult<Arc<dyn ScanRelation>> {
        let table = options
            .require("dbtable")
            .or_else(|_| options.require("table"))?;
        let host = options.get_parsed::<usize>("host")?.unwrap_or(0);
        let def = self
            .cluster
            .table_def(table)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        let partitioning = match options.get("partitioncolumn") {
            None => None,
            Some(column) => {
                let lower = options.get_parsed::<i64>("lowerbound")?.ok_or_else(|| {
                    SparkError::Usage("partitionColumn requires lowerBound".into())
                })?;
                let upper = options.get_parsed::<i64>("upperbound")?.ok_or_else(|| {
                    SparkError::Usage("partitionColumn requires upperBound".into())
                })?;
                let partitions = options.get_parsed::<usize>("numpartitions")?.unwrap_or(1);
                def.schema
                    .index_of(column)
                    .map_err(|e| SparkError::DataSource(e.to_string()))?;
                Some((column.to_string(), lower, upper, partitions))
            }
        };
        Ok(Arc::new(JdbcRelation {
            cluster: Arc::clone(&self.cluster),
            table: def.name.clone(),
            schema: def.schema,
            host,
            partitioning,
        }))
    }

    fn save(
        &self,
        ctx: &SparkContext,
        options: &Options,
        df: &DataFrame,
        mode: SaveMode,
    ) -> SparkResult<()> {
        let table = options
            .require("dbtable")
            .or_else(|_| options.require("table"))?
            .to_string();
        let host = options.get_parsed::<usize>("host")?.unwrap_or(0);
        let cluster = Arc::clone(&self.cluster);

        let exists = cluster.has_table(&table);
        match mode {
            SaveMode::ErrorIfExists if exists => {
                return Err(SparkError::DataSource(format!("table {table} exists")))
            }
            SaveMode::Ignore if exists => return Ok(()),
            SaveMode::Overwrite
                // JDBC overwrite truncates up front — no staging, so a
                // later failure leaves the table partially loaded.
                if exists => {
                    let mut session = cluster.connect(host).map_err(|e| {
                        SparkError::DataSource(e.to_string())
                    })?;
                    session
                        .execute(&format!("DELETE FROM {table}"))
                        .map_err(|e| SparkError::DataSource(e.to_string()))?;
                }
            _ => {}
        }
        if !exists {
            cluster
                .create_table(
                    mppdb::catalog::TableDef::new(
                        &table,
                        df.schema().clone(),
                        mppdb::catalog::Segmentation::ByHash(vec![]),
                    )
                    .map_err(|e| SparkError::DataSource(e.to_string()))?,
                )
                .map_err(|e| SparkError::DataSource(e.to_string()))?;
        }

        let rdd = df.rdd()?;
        let table_ref = table.as_str();
        let cluster_ref = &cluster;
        ctx.run_job(&rdd, move |tc, rows: Vec<Row>| {
            let mut session = cluster_ref
                .connect(host)
                .map_err(|e| SparkError::DataSource(e.to_string()))?;
            session.set_task_tag(Some(tc.partition as u64));
            cluster_ref.recorder().setup(
                Some(tc.partition as u64),
                NodeRef::Db(host),
                "jdbc_connect",
            );
            // A batch of INSERT statements per chunk; each batch is its
            // own little transaction, committed independently.
            for batch in rows.chunks(INSERT_BATCH) {
                // INSERT statements are textual.
                let bytes: u64 = batch.iter().map(|r| r.text_wire_size() as u64).sum();
                cluster_ref.recorder().work(
                    Some(tc.partition as u64),
                    NodeRef::Compute(tc.executor_node),
                    "jdbc_insert_encode",
                    batch.len() as u64,
                    bytes,
                );
                cluster_ref.recorder().transfer(
                    Some(tc.partition as u64),
                    NodeRef::Compute(tc.executor_node),
                    NodeRef::Db(host),
                    NetClass::External,
                    bytes,
                    batch.len() as u64,
                );
                cluster_ref.recorder().work(
                    Some(tc.partition as u64),
                    NodeRef::Db(host),
                    "jdbc_insert_parse",
                    batch.len() as u64,
                    bytes,
                );
                session
                    .insert(table_ref, batch.to_vec())
                    .map_err(|e| SparkError::DataSource(e.to_string()))?;
            }
            Ok(())
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_bounds_covers_range() {
        let strides = split_bounds(0, 100, 4);
        assert_eq!(
            strides,
            vec![
                (0, 25, false),
                (25, 50, false),
                (50, 75, false),
                (75, 100, true)
            ]
        );
        // Degenerate single partition.
        assert_eq!(split_bounds(5, 5, 1), vec![(5, 5, true)]);
    }
}
