//! Comparison baselines from the paper's Sec. 4.7.
//!
//! * [`jdbc`] — the engine's generic JDBC DefaultSource analog
//!   (Sec. 4.7.1): parallel loads require a user-supplied integer
//!   column with known min/max bounds, every query routes through the
//!   single configured host (inducing internal shuffle), saves are
//!   INSERT batches without cross-task transaction control — partial
//!   and duplicate loads are possible by design.
//! * [`hdfs_io`] — the engine's native DFS read/write (Sec. 4.7.2):
//!   one columnar part-file per partition on the block-based DFS.

pub mod hdfs_io;
pub mod jdbc;

pub use hdfs_io::{DfsSource, DFS_FORMAT};
pub use jdbc::{JdbcDefaultSource, JDBC_FORMAT};
