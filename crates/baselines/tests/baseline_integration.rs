//! Baseline behaviour tests: the JDBC default source works but lacks
//! the connector's guarantees (paper Sec. 4.7.1, Sec. 6), and the
//! native DFS path round-trips DataFrames (Sec. 4.7.2).

use std::sync::Arc;

use baselines::{DfsSource, JdbcDefaultSource, DFS_FORMAT, JDBC_FORMAT};
use common::{row, DataType, Expr, Row, Schema};
use dfslite::{DfsClusterSim, DfsConfig};
use mppdb::{Cluster, ClusterConfig, QuerySpec};
use netsim::record::NetClass;
use sparklet::{FailureMode, Options, SaveMode, SparkConf, SparkContext};

fn setup() -> (SparkContext, Arc<Cluster>) {
    let cluster = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 8,
        cores_per_node: 4,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    JdbcDefaultSource::register(&ctx, Arc::clone(&cluster));
    connector::DefaultSource::register(&ctx, Arc::clone(&cluster));
    (ctx, cluster)
}

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)])
}

fn rows(n: usize) -> Vec<Row> {
    (0..n).map(|i| row![i as i64, i as f64]).collect()
}

fn seed_table(cluster: &Arc<Cluster>, table: &str, n: usize) {
    let mut s = cluster.connect(0).unwrap();
    s.execute(&format!(
        "CREATE TABLE {table} (id INT, x FLOAT) SEGMENTED BY HASH(id) ALL NODES"
    ))
    .unwrap();
    s.insert(table, rows(n)).unwrap();
}

#[test]
fn jdbc_load_requires_bounds_for_parallelism() {
    let (ctx, cluster) = setup();
    seed_table(&cluster, "j1", 200);

    // Without partition options: a single partition.
    let df = ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "j1")
        .load()
        .unwrap();
    assert_eq!(df.rdd().unwrap().num_partitions(), 1);
    assert_eq!(df.count().unwrap(), 200);

    // With the integer column + min/max: ranged parallel queries.
    let df = ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "j1")
        .option("partitionColumn", "id")
        .option("lowerBound", 0)
        .option("upperBound", 199)
        .option("numPartitions", 8)
        .load()
        .unwrap();
    assert_eq!(df.rdd().unwrap().num_partitions(), 8);
    let mut loaded = df.collect().unwrap();
    loaded.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(loaded, rows(200));
}

#[test]
fn jdbc_load_shuffles_internally_but_v2s_does_not() {
    let (ctx, cluster) = setup();
    seed_table(&cluster, "j2", 400);

    cluster.recorder().clear();
    let jdbc_rows = ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "j2")
        .option("partitionColumn", "id")
        .option("lowerBound", 0)
        .option("upperBound", 399)
        .option("numPartitions", 8)
        .load()
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(jdbc_rows.len(), 400);
    let jdbc_shuffle = cluster.recorder().total_bytes(NetClass::DbInternal);
    // Every range query goes through node 0; ~3/4 of the data lives on
    // other nodes and shuffles internally first (Sec. 4.7.1).
    assert!(jdbc_shuffle > 0, "JDBC load must induce internal shuffle");

    cluster.recorder().clear();
    let v2s_rows = ctx
        .read()
        .format(connector::DEFAULT_SOURCE)
        .option("table", "j2")
        .option("numPartitions", 8)
        .load()
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(v2s_rows.len(), 400);
    assert_eq!(
        cluster.recorder().total_bytes(NetClass::DbInternal),
        0,
        "V2S locality-aware queries shuffle nothing"
    );
}

#[test]
fn jdbc_save_duplicates_rows_on_post_commit_task_failure() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(rows(100), schema(), 4).unwrap();
    // A task that finishes its INSERTs and then dies is retried,
    // re-inserting its rows — the inconsistency S2V prevents.
    ctx.failures().fail_task(1, 1, FailureMode::AfterWork);
    df.write()
        .format(JDBC_FORMAT)
        .options(Options::new().with("dbtable", "dup"))
        .mode(SaveMode::Append)
        .save()
        .unwrap();
    ctx.failures().clear();

    let mut session = cluster.connect(0).unwrap();
    let count = session
        .query(&QuerySpec::scan("dup").count())
        .unwrap()
        .count;
    assert!(
        count > 100,
        "expected duplicated rows from the retried task, got {count}"
    );

    // The connector under the identical failure stays exactly-once.
    let df2 = ctx.create_dataframe(rows(100), schema(), 4).unwrap();
    ctx.failures().fail_task(1, 1, FailureMode::AfterWork);
    df2.write()
        .format(connector::DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("table", "dup_s2v")
                .with("numPartitions", 4),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    ctx.failures().clear();
    let count = session
        .query(&QuerySpec::scan("dup_s2v").count())
        .unwrap()
        .count;
    assert_eq!(count, 100);
}

#[test]
fn jdbc_save_leaves_partial_load_on_job_kill() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(rows(200), schema(), 8).unwrap();
    ctx.failures().kill_job_after(3);
    let err = df
        .write()
        .format(JDBC_FORMAT)
        .options(Options::new().with("dbtable", "partial"))
        .mode(SaveMode::Append)
        .save()
        .unwrap_err();
    ctx.failures().clear();
    assert!(err.to_string().contains("killed"));

    // Some but not all rows landed: the partial load the paper warns
    // about (Sec. 2.2.2).
    let mut session = cluster.connect(0).unwrap();
    let count = session
        .query(&QuerySpec::scan("partial").count())
        .unwrap()
        .count;
    assert!(
        count > 0 && count < 200,
        "partial load expected, got {count}"
    );
}

#[test]
fn jdbc_load_is_not_snapshot_consistent() {
    // Structural demonstration: JDBC partitions read at whatever epoch
    // they run; a mutation between partition queries is visible to some
    // partitions only. We force the interleaving by running one ranged
    // load, mutating, then the other half.
    let (ctx, cluster) = setup();
    seed_table(&cluster, "inconsistent", 100);

    let df_low = ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "inconsistent")
        .option("partitionColumn", "id")
        .option("lowerBound", 0)
        .option("upperBound", 49)
        .option("numPartitions", 2)
        .load()
        .unwrap();
    let low = df_low.collect().unwrap();

    // Concurrent mutation between "tasks".
    let mut s = cluster.connect(1).unwrap();
    s.execute("DELETE FROM inconsistent WHERE id >= 50")
        .unwrap();

    let df_high = ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "inconsistent")
        .option("partitionColumn", "id")
        .option("lowerBound", 50)
        .option("upperBound", 99)
        .option("numPartitions", 2)
        .load()
        .unwrap();
    let high = df_high.collect().unwrap();
    // The combined "load" lost rows mid-flight: 50 + 0.
    assert_eq!(low.len(), 50);
    assert_eq!(high.len(), 0, "JDBC reads see the mutation");

    // V2S pins the epoch at relation-open: the same interleaving still
    // returns the full snapshot (asserted in connector tests).
}

#[test]
fn dfs_write_and_read_round_trip() {
    let (ctx, _cluster) = setup();
    let dfs = DfsClusterSim::new(DfsConfig {
        nodes: 4,
        block_size: 1 << 16,
        replication: 3,
    });
    DfsSource::register(&ctx, Arc::clone(&dfs));

    let df = ctx.create_dataframe(rows(500), schema(), 6).unwrap();
    df.write()
        .format(DFS_FORMAT)
        .options(Options::new().with("path", "/data/out"))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    assert_eq!(
        dfs.list("/data/out/").len(),
        6,
        "one part file per partition"
    );

    let loaded = ctx
        .read()
        .format(DFS_FORMAT)
        .option("path", "/data/out")
        .load()
        .unwrap();
    assert_eq!(loaded.rdd().unwrap().num_partitions(), 6);
    let mut all = loaded.collect().unwrap();
    all.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(all, rows(500));

    // Filters work (applied post-read; no pushdown into storage).
    let filtered = loaded
        .filter(Expr::col("id").lt(Expr::lit(10i64)))
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(filtered.len(), 10);

    // Save modes.
    assert!(df
        .write()
        .format(DFS_FORMAT)
        .options(Options::new().with("path", "/data/out"))
        .mode(SaveMode::ErrorIfExists)
        .save()
        .is_err());
    df.write()
        .format(DFS_FORMAT)
        .options(Options::new().with("path", "/data/out"))
        .mode(SaveMode::Append)
        .save()
        .unwrap();
    let appended = ctx
        .read()
        .format(DFS_FORMAT)
        .option("path", "/data/out")
        .load()
        .unwrap();
    assert_eq!(appended.count().unwrap(), 1000);
}

#[test]
fn dfs_write_survives_task_retries() {
    let (ctx, _cluster) = setup();
    let dfs = DfsClusterSim::new(DfsConfig {
        nodes: 4,
        block_size: 1 << 16,
        replication: 3,
    });
    DfsSource::register(&ctx, Arc::clone(&dfs));
    let df = ctx.create_dataframe(rows(120), schema(), 4).unwrap();
    ctx.failures().fail_task(2, 1, FailureMode::AfterWork);
    df.write()
        .format(DFS_FORMAT)
        .options(Options::new().with("path", "/retry/out"))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    ctx.failures().clear();
    let loaded = ctx
        .read()
        .format(DFS_FORMAT)
        .option("path", "/retry/out")
        .load()
        .unwrap();
    assert_eq!(
        loaded.count().unwrap(),
        120,
        "retried part file replaced, not duplicated"
    );
}

#[test]
fn baseline_option_validation() {
    let (ctx, _cluster) = setup();
    // JDBC: table required; bounds required with partitionColumn;
    // unknown partition column rejected.
    assert!(ctx.read().format(JDBC_FORMAT).load().is_err());
    seed_table(&_cluster, "opts", 10);
    assert!(ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "opts")
        .option("partitionColumn", "id")
        .load()
        .is_err());
    assert!(ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "opts")
        .option("partitionColumn", "ghost")
        .option("lowerBound", 0)
        .option("upperBound", 9)
        .load()
        .is_err());
    assert!(ctx
        .read()
        .format(JDBC_FORMAT)
        .option("dbtable", "missing_table")
        .load()
        .is_err());

    // DFS source: path required; empty directory rejected.
    let dfs = DfsClusterSim::new(DfsConfig::default());
    DfsSource::register(&ctx, Arc::clone(&dfs));
    assert!(ctx.read().format(DFS_FORMAT).load().is_err());
    assert!(ctx
        .read()
        .format(DFS_FORMAT)
        .option("path", "/does/not/exist")
        .load()
        .is_err());
}
