//! Criterion micro-benchmarks: real wall time of the connector's hot
//! paths at laboratory scale. These complement the simulated
//! experiments — they measure our implementation, not the paper's
//! cluster.

use bench::datasets;
use bench::TestBed;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sparklet::{Options, SaveMode};

fn bench_s2v_save(c: &mut Criterion) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(2_000, 100, 42);
    let mut n = 0u64;
    c.bench_function("s2v_save_2k_rows_x100cols", |b| {
        b.iter_batched(
            || {
                n += 1;
                (
                    bed.dataframe(schema.clone(), rows.clone(), 8),
                    format!("bench_save_{n}"),
                )
            },
            |(df, table)| {
                df.write()
                    .format(connector::DEFAULT_SOURCE)
                    .options(
                        Options::new()
                            .with("host", 0)
                            .with("table", table)
                            .with("numPartitions", 8),
                    )
                    .mode(SaveMode::Overwrite)
                    .save()
                    .unwrap();
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_v2s_load(c: &mut Criterion) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(2_000, 100, 42);
    let df = bed.dataframe(schema, rows, 8);
    df.write()
        .format(connector::DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("host", 0)
                .with("table", "bench_load")
                .with("numPartitions", 8),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    c.bench_function("v2s_load_2k_rows_x100cols", |b| {
        b.iter(|| {
            let loaded = bed
                .ctx
                .read()
                .format(connector::DEFAULT_SOURCE)
                .option("host", 0)
                .option("table", "bench_load")
                .option("numPartitions", 8)
                .load()
                .unwrap();
            assert_eq!(loaded.collect().unwrap().len(), 2_000);
        })
    });
    c.bench_function("v2s_count_pushdown", |b| {
        b.iter(|| {
            let loaded = bed
                .ctx
                .read()
                .format(connector::DEFAULT_SOURCE)
                .option("host", 0)
                .option("table", "bench_load")
                .option("numPartitions", 8)
                .load()
                .unwrap();
            assert_eq!(loaded.count().unwrap(), 2_000);
        })
    });
}

fn bench_avro_round_trip(c: &mut Criterion) {
    let (schema, rows) = datasets::d1(2_000, 100, 7);
    let avro_schema = avrolite::AvroSchema::from_schema("bench", &schema);
    c.bench_function("avro_encode_2k_rows_x100cols", |b| {
        b.iter(|| {
            let mut w = avrolite::Writer::new(avro_schema.clone(), avrolite::Codec::Rle);
            for r in &rows {
                w.write_row(r).unwrap();
            }
            w.finish().len()
        })
    });
    let mut w = avrolite::Writer::new(avro_schema.clone(), avrolite::Codec::Rle);
    for r in &rows {
        w.write_row(r).unwrap();
    }
    let bytes = w.finish();
    c.bench_function("avro_decode_2k_rows_x100cols", |b| {
        b.iter(|| avrolite::Reader::new(&bytes).unwrap().read_all().len())
    });
}

fn bench_copy_csv(c: &mut Criterion) {
    let bed = TestBed::new(4, 8);
    let (_, rows) = datasets::d1(2_000, 100, 9);
    {
        let mut s = bed.db.connect(0).unwrap();
        let cols: Vec<String> = (0..100).map(|i| format!("c{i} FLOAT")).collect();
        s.execute(&format!("CREATE TABLE bench_copy ({})", cols.join(", ")))
            .unwrap();
    }
    let text = common::csv::encode_rows(&rows, ',');
    c.bench_function("copy_csv_2k_rows_x100cols", |b| {
        b.iter(|| {
            let mut s = bed.db.connect(0).unwrap();
            let result = s
                .copy(
                    "bench_copy",
                    mppdb::CopySource::Csv {
                        text: text.clone(),
                        delimiter: ',',
                    },
                    mppdb::CopyOptions::default(),
                )
                .unwrap();
            assert_eq!(result.loaded, 2_000);
        })
    });
}

criterion_group!(
    benches,
    bench_s2v_save,
    bench_v2s_load,
    bench_avro_round_trip,
    bench_copy_csv
);
criterion_main!(benches);
