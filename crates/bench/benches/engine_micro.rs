//! Criterion micro-benchmarks of the substrates: segmentation hashing,
//! storage scans, the SQL layer, and the max-min allocator.

use common::hash::segmentation_hash;
use common::{row, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use mppdb::{Cluster, ClusterConfig, QuerySpec};
use netsim::flow::max_min_rates;
use netsim::{FlowSpec, Topology};

fn bench_hash(c: &mut Criterion) {
    let values: Vec<Value> = (0..100).map(|i| Value::Float64(i as f64 / 7.0)).collect();
    c.bench_function("segmentation_hash_100_floats", |b| {
        b.iter(|| segmentation_hash(&values))
    });
}

fn bench_scan(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig::default());
    {
        let mut s = cluster.connect(0).unwrap();
        s.execute("CREATE TABLE t (id INT, x FLOAT, name VARCHAR)")
            .unwrap();
        let rows: Vec<common::Row> = (0..20_000)
            .map(|i| row![i as i64, i as f64, format!("name{}", i % 100)])
            .collect();
        s.insert("t", rows).unwrap();
        cluster.moveout_all();
    }
    c.bench_function("scan_20k_rows_full", |b| {
        let mut s = cluster.connect(1).unwrap();
        b.iter(|| {
            let r = s.query(&QuerySpec::scan("t")).unwrap();
            assert_eq!(r.rows.len(), 20_000);
        })
    });
    c.bench_function("scan_20k_rows_filtered_count", |b| {
        let mut s = cluster.connect(1).unwrap();
        let spec = QuerySpec::scan("t")
            .filter(common::Expr::col("id").lt(common::Expr::lit(1000i64)))
            .count();
        b.iter(|| {
            let r = s.query(&spec).unwrap();
            assert_eq!(r.count, 1000);
        })
    });
    c.bench_function("sql_aggregate_20k_rows", |b| {
        let mut s = cluster.connect(2).unwrap();
        b.iter(|| {
            let r = s
                .execute("SELECT name, COUNT(*), AVG(x) FROM t GROUP BY name")
                .unwrap()
                .rows()
                .unwrap();
            assert_eq!(r.rows.len(), 100);
        })
    });
}

fn bench_max_min(c: &mut Criterion) {
    let mut topo = Topology::new();
    let links: Vec<_> = (0..40)
        .map(|i| topo.add_resource(format!("l{i}"), 125e6))
        .collect();
    let flows: Vec<FlowSpec> = (0..256)
        .map(|i| {
            FlowSpec::new(1e9)
                .on(links[i % 40], 1.0)
                .on(links[(i * 7 + 3) % 40], 1.0)
                .capped(40e6)
        })
        .collect();
    let refs: Vec<&FlowSpec> = flows.iter().collect();
    c.bench_function("max_min_rates_256_flows_40_links", |b| {
        b.iter(|| max_min_rates(&topo, &refs))
    });
}

criterion_group!(benches, bench_hash, bench_scan, bench_max_min);
criterion_main!(benches);
