//! Data-collector overhead on the S2V hot path: the same save measured
//! with the collector recording and with it disabled (the runtime
//! no-op toggle). The instrumentation budget is <5% of S2V wall time;
//! compare the two medians after a run to verify.

use bench::datasets;
use bench::TestBed;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sparklet::{Options, SaveMode};

fn save_once(bed: &TestBed, df: sparklet::DataFrame, table: String) {
    df.write()
        .format(connector::DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("host", 0)
                .with("table", table)
                .with("numPartitions", 8),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let _ = bed;
}

fn bench_s2v_obs_enabled(c: &mut Criterion) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(2_000, 100, 42);
    let mut n = 0u64;
    obs::global().set_enabled(true);
    c.bench_function("s2v_save_obs_enabled", |b| {
        b.iter_batched(
            || {
                n += 1;
                (
                    bed.dataframe(schema.clone(), rows.clone(), 8),
                    format!("obs_on_{n}"),
                )
            },
            |(df, table)| save_once(&bed, df, table),
            BatchSize::PerIteration,
        )
    });
}

fn bench_s2v_obs_disabled(c: &mut Criterion) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(2_000, 100, 42);
    let mut n = 0u64;
    obs::global().set_enabled(false);
    c.bench_function("s2v_save_obs_disabled", |b| {
        b.iter_batched(
            || {
                n += 1;
                (
                    bed.dataframe(schema.clone(), rows.clone(), 8),
                    format!("obs_off_{n}"),
                )
            },
            |(df, table)| save_once(&bed, df, table),
            BatchSize::PerIteration,
        )
    });
    obs::global().set_enabled(true);
}

fn bench_collector_primitives(c: &mut Criterion) {
    let collector = obs::Collector::new();
    c.bench_function("obs_counter_add", |b| {
        b.iter(|| collector.add("bench.counter", 1))
    });
    c.bench_function("obs_emit_event", |b| {
        b.iter(|| {
            collector.emit(obs::EventKind::TaskLaunch, |e| {
                e.task = Some(1);
                e.detail = "attempt 1".to_string();
            })
        })
    });
    collector.set_enabled(false);
    c.bench_function("obs_emit_event_disabled", |b| {
        b.iter(|| {
            collector.emit(obs::EventKind::TaskLaunch, |e| {
                e.task = Some(1);
                e.detail = "attempt 1".to_string();
            })
        })
    });
}

criterion_group!(
    benches,
    bench_s2v_obs_enabled,
    bench_s2v_obs_disabled,
    bench_collector_primitives
);
criterion_main!(benches);
