//! Criterion micro-benchmarks of the vectorized scan pipeline against
//! the row-at-a-time reference scan, across store sizes and predicate
//! selectivities.
//!
//! Each configuration pairs:
//!
//! * `reference` — [`NodeTableStore::scan`]: every visible row fully
//!   materialized, then filtered and projected row by row; and
//! * `batched` — [`NodeTableStore::scan_batch`]: late materialization,
//!   so only referenced predicate columns and surviving projected
//!   values are ever decoded.
//!
//! Before timing, each batched configuration runs once bracketed by
//! obs snapshots and prints the data-collector counters
//! (`scan.rows_examined` vs `scan.values_decoded`) — the ratio is the
//! decode work late materialization avoided.

use common::hash::segmentation_hash;
use common::{row, DataType, Expr, Row, Schema, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use mppdb::storage::{BatchScan, NodeTableStore};

const AS_OF: u64 = 2;

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Int64),
        ("grp", DataType::Varchar),
        ("val", DataType::Float64),
        ("payload", DataType::Varchar),
    ])
}

fn dtypes() -> Vec<DataType> {
    schema().fields().iter().map(|f| f.dtype).collect()
}

/// `n` committed, moved-out rows. `val` cycles 0..1000 so `val < 1`
/// matches 0.1% of rows and `val < 900` matches 90%; `grp` has 16
/// distinct values (dictionary-friendly), `payload` is wide filler.
fn build_store(n: usize) -> NodeTableStore {
    let mut store = NodeTableStore::new(4);
    let rows: Vec<(Row, u64)> = (0..n)
        .map(|i| {
            let id = i as i64;
            let hash = segmentation_hash(&[Value::Int64(id)]);
            let r = row![
                id,
                format!("g{}", i % 16),
                (i % 1000) as f64,
                format!("payload-{i}-{}", "x".repeat(24))
            ];
            (r, hash)
        })
        .collect();
    store.insert_pending(rows, 1);
    store.commit(1, 1);
    store.moveout();
    store
}

fn reference_scan(
    store: &NodeTableStore,
    predicate: Option<&Expr>,
    projection: &[usize],
) -> Vec<Row> {
    let mut out = Vec::new();
    for v in store.scan(AS_OF, None, None) {
        if let Some(p) = predicate {
            if !p.matches(&v.row).unwrap() {
                continue;
            }
        }
        out.push(v.row.into_projected(projection));
    }
    out
}

fn batched_scan(
    store: &NodeTableStore,
    predicate: Option<&Expr>,
    projection: &[usize],
    dtypes: &[DataType],
) -> usize {
    let scan = BatchScan {
        as_of: AS_OF,
        my_txn: None,
        hash_range: None,
        row_range: None,
        predicate,
        projection: Some(projection),
        dtypes,
        no_skip: false,
    };
    store.scan_batch(&scan).unwrap().batch.num_rows()
}

fn bench_scans(c: &mut Criterion) {
    let schema = schema();
    let dtypes = dtypes();
    let selective = Expr::col("val")
        .lt(Expr::lit(1.0f64))
        .bind(&schema)
        .unwrap();
    let broad = Expr::col("val")
        .lt(Expr::lit(900.0f64))
        .bind(&schema)
        .unwrap();

    for &n in &[10_000usize, 100_000, 1_000_000] {
        let store = build_store(n);
        let label = |name: &str| format!("{name}_{}k", n / 1000);
        // (tag, predicate, projection, expected row count)
        let cases: Vec<(&str, Option<&Expr>, Vec<usize>, usize)> = vec![
            ("selective_narrow", Some(&selective), vec![0], n / 1000),
            ("broad_narrow", Some(&broad), vec![0], n * 9 / 10),
            ("full_wide", None, vec![0, 1, 2, 3], n),
        ];

        for (tag, pred, proj, expect) in &cases {
            // One instrumented run: how much decode work did late
            // materialization skip?
            let before = obs::global().snapshot();
            let got = batched_scan(&store, *pred, proj, &dtypes);
            assert_eq!(got, *expect);
            let counters = obs::global().snapshot().counters_since(&before);
            eprintln!(
                "dc_counters {tag} n={n}: rows_examined={} values_decoded={}",
                counters.get("scan.rows_examined").copied().unwrap_or(0),
                counters.get("scan.values_decoded").copied().unwrap_or(0),
            );

            c.bench_function(&label(&format!("{tag}_reference")), |b| {
                b.iter(|| {
                    let rows = reference_scan(&store, *pred, proj);
                    assert_eq!(rows.len(), *expect);
                })
            });
            c.bench_function(&label(&format!("{tag}_batched")), |b| {
                b.iter(|| {
                    assert_eq!(batched_scan(&store, *pred, proj, &dtypes), *expect);
                })
            });
        }
    }
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
