//! Tracing overhead on the span hot path: starting and finishing one
//! span, recording one histogram value, and the disabled-mode no-op.
//! The budget mirrors the collector's: a span is two short lock
//! acquisitions, and with collection off (or an untraced NONE context)
//! the entire layer must cost a branch.

use criterion::{criterion_group, criterion_main, Criterion};
use obs::TraceCtx;

fn bench_span_lifecycle(c: &mut Criterion) {
    let collector = obs::Collector::new();
    let root = collector.trace_start("s2v.job");
    c.bench_function("trace_span_start_finish", |b| {
        b.iter(|| {
            let span = collector.span_start("s2v.phase3", root);
            collector.span_finish(span, |s| {
                s.node = Some(2);
                s.attempt = 1;
                s.rows = 100;
            });
        })
    });
    c.bench_function("trace_record_histo", |b| {
        b.iter(|| collector.record_histo("v2s.piece_bytes", 4096))
    });
}

fn bench_disabled_and_untraced(c: &mut Criterion) {
    let collector = obs::Collector::new();
    // An untraced caller passes NONE: the span layer must short-circuit
    // before touching any lock.
    c.bench_function("trace_span_untraced_none", |b| {
        b.iter(|| {
            let span = collector.span_start("s2v.phase3", TraceCtx::NONE);
            collector.span_finish(span, |s| s.rows = 100);
        })
    });
    collector.set_enabled(false);
    c.bench_function("trace_start_disabled", |b| {
        b.iter(|| collector.trace_start("s2v.job"))
    });
}

fn bench_tree_analysis(c: &mut Criterion) {
    // A realistic job tree: 32 tasks × 5 phases under one root.
    let collector = obs::Collector::new();
    let root = collector.trace_start("s2v.job");
    for task in 0..32u64 {
        let t = collector.span_start("sched.task", root);
        for phase in [
            "s2v.phase1",
            "s2v.phase2",
            "s2v.phase3",
            "s2v.phase4",
            "s2v.phase5",
        ] {
            let p = collector.span_start(phase, t);
            collector.span_finish(p, |s| s.task = Some(task));
        }
        collector.span_finish(t, |s| s.task = Some(task));
    }
    collector.span_finish(root, |_| {});
    let spans = collector.trace_spans(root.trace);
    c.bench_function("trace_critical_path_192_spans", |b| {
        b.iter(|| obs::trace::critical_path(&spans))
    });
    c.bench_function("trace_render_192_spans", |b| {
        b.iter(|| obs::trace::render(&spans))
    });
}

criterion_group!(
    benches,
    bench_span_lifecycle,
    bench_disabled_and_untraced,
    bench_tree_analysis
);
criterion_main!(benches);
