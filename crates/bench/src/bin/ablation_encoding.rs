//! Ablation (DESIGN.md §5): S2V's Avro-encoded COPY stream vs a CSV
//! COPY stream vs JDBC INSERT batches, for the same save.

use bench::datasets::{self, specs};
use bench::experiments::{run_s2v_save, LAB_D1_ROWS};
use bench::report::{self, ReportRow};
use bench::{simulate, SimParams, TestBed};
use mppdb::{CopyOptions, CopySource};
use netsim::record::{NetClass, NodeRef};
use sparklet::{Options, SaveMode};

fn main() {
    let before = report::begin();
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale());

    // Arm A: the connector (Avro + COPY).
    let events = run_s2v_save(&bed, schema.clone(), rows.clone(), "enc_avro", 128);
    let avro = simulate(&events, &params).seconds;

    // Arm B: CSV + COPY, same partition layout, hand-rolled tasks.
    {
        let mut s = bed.db.connect(0).unwrap();
        let cols: Vec<String> = (0..100).map(|i| format!("c{i} FLOAT")).collect();
        s.execute(&format!("CREATE TABLE enc_csv ({})", cols.join(", ")))
            .unwrap();
    }
    bed.clear_recorders();
    let per_task = rows.len().div_ceil(128);
    for (task, chunk) in rows.chunks(per_task).enumerate() {
        let node = task % bed.db_nodes;
        let text = common::csv::encode_rows(chunk, ',');
        let mut session = bed.db.connect(node).unwrap();
        session.set_task_tag(Some(task as u64));
        bed.db.recorder().transfer(
            Some(task as u64),
            NodeRef::Compute(task % bed.compute_nodes),
            NodeRef::Db(node),
            NetClass::External,
            text.len() as u64,
            chunk.len() as u64,
        );
        session
            .copy(
                "enc_csv",
                CopySource::Csv {
                    text,
                    delimiter: ',',
                },
                CopyOptions::default(),
            )
            .unwrap();
    }
    let csv = simulate(&bed.db.recorder().drain(), &params).seconds;

    // Arm C: JDBC INSERT batches.
    let df = bed.dataframe(schema, rows, 128);
    bed.clear_recorders();
    df.write()
        .format(baselines::JDBC_FORMAT)
        .options(Options::new().with("dbtable", "enc_insert"))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let insert = simulate(&bed.db.recorder().drain(), &params).seconds;

    report::publish(
        "ablation_encoding",
        "Ablation — S2V transport encoding",
        &[
            ReportRow::new("Avro + COPY (the connector)", None, avro),
            ReportRow::new("CSV + COPY", None, csv),
            ReportRow::new("INSERT batches (JDBC-style)", None, insert),
        ],
        &before,
    );
}
