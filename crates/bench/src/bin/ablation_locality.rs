//! Ablation (DESIGN.md §5): locality-aware hash-range queries vs
//! funneling every range query through a single host — the design
//! choice behind Fig. 10's 4x.
//!
//! Both variants load the same table with the same parallelism; only
//! the routing differs (the JDBC baseline is the "no locality" arm).

use bench::datasets::{self, specs};
use bench::experiments::{seed_table, LAB_D1_ROWS};
use bench::report::{self, ReportRow};
use bench::{simulate, SimParams, TestBed};
use netsim::record::NetClass;

fn main() {
    let before = report::begin();
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1_with_int_column(LAB_D1_ROWS, 100, 42);
    seed_table(&bed, schema, rows, "ablate");
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale());

    // Arm A: the connector's locality-aware plan.
    bed.clear_recorders();
    bed.ctx
        .read()
        .format(connector::DEFAULT_SOURCE)
        .option("table", "ablate")
        .option("numPartitions", 32)
        .load()
        .unwrap()
        .collect()
        .unwrap();
    let events = bed.db.recorder().drain();
    let shuffle_a: u64 = events
        .iter()
        .filter_map(|e| match &e.kind {
            netsim::record::EventKind::Transfer {
                class: NetClass::DbInternal,
                bytes,
                ..
            } => Some(*bytes),
            _ => None,
        })
        .sum();
    let a = simulate(&events, &params).seconds;

    // Arm B: identical parallelism, all queries through one host.
    bed.clear_recorders();
    bed.ctx
        .read()
        .format(baselines::JDBC_FORMAT)
        .option("dbtable", "ablate")
        .option("partitionColumn", "pct")
        .option("lowerBound", 0)
        .option("upperBound", 99)
        .option("numPartitions", 32)
        .load()
        .unwrap()
        .collect()
        .unwrap();
    let events = bed.db.recorder().drain();
    let shuffle_b: u64 = events
        .iter()
        .filter_map(|e| match &e.kind {
            netsim::record::EventKind::Transfer {
                class: NetClass::DbInternal,
                bytes,
                ..
            } => Some(*bytes),
            _ => None,
        })
        .sum();
    let b = simulate(&events, &params).seconds;

    report::publish(
        "ablation_locality",
        "Ablation — locality-aware range queries",
        &[
            ReportRow::new("locality-aware (connector)", None, a),
            ReportRow::new("single-host funnel (JDBC-style)", None, b),
        ],
        &before,
    );
    println!(
        "internal shuffle: locality-aware {} bytes, single-host {} bytes (lab scale)",
        shuffle_a, shuffle_b
    );
    println!("locality speedup: {:.1}x", b / a);
}
