//! Ablation (paper Sec. 5): standard S2V vs pre-hashed S2V. Pre-hashing
//! aligns each partition with the database node owning its rows,
//! trading an engine-side shuffle for the elimination of all
//! database-internal distribution traffic.

use bench::datasets::{self, specs};
use bench::experiments::LAB_D1_ROWS;
use bench::report::{self, ReportRow};
use bench::{simulate, SimParams, TestBed};
use netsim::record::{EventKind, NetClass, NodeRef};
use sparklet::{Options, SaveMode};

fn db_internal_bytes(events: &[netsim::record::Event]) -> u64 {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Transfer {
                src: NodeRef::Db(_),
                dst: NodeRef::Db(_),
                class: NetClass::DbInternal,
                bytes,
                ..
            } => Some(*bytes),
            _ => None,
        })
        .sum()
}

fn main() {
    let before = report::begin();
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale());

    let mut out = Vec::new();
    for (label, prehash) in [("standard S2V", false), ("pre-hashed S2V", true)] {
        let df = bed.dataframe(schema.clone(), rows.clone(), 128);
        bed.clear_recorders();
        df.write()
            .format(connector::DEFAULT_SOURCE)
            .options(
                Options::new()
                    .with("host", 0)
                    .with("table", format!("prehash_{prehash}"))
                    .with("numPartitions", 128)
                    .with("prehash", prehash),
            )
            .mode(SaveMode::Overwrite)
            .save()
            .unwrap();
        let events = bed.db.recorder().drain();
        let shuffle_gb = db_internal_bytes(&events) as f64 * spec.scale() / 1e9;
        let secs = simulate(&events, &params).seconds;
        println!("{label}: database-internal shuffle {shuffle_gb:.1} GB (paper scale)");
        out.push(ReportRow::new(label, None, secs));
    }
    report::publish(
        "ablation_prehash",
        "Ablation — pre-hashed S2V (Sec. 5)",
        &out,
        &before,
    );
}
