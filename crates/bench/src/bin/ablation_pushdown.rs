//! Ablation (DESIGN.md §12): zone-map data skipping × partial-aggregate
//! pushdown — four cells over a time-clustered fact table, simulated at
//! 1M/10M/100M rows, plus the two scale-invariant reduction ratios.

use bench::experiments::pushdown;
use bench::report;
use bench::TestBed;

fn main() {
    let before = report::begin();
    let bed = TestBed::new(4, 8);
    let result = pushdown::run(&bed);
    let rows = pushdown::report_rows(&bed, &result);
    report::publish(
        "pushdown",
        "Ablation — zone-map skipping × aggregate pushdown",
        &rows,
        &before,
    );
}
