//! Ablation (DESIGN.md §14): query availability and latency through an
//! online node-add — probe + save load sustained across the rebalance.

use bench::experiments::rebalance;
use bench::report;

fn main() {
    let before = report::begin();
    let cell = rebalance::run();
    let rows = rebalance::report_rows(&cell);
    report::publish(
        "rebalance",
        "Ablation — node-add under load: availability and P99 through an online rebalance",
        &rows,
        &before,
    );
    println!(
        "node-add under load: {}/{} probes answered, {}/{} jobs landed, \
         {} migrations over {} steps, P99 inflation {:.2}x",
        cell.probes - cell.failed_probes,
        cell.probes,
        cell.jobs - cell.failed_jobs,
        cell.jobs,
        cell.migrations,
        cell.steps,
        rebalance::p99_inflation(&cell),
    );
}
