//! Ablation (DESIGN.md §5): overwrite's atomic staging-table rename vs
//! append's staging→target copy (the drawback Sec. 5 discusses).

use bench::datasets::{self, specs};
use bench::experiments::LAB_D1_ROWS;
use bench::report::{self, ReportRow};
use bench::{simulate, SimParams, TestBed};
use sparklet::{Options, SaveMode};

fn main() {
    let before = report::begin();
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale());

    let mut out = Vec::new();
    for (label, mode) in [
        ("overwrite (atomic rename)", SaveMode::Overwrite),
        ("append (staging copy)", SaveMode::Append),
    ] {
        let df = bed.dataframe(schema.clone(), rows.clone(), 128);
        bed.clear_recorders();
        df.write()
            .format(connector::DEFAULT_SOURCE)
            .options(
                Options::new()
                    .with("host", 0)
                    .with("table", "modal_target")
                    .with("numPartitions", 128),
            )
            .mode(mode)
            .save()
            .unwrap();
        let secs = simulate(&bed.db.recorder().drain(), &params).seconds;
        out.push(ReportRow::new(label, None, secs));
    }
    report::publish(
        "ablation_savemode",
        "Ablation — S2V final-commit mode",
        &out,
        &before,
    );
    println!("(the paper's Sec. 5 notes append's final copy is the drawback)");
}
