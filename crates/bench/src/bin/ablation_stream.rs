//! Ablation (DESIGN.md §13): steady-state scan latency under continuous
//! micro-batch streaming ingest — tuple mover on vs off, same workload.

use bench::experiments::stream;
use bench::report;

fn main() {
    let before = report::begin();
    let (off, on) = stream::run();
    let rows = stream::report_rows(&off, &on);
    report::publish(
        "stream",
        "Ablation — streaming ingest steady-state scans, tuple mover on vs off",
        &rows,
        &before,
    );
    println!(
        "mover speedup: {:.2}x median probe latency under continuous ingest \
         ({} micro-batches of {} rows)",
        off.median_probe_us / on.median_probe_us.max(1.0),
        stream::BATCHES,
        stream::BATCH_ROWS
    );
}
