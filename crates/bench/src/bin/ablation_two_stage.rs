//! Ablation (paper Sec. 5): the direct single-stage connector vs the
//! two-stage DFS landing-zone approach (the Spark-Redshift design),
//! both directions. The paper predicts the two-stage path "may be
//! slower than our single-stage approach because it requires an
//! intermediate write of a full copy of the data".

use bench::datasets::{self, specs};
use bench::experiments::{run_s2v_save, run_v2s_load, LAB_D1_ROWS};
use bench::report::{self, ReportRow};
use bench::{simulate, SimParams, TestBed};
use connector::{load_via_dfs, ConnectorOptions, SaveRequest, TwoStageConfig, WriteMethod};
use netsim::record::Event;

fn merged_events(bed: &TestBed) -> Vec<Event> {
    // The two-stage path touches both the database and the DFS; merge
    // the two logs (driver-stage ordering is preserved within each).
    let mut events = bed.dfs.as_ref().unwrap().recorder().drain();
    events.extend(bed.db.recorder().drain());
    events
}

fn main() {
    let before = report::begin();
    let bed = TestBed::new(4, 8).with_dfs(4, 256 << 10);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale()).with_dfs(4);

    // Direct connector, both directions.
    let events = run_s2v_save(&bed, schema.clone(), rows.clone(), "direct", 128);
    let direct_save = simulate(&events, &params).seconds;
    let events = run_v2s_load(&bed, "direct", 32);
    let direct_load = simulate(&events, &params).seconds;

    // Two-stage save.
    let df = bed.dataframe(schema.clone(), rows.clone(), 128);
    bed.clear_recorders();
    let two_stage_opts = ConnectorOptions::builder("two_stage_target")
        .method(WriteMethod::Dfs)
        .staging_path("/staging/save")
        .build()
        .unwrap();
    SaveRequest::new(&bed.ctx, &bed.db, &df, &two_stage_opts)
        .with_dfs(bed.dfs.as_ref().unwrap())
        .submit()
        .unwrap();
    let staged_save = simulate(&merged_events(&bed), &params).seconds;

    // Two-stage load.
    bed.clear_recorders();
    let loaded = load_via_dfs(
        &bed.ctx,
        &bed.db,
        bed.dfs.as_ref().unwrap(),
        "direct",
        &TwoStageConfig::new("/staging/load"),
    )
    .unwrap();
    assert_eq!(loaded.count().unwrap() as usize, LAB_D1_ROWS);
    let staged_load = simulate(&merged_events(&bed), &params).seconds;

    report::publish(
        "ablation_two_stage",
        "Ablation — direct connector vs two-stage DFS landing zone",
        &[
            ReportRow::new("save: direct (S2V @128)", None, direct_save),
            ReportRow::new("save: two-stage via DFS", None, staged_save),
            ReportRow::new("load: direct (V2S @32)", None, direct_load),
            ReportRow::new("load: two-stage via DFS", None, staged_load),
        ],
        &before,
    );
    println!(
        "two-stage penalty: save {:.2}x, load {:.2}x — the paper's predicted \
         intermediate-copy cost",
        staged_save / direct_save,
        staged_load / direct_load
    );
}
