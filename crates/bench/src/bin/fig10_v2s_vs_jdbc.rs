//! Regenerates Fig. 10: load via V2S vs JDBC default source.
use bench::experiments::fig10_v2s_vs_jdbc::run;
use bench::report;

fn main() {
    let (rows, _) = run();
    report::print(
        "Fig. 10 — V2S vs JDBC DefaultSource load (5% selectivity)",
        &rows,
    );
}
