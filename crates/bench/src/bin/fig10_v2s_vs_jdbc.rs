//! Regenerates Fig. 10: load via V2S vs JDBC default source.
use bench::experiments::fig10_v2s_vs_jdbc::run;
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run();
    report::publish(
        "fig10_v2s_vs_jdbc",
        "Fig. 10 — V2S vs JDBC DefaultSource load (5% selectivity)",
        &rows,
        &before,
    );
}
