//! Regenerates Fig. 11: save via S2V vs JDBC default source.
use bench::experiments::fig11_s2v_vs_jdbc::run;
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run();
    report::publish(
        "fig11_s2v_vs_jdbc",
        "Fig. 11 — S2V vs JDBC DefaultSource save",
        &rows,
        &before,
    );
}
