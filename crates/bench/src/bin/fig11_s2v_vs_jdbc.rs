//! Regenerates Fig. 11: save via S2V vs JDBC default source.
use bench::experiments::fig11_s2v_vs_jdbc::run;
use bench::report;

fn main() {
    let (rows, _) = run();
    report::print("Fig. 11 — S2V vs JDBC DefaultSource save", &rows);
}
