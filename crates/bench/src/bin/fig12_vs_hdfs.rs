//! Regenerates Fig. 12: connector I/O vs native DFS read/write.
use bench::experiments::fig12_vs_hdfs::run;
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run();
    report::publish(
        "fig12_vs_hdfs",
        "Fig. 12 — V2S/S2V vs DFS read/write (separate 4:8 clusters)",
        &rows,
        &before,
    );
}
