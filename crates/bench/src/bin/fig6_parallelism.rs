//! Regenerates Fig. 6: execution time vs number of partitions.
use bench::experiments::fig6_parallelism::{run, PARTITION_SWEEP};
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run(PARTITION_SWEEP);
    report::publish(
        "fig6_parallelism",
        "Fig. 6 — varying the number of partitions (D1, 4:8 cluster)",
        &rows,
        &before,
    );
}
