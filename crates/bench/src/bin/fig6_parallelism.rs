//! Regenerates Fig. 6: execution time vs number of partitions.
use bench::experiments::fig6_parallelism::{run, PARTITION_SWEEP};
use bench::report;

fn main() {
    let (rows, _) = run(PARTITION_SWEEP);
    report::print(
        "Fig. 6 — varying the number of partitions (D1, 4:8 cluster)",
        &rows,
    );
}
