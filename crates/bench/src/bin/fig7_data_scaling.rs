//! Regenerates Fig. 7: execution time vs data size (log-log linear).
use bench::experiments::fig7_data_scaling::{run, ROW_SWEEP};
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run(ROW_SWEEP);
    report::publish(
        "fig7_data_scaling",
        "Fig. 7 — varying the data size (D1, V2S@32 / S2V@128)",
        &rows,
        &before,
    );
}
