//! Regenerates Fig. 8: cluster scalability at fixed data per node.
use bench::experiments::fig8_cluster_scaling::{run, CLUSTER_SWEEP};
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run(CLUSTER_SWEEP);
    report::publish(
        "fig8_cluster_scaling",
        "Fig. 8 — varying the cluster sizes (2:4 / 4:8 / 8:16)",
        &rows,
        &before,
    );
}
