//! Regenerates Fig. 9: same cells, different shapes.
use bench::experiments::fig9_dimensionality::run;
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run();
    report::publish(
        "fig9_dimensionality",
        "Fig. 9 — varying the data dimensionality (10,000M cells)",
        &rows,
        &before,
    );
}
