//! Regenerates Fig. 9: same cells, different shapes.
use bench::experiments::fig9_dimensionality::run;
use bench::report;

fn main() {
    let (rows, _) = run();
    report::print(
        "Fig. 9 — varying the data dimensionality (10,000M cells)",
        &rows,
    );
}
