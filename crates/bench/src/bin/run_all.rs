//! Runs every experiment in sequence — the full evaluation section.
use bench::experiments as ex;
use bench::report;

fn main() {
    let (rows, _) = ex::fig6_parallelism::run(ex::fig6_parallelism::PARTITION_SWEEP);
    report::print("Fig. 6 — varying the number of partitions", &rows);
    let (rows, _) = ex::table2_resources::run();
    report::print("Table 2 — node resource usage during V2S", &rows);
    let (rows, _) = ex::fig7_data_scaling::run(ex::fig7_data_scaling::ROW_SWEEP);
    report::print("Fig. 7 — varying the data size", &rows);
    let (rows, _) = ex::fig8_cluster_scaling::run(ex::fig8_cluster_scaling::CLUSTER_SWEEP);
    report::print("Fig. 8 — varying the cluster sizes", &rows);
    let (rows, _) = ex::fig9_dimensionality::run();
    report::print("Fig. 9 — varying the data dimensionality", &rows);
    let (rows, _) = ex::table3_dataset_d2::run();
    report::print("Table 3 — dataset D2", &rows);
    let (rows, _) = ex::fig10_v2s_vs_jdbc::run();
    report::print("Fig. 10 — V2S vs JDBC DefaultSource load", &rows);
    let (rows, _) = ex::fig11_s2v_vs_jdbc::run();
    report::print("Fig. 11 — S2V vs JDBC DefaultSource save", &rows);
    let (rows, _) = ex::fig12_vs_hdfs::run();
    report::print("Fig. 12 — V2S/S2V vs DFS read/write", &rows);
    let (rows, _, _) = ex::table4_vs_copy::run(ex::table4_vs_copy::PART_SWEEP);
    report::print("Table 4 — S2V vs native COPY", &rows);
}
