//! Runs every experiment in sequence — the full evaluation section.
//! Each experiment also lands a `BENCH_<name>.json` report carrying
//! the data-collector counters it moved.
use bench::experiments as ex;
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = ex::fig6_parallelism::run(ex::fig6_parallelism::PARTITION_SWEEP);
    report::publish(
        "fig6_parallelism",
        "Fig. 6 — varying the number of partitions",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _) = ex::table2_resources::run();
    report::publish(
        "table2_resources",
        "Table 2 — node resource usage during V2S",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _) = ex::fig7_data_scaling::run(ex::fig7_data_scaling::ROW_SWEEP);
    report::publish(
        "fig7_data_scaling",
        "Fig. 7 — varying the data size",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _) = ex::fig8_cluster_scaling::run(ex::fig8_cluster_scaling::CLUSTER_SWEEP);
    report::publish(
        "fig8_cluster_scaling",
        "Fig. 8 — varying the cluster sizes",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _) = ex::fig9_dimensionality::run();
    report::publish(
        "fig9_dimensionality",
        "Fig. 9 — varying the data dimensionality",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _) = ex::table3_dataset_d2::run();
    report::publish("table3_dataset_d2", "Table 3 — dataset D2", &rows, &before);
    let before = report::begin();
    let (rows, _) = ex::fig10_v2s_vs_jdbc::run();
    report::publish(
        "fig10_v2s_vs_jdbc",
        "Fig. 10 — V2S vs JDBC DefaultSource load",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _) = ex::fig11_s2v_vs_jdbc::run();
    report::publish(
        "fig11_s2v_vs_jdbc",
        "Fig. 11 — S2V vs JDBC DefaultSource save",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _) = ex::fig12_vs_hdfs::run();
    report::publish(
        "fig12_vs_hdfs",
        "Fig. 12 — V2S/S2V vs DFS read/write",
        &rows,
        &before,
    );
    let before = report::begin();
    let (rows, _, _) = ex::table4_vs_copy::run(ex::table4_vs_copy::PART_SWEEP);
    report::publish(
        "table4_vs_copy",
        "Table 4 — S2V vs native COPY",
        &rows,
        &before,
    );
}
