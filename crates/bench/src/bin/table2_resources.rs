//! Regenerates Table 2: per-node CPU and network during V2S.
use bench::experiments::table2_resources::run;
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run();
    report::publish(
        "table2_resources",
        "Table 2 — node resource usage during V2S (steady state)",
        &rows,
        &before,
    );
}
