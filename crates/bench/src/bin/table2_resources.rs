//! Regenerates Table 2: per-node CPU and network during V2S.
use bench::experiments::table2_resources::run;
use bench::report;

fn main() {
    let (rows, _) = run();
    report::print(
        "Table 2 — node resource usage during V2S (steady state)",
        &rows,
    );
}
