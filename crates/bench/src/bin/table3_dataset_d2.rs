//! Regenerates Table 3: performance with dataset D2.
use bench::experiments::table3_dataset_d2::run;
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _) = run();
    report::publish(
        "table3_dataset_d2",
        "Table 3 — dataset D2 (1.46B tweet rows)",
        &rows,
        &before,
    );
}
