//! Regenerates Table 3: performance with dataset D2.
use bench::experiments::table3_dataset_d2::run;
use bench::report;

fn main() {
    let (rows, _) = run();
    report::print("Table 3 — dataset D2 (1.46B tweet rows)", &rows);
}
