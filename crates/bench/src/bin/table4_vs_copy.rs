//! Regenerates Table 4: S2V vs the native parallel COPY.
use bench::experiments::table4_vs_copy::{run, PART_SWEEP};
use bench::report;

fn main() {
    let (rows, _, _) = run(PART_SWEEP);
    report::print("Table 4 — S2V vs native bulk-load COPY", &rows);
}
