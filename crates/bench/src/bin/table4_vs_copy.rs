//! Regenerates Table 4: S2V vs the native parallel COPY.
use bench::experiments::table4_vs_copy::{run, PART_SWEEP};
use bench::report;

fn main() {
    let before = report::begin();
    let (rows, _, _) = run(PART_SWEEP);
    report::publish(
        "table4_vs_copy",
        "Table 4 — S2V vs native bulk-load COPY",
        &rows,
        &before,
    );
}
