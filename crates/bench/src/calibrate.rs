//! Cost-model calibration.
//!
//! Constants are anchored to the paper's hardware section (Sec. 4.1)
//! and to a handful of its measured values:
//!
//! * 1 GbE NICs → 125 MB/s per direction; the paper installs database
//!   traffic and engine traffic on separate interfaces.
//! * Table 2: a single V2S connection reaches ~38 MBps steady state →
//!   the per-connection stream cap of 40 MB/s; at 8 connections per
//!   node the NIC saturates (~120 MBps) — both reproduced.
//! * Client-server result sets and INSERT statements are text-encoded
//!   (`Row::text_wire_size`), which is why 100M rows × 100 floats is
//!   ≈230 GB on the wire, not 80 GB — this is what puts V2S's best
//!   time near the paper's 475–497 s.
//! * Fig. 11's "1M rows via INSERTs took >3 hours" anchors the
//!   per-INSERT server cost (~11 ms/row).
//! * Fig. 9 / Table 3 anchor the per-row Avro encode/parse costs.
//! * Fig. 12 anchors the DFS disk rates (concurrent block reads ~60
//!   MB/s per spindle; sequential ingest writes ~250 MB/s with the page
//!   cache absorbing bursts).

/// Seconds of CPU per (row, byte) for one labeled unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkRate {
    pub sec_per_row: f64,
    pub sec_per_byte: f64,
}

impl WorkRate {
    pub const fn new(sec_per_row: f64, sec_per_byte: f64) -> WorkRate {
        WorkRate {
            sec_per_row,
            sec_per_byte,
        }
    }

    pub fn seconds(&self, rows: f64, bytes: f64) -> f64 {
        self.sec_per_row * rows + self.sec_per_byte * bytes
    }
}

/// All model constants.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// NIC bandwidth per direction (bytes/s): 1 GbE.
    pub link_bw: f64,
    /// DFS-internal (replication) NIC bandwidth.
    pub dfs_int_bw: f64,
    /// Single client-connection stream cap (Table 2's ~38 MBps).
    pub db_stream_cap: f64,
    /// Database-internal shuffle stream cap.
    pub internal_stream_cap: f64,
    /// DFS concurrent block-read disk rate per node.
    pub dfs_disk_read: f64,
    /// DFS sequential ingest disk rate per node.
    pub dfs_disk_write: f64,
    /// Cores available per database node (2×8 physical).
    pub db_cores: f64,
    /// Task-usable cores per compute node (75% of 32 logical).
    pub compute_cores: f64,
    /// Cores on auxiliary nodes (driver/client, DFS datanodes).
    pub aux_cores: f64,
    /// CPU cost of pushing bytes onto / pulling them off the wire.
    pub net_send_cpu_per_byte: f64,
    pub net_recv_cpu_per_byte: f64,
    /// Database-side result-set encode CPU per byte sent (drives the
    /// ~5%/~20% CPU utilizations of Table 2).
    pub db_send_cpu_per_byte: f64,
    /// Database node local data-disk bandwidth (COPY file reads).
    pub db_disk_bw: f64,
    /// Serialized cost of one writing commit on the global commit path.
    pub commit_seconds: f64,
}

impl Default for Calibration {
    fn default() -> Calibration {
        Calibration {
            link_bw: 125e6,
            dfs_int_bw: 250e6,
            db_stream_cap: 40e6,
            internal_stream_cap: 80e6,
            dfs_disk_read: 60e6,
            dfs_disk_write: 250e6,
            db_cores: 16.0,
            compute_cores: 24.0,
            aux_cores: 8.0,
            net_send_cpu_per_byte: 1.0e-9,
            net_recv_cpu_per_byte: 1.0e-9,
            db_send_cpu_per_byte: 25.0e-9,
            db_disk_bw: 190e6,
            commit_seconds: 0.25,
        }
    }
}

impl Calibration {
    /// CPU cost of a labeled work item.
    pub fn work_rate(&self, label: &str) -> WorkRate {
        match label {
            // Hash-range scan: every visible row is decoded and hashed;
            // dominated by bytes touched (≈1 GB/s/core scan+hash).
            "scan_hash" => WorkRate::new(0.02e-6, 0.4e-9),
            "scan_local" => WorkRate::new(0.02e-6, 0.5e-9),
            "filter_eval" => WorkRate::new(0.05e-6, 0.0),
            // Insert routing: hash + buffer per row.
            "route_hash" => WorkRate::new(0.15e-6, 1.0e-9),
            // Avro encode in the engine (Fig. 9's per-row S2V overhead).
            "avro_encode" => WorkRate::new(2.0e-6, 5.0e-9),
            // COPY-side Avro parse/unpack (the other half of Fig. 9).
            "copy_parse_avro" => WorkRate::new(3.0e-6, 30.0e-9),
            // CSV parse for native COPY (Table 4).
            "copy_parse_csv" => WorkRate::new(0.3e-6, 10.0e-9),
            // JDBC INSERT path: per-statement planning dominates — the
            // paper's 1M rows > 3 h anchor (≈11 ms/row).
            "jdbc_insert_parse" => WorkRate::new(11.0e-3, 0.0),
            "jdbc_insert_encode" => WorkRate::new(2.0e-6, 2.0e-9),
            // Columnar file encode/decode in the engine.
            "colfile_encode" => WorkRate::new(0.2e-6, 2.0e-9),
            "colfile_decode" => WorkRate::new(0.2e-6, 2.0e-9),
            "udf_eval" => WorkRate::new(1.0e-6, 0.0),
            "delete_mark" => WorkRate::new(0.2e-6, 0.0),
            // Append-mode final copy of staging into target (Sec. 5).
            "s2v_append_copy" => WorkRate::new(0.5e-6, 3.0e-9),
            _ => WorkRate::new(0.1e-6, 1.0e-9),
        }
    }

    /// Fixed latency of a labeled setup step.
    pub fn setup_delay(&self, label: &str) -> f64 {
        match label {
            "v2s_connect" | "s2v_connect" => 0.5,
            "jdbc_connect" => 1.0,
            // S2V's protocol-table create/teardown — "on the order of a
            // few seconds" (Sec. 4.7.1).
            "s2v_setup_tables" => 2.0,
            "s2v_teardown_tables" => 1.5,
            // Overwrite's final commit: an atomic rename.
            "s2v_atomic_rename" => 1.0,
            _ => 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_rate_math() {
        let r = WorkRate::new(1e-6, 1e-9);
        assert!((r.seconds(1e6, 1e9) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn anchors_hold() {
        let c = Calibration::default();
        // Table 2: one stream ≈ 38–40 MB/s, eight saturate the NIC.
        assert!(c.db_stream_cap <= c.link_bw / 3.0);
        assert!(8.0 * c.db_stream_cap > c.link_bw);
        // Fig. 11: 1M INSERTed rows on one connection exceed 3 hours.
        let insert = c.work_rate("jdbc_insert_parse").seconds(1e6, 0.0);
        assert!(insert > 3.0 * 3600.0, "{insert}");
        // S2V per-row costs exceed V2S's (Fig. 9's asymmetric flip).
        assert!(
            c.work_rate("avro_encode").sec_per_row + c.work_rate("copy_parse_avro").sec_per_row
                > c.work_rate("scan_hash").sec_per_row * 10.0
        );
    }
}
