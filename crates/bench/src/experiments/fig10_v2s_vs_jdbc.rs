//! Fig. 10 — loading with V2S vs the JDBC default source, with and
//! without filter pushdown (5% selectivity).
//!
//! Paper: with the filter pushed down both collapse to a small fraction
//! of the full-load time and perform comparably; without pushdown V2S
//! is ~4× faster because every JDBC range query funnels through the
//! single configured host node.

use common::Expr;
use netsim::record::Event;

use crate::datasets::{self, specs};
use crate::experiments::{seed_table, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

fn load_v2s(bed: &TestBed, filter: Option<Expr>) -> Vec<Event> {
    bed.clear_recorders();
    let mut df = bed
        .ctx
        .read()
        .format(connector::DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", "fig10")
        .option("numPartitions", 32)
        .load()
        .expect("V2S relation");
    if let Some(f) = filter {
        df = df.filter(f).expect("filter");
    }
    df.collect().expect("V2S load");
    bed.db.recorder().drain()
}

fn load_jdbc(bed: &TestBed, filter: Option<Expr>) -> Vec<Event> {
    bed.clear_recorders();
    let mut df = bed
        .ctx
        .read()
        .format(baselines::JDBC_FORMAT)
        .option("host", 0)
        .option("dbtable", "fig10")
        .option("partitionColumn", "pct")
        .option("lowerBound", 0)
        .option("upperBound", 99)
        .option("numPartitions", 32)
        .load()
        .expect("JDBC relation");
    if let Some(f) = filter {
        df = df.filter(f).expect("filter");
    }
    df.collect().expect("JDBC load");
    bed.db.recorder().drain()
}

/// Returns report rows plus
/// `(v2s_push, jdbc_push, v2s_full, jdbc_full)` seconds.
pub fn run() -> (Vec<ReportRow>, (f64, f64, f64, f64)) {
    let bed = TestBed::new(4, 8);
    // D1 plus the integer column of Sec. 4.7.1 for range partitioning
    // and the 5%-selectivity predicate.
    let (schema, rows) = datasets::d1_with_int_column(LAB_D1_ROWS, 100, 42);
    seed_table(&bed, schema, rows, "fig10");
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale());

    let pushdown = || Expr::col("pct").lt(Expr::lit(5i64));

    let v2s_push = simulate(&load_v2s(&bed, Some(pushdown())), &params).seconds;
    let jdbc_push = simulate(&load_jdbc(&bed, Some(pushdown())), &params).seconds;
    let v2s_full = simulate(&load_v2s(&bed, None), &params).seconds;
    let jdbc_full = simulate(&load_jdbc(&bed, None), &params).seconds;

    let report = vec![
        ReportRow::new("V2S, 5% pushdown", None, v2s_push),
        ReportRow::new("JDBC, 5% pushdown", None, jdbc_push),
        ReportRow::new("V2S, no pushdown", Some(497.0), v2s_full),
        ReportRow::new("JDBC, no pushdown", None, jdbc_full),
    ];
    (report, (v2s_push, jdbc_push, v2s_full, jdbc_full))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushdown_collapses_and_v2s_wins_4x_without() {
        let (_, (v2s_push, jdbc_push, v2s_full, jdbc_full)) = run();
        // Pushdown shrinks both loads dramatically.
        assert!(v2s_push < v2s_full / 4.0, "{v2s_push} vs {v2s_full}");
        assert!(jdbc_push < jdbc_full / 4.0, "{jdbc_push} vs {jdbc_full}");
        // With pushdown the two land in the same order of magnitude
        // (the paper calls them "similar"; our model keeps a residual
        // funnel penalty for JDBC because its 5% result set still exits
        // through a single host NIC — see EXPERIMENTS.md).
        assert!(jdbc_push / v2s_push < 8.0, "{jdbc_push} vs {v2s_push}");
        // Without pushdown: the paper's ~4× (we accept 2.5–6×).
        let gain = jdbc_full / v2s_full;
        assert!((2.5..6.0).contains(&gain), "V2S gain {gain}");
    }
}
