//! Fig. 11 — saving with S2V vs the JDBC default source at small row
//! counts, plus the 1M-row extrapolation of Sec. 4.7.1.
//!
//! Paper: at a single row the fixed costs show (S2V 5 s — protocol
//! table setup/teardown — vs JDBC 3 s); from 1K rows up S2V's COPY path
//! wins decisively; at 1M rows S2V takes 19 s while the INSERT-based
//! JDBC save ran over 3 hours before being stopped.

use netsim::record::Event;
use sparklet::{Options, SaveMode};

use crate::datasets;
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

fn save_s2v(bed: &TestBed, rows: usize, table: &str) -> Vec<Event> {
    let (schema, data) = datasets::d1(rows, 100, 42);
    let df = bed.dataframe(schema, data, 1);
    bed.clear_recorders();
    // The connector repartitions per its numPartitions option (the
    // paper's bulk best practice); the JDBC source below cannot — it
    // writes with the DataFrame's own partitioning.
    let partitions = (rows / 1_000).clamp(1, 16);
    df.write()
        .format(connector::DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("host", 0)
                .with("table", table)
                .with("numPartitions", partitions),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .expect("S2V save");
    bed.db.recorder().drain()
}

fn save_jdbc(bed: &TestBed, rows: usize, table: &str) -> Vec<Event> {
    let (schema, data) = datasets::d1(rows, 100, 43);
    let df = bed.dataframe(schema, data, 1);
    bed.clear_recorders();
    df.write()
        .format(baselines::JDBC_FORMAT)
        .options(Options::new().with("host", 0).with("dbtable", table))
        .mode(SaveMode::Overwrite)
        .save()
        .expect("JDBC save");
    bed.db.recorder().drain()
}

/// `(rows, lab rows)` — the 1M point runs at reduced lab scale.
pub const ROW_POINTS: &[(u64, usize)] = &[
    (1, 1),
    (1_000, 1_000),
    (10_000, 10_000),
    (1_000_000, 10_000),
];

fn paper_s2v(rows: u64) -> Option<f64> {
    match rows {
        1 => Some(5.0),
        1_000_000 => Some(19.0),
        _ => None,
    }
}

fn paper_jdbc(rows: u64) -> Option<f64> {
    match rows {
        1 => Some(3.0),
        // ">3 hours, stopped": report the 3-hour floor.
        1_000_000 => Some(3.0 * 3600.0),
        _ => None,
    }
}

pub fn run() -> (Vec<ReportRow>, Vec<(u64, f64, f64)>) {
    let bed = TestBed::new(4, 8);
    let mut report = Vec::new();
    let mut series = Vec::new();
    for &(paper_rows, lab_rows) in ROW_POINTS {
        let scale = paper_rows as f64 / lab_rows as f64;
        let params = SimParams::new(4, 8, scale);
        let s2v = simulate(&save_s2v(&bed, lab_rows, "fig11_s2v"), &params).seconds;
        let jdbc = simulate(&save_jdbc(&bed, lab_rows, "fig11_jdbc"), &params).seconds;
        report.push(ReportRow::new(
            format!("S2V  {paper_rows:>8} rows"),
            paper_s2v(paper_rows),
            s2v,
        ));
        report.push(ReportRow::new(
            format!("JDBC {paper_rows:>8} rows"),
            paper_jdbc(paper_rows),
            jdbc,
        ));
        series.push((paper_rows, s2v, jdbc));
    }
    (report, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_at_one_row_and_divergence_at_bulk() {
        let (_, series) = run();
        let (_, s2v_1, jdbc_1) = series[0];
        // One row shows fixed costs, a few seconds each, with S2V's
        // protocol tables making it the slower one.
        assert!((2.0..12.0).contains(&s2v_1), "S2V@1 {s2v_1}");
        assert!((0.5..6.0).contains(&jdbc_1), "JDBC@1 {jdbc_1}");
        assert!(s2v_1 > jdbc_1, "S2V {s2v_1} vs JDBC {jdbc_1}");
        // From 1K rows S2V wins.
        let (_, s2v_1k, jdbc_1k) = series[1];
        assert!(s2v_1k < jdbc_1k, "1K: S2V {s2v_1k} vs JDBC {jdbc_1k}");
        // At 1M rows: S2V tens of seconds, JDBC hours.
        let (_, s2v_1m, jdbc_1m) = series[3];
        assert!(s2v_1m < 60.0, "S2V@1M {s2v_1m}");
        assert!(jdbc_1m > 3.0 * 3600.0, "JDBC@1M {jdbc_1m}");
    }
}
