//! Fig. 12 — connector I/O vs the engine's native DFS read/write.
//!
//! Paper: a second 4-node cluster runs HDFS (like the database, not
//! co-located with the engine). Reading columnar files from the DFS is
//! ~30% faster than V2S (blind block streams vs consistent epoch-pinned
//! queries); writing to the DFS lands within a few percent of S2V —
//! the headline that the database can serve as durable DataFrame
//! storage in HDFS's place.

use netsim::record::Event;
use sparklet::{Options, SaveMode};

use crate::datasets::{self, specs};
use crate::experiments::{run_s2v_save, run_v2s_load, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

fn dfs_write(bed: &TestBed, partitions: usize) -> Vec<Event> {
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    let df = bed.dataframe(schema, rows, partitions);
    bed.clear_recorders();
    df.write()
        .format(baselines::DFS_FORMAT)
        .options(Options::new().with("path", "/bench/fig12"))
        .mode(SaveMode::Overwrite)
        .save()
        .expect("DFS write");
    bed.dfs.as_ref().expect("bed has DFS").recorder().drain()
}

fn dfs_read(bed: &TestBed) -> Vec<Event> {
    bed.clear_recorders();
    let df = bed
        .ctx
        .read()
        .format(baselines::DFS_FORMAT)
        .option("path", "/bench/fig12")
        .load()
        .expect("DFS relation");
    df.collect().expect("DFS read");
    bed.dfs.as_ref().expect("bed has DFS").recorder().drain()
}

/// Returns `(report, (v2s, s2v, dfs_read, dfs_write))` seconds.
pub fn run() -> (Vec<ReportRow>, (f64, f64, f64, f64)) {
    // The paper's two 4:8 clusters: one database, one DFS.
    let bed = TestBed::new(4, 8).with_dfs(4, 256 << 10);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale()).with_dfs(4);

    let s2v_events = run_s2v_save(&bed, schema.clone(), rows.clone(), "fig12", 128);
    let s2v = simulate(&s2v_events, &params).seconds;
    let v2s_events = run_v2s_load(&bed, "fig12", 32);
    let v2s = simulate(&v2s_events, &params).seconds;

    let write_events = dfs_write(&bed, 64);
    let write = simulate(&write_events, &params).seconds;
    let read_events = dfs_read(&bed);
    let read = simulate(&read_events, &params).seconds;

    let report = vec![
        ReportRow::new("V2S read", Some(497.0), v2s),
        ReportRow::new("DFS read", Some(343.0), read),
        ReportRow::new("S2V write", Some(252.0), s2v),
        ReportRow::new("DFS write", None, write),
    ];
    (report, (v2s, s2v, read, write))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_read_faster_write_comparable() {
        let (_, (v2s, s2v, read, write)) = run();
        // DFS read beats V2S by roughly the paper's ~30% (we accept
        // 10–50% faster).
        let speedup = v2s / read;
        assert!((1.1..2.0).contains(&speedup), "read speedup {speedup}");
        // DFS write and S2V land in the same ballpark (within 40%).
        let ratio = write / s2v;
        assert!((0.6..1.4).contains(&ratio), "write/S2V {ratio}");
    }
}
