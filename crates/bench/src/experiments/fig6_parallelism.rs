//! Fig. 6 — V2S and S2V execution time vs number of partitions.
//!
//! Paper: a bowl shape for both directions on the 4:8 cluster with D1.
//! V2S's best is 475 s at 128 partitions (497 s at 32, which the paper
//! recommends in practice); S2V's best is 252 s at 128. Four partitions
//! starve the network; 256 pay per-connection overhead (every query
//! rescans the node's segment to hash-filter it).

use crate::datasets::{self, specs};
use crate::experiments::{run_s2v_save, run_v2s_load, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

/// Paper anchor points (seconds) where Sec. 4.2 states them.
fn paper_v2s(partitions: usize) -> Option<f64> {
    match partitions {
        32 => Some(497.0),
        128 => Some(475.0),
        _ => None,
    }
}

fn paper_s2v(partitions: usize) -> Option<f64> {
    match partitions {
        128 => Some(252.0),
        _ => None,
    }
}

pub const PARTITION_SWEEP: &[usize] = &[4, 8, 16, 32, 64, 128, 256];

/// Run the sweep; returns (report rows, (v2s secs, s2v secs) per point).
pub fn run(sweep: &[usize]) -> (Vec<ReportRow>, Vec<(usize, f64, f64)>) {
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);

    let mut report = Vec::new();
    let mut series = Vec::new();
    for &partitions in sweep {
        // S2V at this parallelism.
        let events = run_s2v_save(&bed, schema.clone(), rows.clone(), "fig6", partitions);
        let s2v = simulate(&events, &SimParams::new(4, 8, spec.scale())).seconds;

        // V2S over the data that S2V just landed.
        let events = run_v2s_load(&bed, "fig6", partitions);
        let v2s = simulate(&events, &SimParams::new(4, 8, spec.scale())).seconds;

        report.push(ReportRow::new(
            format!("V2S {partitions:>3} partitions"),
            paper_v2s(partitions),
            v2s,
        ));
        report.push(ReportRow::new(
            format!("S2V {partitions:>3} partitions"),
            paper_s2v(partitions),
            s2v,
        ));
        series.push((partitions, v2s, s2v));
    }
    (report, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bowl_shape_holds() {
        // A cheap sweep still exhibits the paper's qualitative claims.
        let (_, series) = run(&[4, 32, 256]);
        let v2s: Vec<f64> = series.iter().map(|(_, v, _)| *v).collect();
        let s2v: Vec<f64> = series.iter().map(|(_, _, s)| *s).collect();
        // Too little parallelism is the worst case for both.
        assert!(
            v2s[0] > v2s[1] * 1.5,
            "V2S@4 {} vs V2S@32 {}",
            v2s[0],
            v2s[1]
        );
        assert!(
            s2v[0] > s2v[1] * 1.5,
            "S2V@4 {} vs S2V@32 {}",
            s2v[0],
            s2v[1]
        );
        // Excessive parallelism costs more than the sweet spot.
        assert!(v2s[2] > v2s[1], "V2S@256 {} vs V2S@32 {}", v2s[2], v2s[1]);
    }

    #[test]
    fn near_paper_anchors() {
        let (_, series) = run(&[32, 128]);
        let (_, v2s32, _) = series[0];
        let (_, v2s128, s2v128) = series[1];
        // Within 30% of the paper's stated values.
        assert!((v2s32 / 497.0 - 1.0).abs() < 0.3, "V2S@32 {v2s32}");
        assert!((v2s128 / 475.0 - 1.0).abs() < 0.35, "V2S@128 {v2s128}");
        assert!((s2v128 / 252.0 - 1.0).abs() < 0.35, "S2V@128 {s2v128}");
    }
}
