//! Fig. 7 — data scalability: execution time vs row count (log-log).
//!
//! Paper: both directions scale linearly in rows from 1M to 1000M on
//! the 4:8 cluster. S2V is somewhat slower than V2S at small sizes (its
//! protocol-table setup/teardown dominates), then crosses over and is
//! faster at large sizes. Anchor: S2V at 1M rows takes 19 s (Sec.
//! 4.7.1 mentions it against the JDBC comparison).

use crate::datasets::{self, specs};
use crate::experiments::{run_s2v_save, run_v2s_load, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

pub const ROW_SWEEP: &[u64] = &[1_000_000, 10_000_000, 100_000_000, 1_000_000_000];

/// Paper anchors.
fn paper_v2s(rows: u64) -> Option<f64> {
    match rows {
        100_000_000 => Some(497.0),
        _ => None,
    }
}

fn paper_s2v(rows: u64) -> Option<f64> {
    match rows {
        1_000_000 => Some(19.0),
        100_000_000 => Some(252.0),
        _ => None,
    }
}

pub fn run(sweep: &[u64]) -> (Vec<ReportRow>, Vec<(u64, f64, f64)>) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);

    // The functional run is identical for every size; only the scale
    // factor changes (V2S at its practical 32 partitions, S2V at 128 —
    // the Fig. 6 best-practice values the paper reuses here).
    let s2v_events = run_s2v_save(&bed, schema.clone(), rows.clone(), "fig7", 128);
    let v2s_events = run_v2s_load(&bed, "fig7", 32);

    let mut report = Vec::new();
    let mut series = Vec::new();
    for &paper_rows in sweep {
        let spec = specs::d1_rows(paper_rows, LAB_D1_ROWS as u64);
        let v2s = simulate(&v2s_events, &SimParams::new(4, 8, spec.scale())).seconds;
        let s2v = simulate(&s2v_events, &SimParams::new(4, 8, spec.scale())).seconds;
        let label_rows = paper_rows / 1_000_000;
        report.push(ReportRow::new(
            format!("V2S {label_rows:>5}M rows"),
            paper_v2s(paper_rows),
            v2s,
        ));
        report.push(ReportRow::new(
            format!("S2V {label_rows:>5}M rows"),
            paper_s2v(paper_rows),
            s2v,
        ));
        series.push((paper_rows, v2s, s2v));
    }
    (report, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_scaling_with_crossover() {
        let (_, series) = run(&[1_000_000, 100_000_000, 1_000_000_000]);
        let (r0, v0, s0) = series[0];
        let (r1, v1, s1) = series[1];
        let (r2, v2, s2) = series[2];
        assert_eq!((r0, r1, r2), (1_000_000, 100_000_000, 1_000_000_000));
        // Linearity: 10x rows within [5x, 15x] time at the large end.
        assert!(v2 / v1 > 5.0 && v2 / v1 < 15.0, "V2S {v1} → {v2}");
        assert!(s2 / s1 > 5.0 && s2 / s1 < 15.0, "S2V {s1} → {s2}");
        // At 1M rows S2V's fixed costs make it the slower direction...
        assert!(s0 > v0, "1M rows: S2V {s0} vs V2S {v0}");
        // ...and at 100M+ the crossover has happened.
        assert!(s1 < v1, "100M rows: S2V {s1} vs V2S {v1}");
        assert!(s2 < v2);
    }
}
