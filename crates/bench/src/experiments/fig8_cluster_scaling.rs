//! Fig. 8 — cluster scalability: 2:4, 4:8, 8:16 clusters with data
//! doubled alongside (fixed data per node).
//!
//! Paper: a slight (<10%) degradation per doubling; partitions scale
//! with the cluster (V2S 16/32/64, S2V 64/128/256).

use crate::datasets::{self, specs};
use crate::experiments::{run_s2v_save, run_v2s_load, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

/// `(db nodes, compute nodes, paper rows, v2s partitions, s2v partitions)`
pub const CLUSTER_SWEEP: &[(usize, usize, u64, usize, usize)] = &[
    (2, 4, 100_000_000, 16, 64),
    (4, 8, 200_000_000, 32, 128),
    (8, 16, 400_000_000, 64, 256),
];

pub fn run(
    sweep: &[(usize, usize, u64, usize, usize)],
) -> (Vec<ReportRow>, Vec<(usize, f64, f64)>) {
    let mut report = Vec::new();
    let mut series = Vec::new();
    for &(db_nodes, compute_nodes, paper_rows, v2s_parts, s2v_parts) in sweep {
        let bed = TestBed::new(db_nodes, compute_nodes);
        let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
        let spec = specs::d1_rows(paper_rows, LAB_D1_ROWS as u64);

        let s2v_events = run_s2v_save(&bed, schema.clone(), rows.clone(), "fig8", s2v_parts);
        let s2v = simulate(
            &s2v_events,
            &SimParams::new(db_nodes, compute_nodes, spec.scale()),
        )
        .seconds;

        let v2s_events = run_v2s_load(&bed, "fig8", v2s_parts);
        let v2s = simulate(
            &v2s_events,
            &SimParams::new(db_nodes, compute_nodes, spec.scale()),
        )
        .seconds;

        report.push(ReportRow::new(
            format!("V2S {db_nodes}:{compute_nodes} cluster"),
            None,
            v2s,
        ));
        report.push(ReportRow::new(
            format!("S2V {db_nodes}:{compute_nodes} cluster"),
            None,
            s2v,
        ));
        series.push((db_nodes, v2s, s2v));
    }
    (report, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_flat_scaling_per_doubling() {
        let (_, series) = run(CLUSTER_SWEEP);
        for pair in series.windows(2) {
            let (n0, v0, s0) = pair[0];
            let (n1, v1, s1) = pair[1];
            assert_eq!(n1, n0 * 2);
            // Data per node is fixed: each doubling may degrade only
            // mildly (the paper reports <10%; we allow 20% headroom).
            assert!(v1 / v0 < 1.2, "V2S {v0} → {v1}");
            assert!(s1 / s0 < 1.2, "S2V {s0} → {s1}");
            // And it must not mysteriously speed up either.
            assert!(v1 / v0 > 0.8);
            assert!(s1 / s0 > 0.8);
        }
    }
}
