//! Fig. 9 — data dimensionality: the same 10,000M cells shaped as
//! 100 cols × 100M rows vs 1 col × 10,000M rows.
//!
//! Paper: the 1-column shape is significantly slower for both
//! directions — there is a fixed per-row overhead (result-set row
//! framing for V2S; Avro row encode in the engine and per-row parse in
//! the database for S2V).

use crate::datasets::{self, specs};
use crate::experiments::{run_s2v_save, run_v2s_load, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

/// Shapes: `(label, columns, paper rows, lab rows)`. Cells are constant.
pub const SHAPES: &[(&str, usize, u64, usize)] = &[
    ("100 cols x 100M rows", 100, 100_000_000, LAB_D1_ROWS),
    ("1 col x 10000M rows", 1, 10_000_000_000, LAB_D1_ROWS * 100),
];

pub fn run() -> (Vec<ReportRow>, Vec<(&'static str, f64, f64)>) {
    let mut report = Vec::new();
    let mut series = Vec::new();
    for &(label, cols, paper_rows, lab_rows) in SHAPES {
        let bed = TestBed::new(4, 8);
        let (schema, rows) = datasets::d1(lab_rows, cols, 42);
        let spec = specs::d1_rows(paper_rows, lab_rows as u64);

        let s2v_events = run_s2v_save(&bed, schema.clone(), rows.clone(), "fig9", 128);
        let s2v = simulate(&s2v_events, &SimParams::new(4, 8, spec.scale())).seconds;

        let v2s_events = run_v2s_load(&bed, "fig9", 32);
        let v2s = simulate(&v2s_events, &SimParams::new(4, 8, spec.scale())).seconds;

        let paper_v2s = if cols == 100 { Some(497.0) } else { None };
        let paper_s2v = if cols == 100 { Some(252.0) } else { None };
        report.push(ReportRow::new(format!("V2S {label}"), paper_v2s, v2s));
        report.push(ReportRow::new(format!("S2V {label}"), paper_s2v, s2v));
        series.push((label, v2s, s2v));
    }
    (report, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_column_shape_is_slower_for_both_directions() {
        let (_, series) = run();
        let (_, v2s_wide, s2v_wide) = series[0];
        let (_, v2s_tall, s2v_tall) = series[1];
        assert!(
            v2s_tall > v2s_wide * 1.1,
            "V2S wide {v2s_wide} vs tall {v2s_tall}"
        );
        assert!(
            s2v_tall > s2v_wide * 1.3,
            "S2V wide {s2v_wide} vs tall {s2v_tall}"
        );
        // The S2V penalty is the larger one (its per-row costs are
        // bigger — the paper's Avro framing argument).
        assert!(s2v_tall / s2v_wide > v2s_tall / v2s_wide * 0.9);
    }
}
