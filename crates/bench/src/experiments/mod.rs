//! One experiment module per table/figure of the paper's Sec. 4.

pub mod fig10_v2s_vs_jdbc;
pub mod fig11_s2v_vs_jdbc;
pub mod fig12_vs_hdfs;
pub mod fig6_parallelism;
pub mod fig7_data_scaling;
pub mod fig8_cluster_scaling;
pub mod fig9_dimensionality;
pub mod pushdown;
pub mod rebalance;
pub mod stream;
pub mod table2_resources;
pub mod table3_dataset_d2;
pub mod table4_vs_copy;

use common::{Row, Schema};
use netsim::record::Event;
use sparklet::{Options, SaveMode};

use crate::fabric::TestBed;

/// Default lab-scale D1 row count (volumes scale linearly, so only the
/// per-partition structure needs to be realistic).
pub const LAB_D1_ROWS: usize = 8_000;

/// Save rows into `table` through S2V (overwrite) and return the
/// recorded events of the save alone.
pub fn run_s2v_save(
    bed: &TestBed,
    schema: Schema,
    rows: Vec<Row>,
    table: &str,
    partitions: usize,
) -> Vec<Event> {
    let df = bed.dataframe(schema, rows, partitions);
    bed.clear_recorders();
    df.write()
        .format(connector::DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("host", 0)
                .with("table", table)
                .with("numPartitions", partitions),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .expect("S2V save");
    bed.db.recorder().drain()
}

/// Populate `table` (quietly) so a read experiment has a source.
pub fn seed_table(bed: &TestBed, schema: Schema, rows: Vec<Row>, table: &str) {
    let df = bed.dataframe(schema, rows, bed.compute_nodes);
    df.write()
        .format(connector::DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("host", 0)
                .with("table", table)
                .with("numPartitions", bed.db_nodes * 4),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .expect("seeding save");
    bed.clear_recorders();
}

/// Load `table` through V2S with `partitions` and return the events.
pub fn run_v2s_load(bed: &TestBed, table: &str, partitions: usize) -> Vec<Event> {
    bed.clear_recorders();
    let df = bed
        .ctx
        .read()
        .format(connector::DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", table)
        .option("numPartitions", partitions)
        .load()
        .expect("V2S relation");
    let rows = df.collect().expect("V2S load");
    assert!(!rows.is_empty(), "load produced no rows");
    bed.db.recorder().drain()
}
