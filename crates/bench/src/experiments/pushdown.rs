//! Ablation (DESIGN.md §12): zone-map data skipping × partial-aggregate
//! pushdown, over a time-clustered fact table.
//!
//! The workload is the canonical analytic probe: filter a narrow recent
//! time window out of an append-ordered table, then aggregate it. The
//! four cells toggle the two independent optimizations:
//!
//! * **skipping** — per-container zone maps eliminate containers whose
//!   `ts` range cannot intersect the window before any column is
//!   decoded;
//! * **aggregate pushdown** — each V2S piece ships partial accumulator
//!   states (one row) instead of its matching rows.
//!
//! Volumes are recorded at lab scale and replayed through the simulator
//! at 1M/10M/100M paper-scale rows; the two headline ratios (scanned
//! rows and wire bytes) are scale-invariant and asserted by the
//! in-module acceptance tests.

use std::collections::BTreeMap;

use common::agg::{AggCall, AggFunc};
use common::{row, Expr, Row, Value};
use netsim::record::Event;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::report::ReportRow;
use crate::{simulate, SimParams, TestBed};

/// Lab-scale row count; the simulator scales volumes up from here.
pub const LAB_ROWS: usize = 8_000;
/// Moveout batches; each becomes one ROS container per node with a
/// contiguous `ts` range, which is what makes zone maps selective.
pub const CHUNKS: usize = 16;

/// One ablation cell: its recorded transfer events and counter deltas.
pub struct Cell {
    pub skipping: bool,
    pub agg_pushdown: bool,
    pub events: Vec<Event>,
    pub counters: BTreeMap<String, u64>,
}

impl Cell {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// The full ablation output: the four cells plus the derived ratios.
pub struct PushdownReport {
    pub cells: Vec<Cell>,
    /// Rows examined without skipping / with skipping (agg off cells).
    pub scan_reduction: f64,
    /// V2S wire bytes pulled / shipped as partials (skip-on cells).
    pub wire_reduction: f64,
}

/// Create and populate the clustered table: `ts` is append-ordered, so
/// each moveout chunk becomes containers with narrow `ts` zone maps.
pub fn seed_clustered(bed: &TestBed, table: &str) {
    let mut session = bed.db.connect(0).expect("node 0 up");
    session
        .execute(&format!(
            "CREATE TABLE {table} (id BIGINT, ts BIGINT, grp VARCHAR, val DOUBLE) \
             SEGMENTED BY HASH(id) ALL NODES"
        ))
        .expect("create clustered table");
    let mut rng = StdRng::seed_from_u64(17);
    let rows: Vec<Row> = (0..LAB_ROWS)
        .map(|i| {
            row![
                i as i64,
                i as i64,
                format!("g{}", rng.random_range(0..7)),
                rng.random_range(0..1000) as f64 * 0.1
            ]
        })
        .collect();
    for chunk in rows.chunks(LAB_ROWS / CHUNKS) {
        session.insert(table, chunk.to_vec()).expect("chunk insert");
        bed.db.moveout_all();
    }
    bed.clear_recorders();
}

/// Run one cell: filter the last `1/CHUNKS` time window, aggregate it,
/// verify the answer, and capture events + counters.
pub fn run_cell(bed: &TestBed, table: &str, skipping: bool, agg_pushdown: bool) -> Cell {
    bed.clear_recorders();
    let before = obs::global().snapshot();
    let df = bed
        .ctx
        .read()
        .format(connector::DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", table)
        .option("stats_skipping", skipping)
        .option("agg_pushdown", agg_pushdown)
        .load()
        .expect("V2S relation");
    let window = (LAB_ROWS - LAB_ROWS / CHUNKS) as i64;
    let out = df
        .filter(Expr::col("ts").gt_eq(Expr::lit(window)))
        .expect("filter binds")
        .agg(
            &[],
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Sum, "val"),
                AggCall::new(AggFunc::Min, "ts"),
                AggCall::new(AggFunc::Max, "ts"),
            ],
        )
        .expect("aggregate")
        .collect()
        .expect("collect");
    // Every cell must produce the identical answer; the ablation only
    // moves where the work happens.
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].get(0), &Value::Int64((LAB_ROWS / CHUNKS) as i64));
    assert_eq!(out[0].get(2), &Value::Int64(window));
    assert_eq!(out[0].get(3), &Value::Int64(LAB_ROWS as i64 - 1));
    Cell {
        skipping,
        agg_pushdown,
        events: bed.db.recorder().drain(),
        counters: obs::global().snapshot().counters_since(&before),
    }
}

/// Run all four cells and derive the headline ratios.
pub fn run(bed: &TestBed) -> PushdownReport {
    const TABLE: &str = "pushdown_fact";
    seed_clustered(bed, TABLE);
    let mut cells = Vec::new();
    for (skipping, agg_pushdown) in [(false, false), (false, true), (true, false), (true, true)] {
        cells.push(run_cell(bed, TABLE, skipping, agg_pushdown));
    }
    let by = |skip: bool, agg: bool| {
        cells
            .iter()
            .find(|c| c.skipping == skip && c.agg_pushdown == agg)
            .expect("all four cells ran")
    };
    // Scan reduction on the pure scan path (agg off both sides), wire
    // reduction with skipping fixed on (so only pushdown varies).
    let scan_reduction = by(false, false).counter("scan.rows_examined") as f64
        / by(true, false).counter("scan.rows_examined").max(1) as f64;
    let wire_reduction = by(true, false).counter("v2s.bytes") as f64
        / by(true, true).counter("v2s.bytes").max(1) as f64;
    PushdownReport {
        cells,
        scan_reduction,
        wire_reduction,
    }
}

/// Render the report rows: simulated seconds for each cell at each
/// paper scale, then the scale-invariant ratios.
pub fn report_rows(bed: &TestBed, report: &PushdownReport) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for (scale_label, paper_rows) in [
        ("1M", 1_000_000u64),
        ("10M", 10_000_000),
        ("100M", 100_000_000),
    ] {
        let params = SimParams::new(
            bed.db_nodes,
            bed.compute_nodes,
            paper_rows as f64 / LAB_ROWS as f64,
        );
        for cell in &report.cells {
            let label = format!(
                "{scale_label} rows — skipping {}, agg pushdown {}",
                if cell.skipping { "on" } else { "off" },
                if cell.agg_pushdown { "on" } else { "off" },
            );
            rows.push(ReportRow::new(
                label,
                None,
                simulate(&cell.events, &params).seconds,
            ));
        }
    }
    rows.push(
        ReportRow::new(
            "scanned-row reduction (zone-map skipping)",
            None,
            report.scan_reduction,
        )
        .with_unit("x"),
    );
    rows.push(
        ReportRow::new(
            "wire-byte reduction (aggregate pushdown)",
            None,
            report.wire_reduction,
        )
        .with_unit("x"),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gates of the ablation: ≥5× fewer rows scanned for
    /// the selective window, ≥10× fewer wire bytes for the pushed-down
    /// aggregate — and skipping actually eliminated whole containers.
    #[test]
    fn pushdown_ablation_meets_reduction_targets() {
        let bed = TestBed::new(4, 8);
        let report = run(&bed);
        assert!(
            report.scan_reduction >= 5.0,
            "zone maps must cut scanned rows ≥5x: got {:.1}x",
            report.scan_reduction
        );
        assert!(
            report.wire_reduction >= 10.0,
            "aggregate pushdown must cut wire bytes ≥10x: got {:.1}x",
            report.wire_reduction
        );
        for cell in &report.cells {
            if cell.skipping {
                assert!(
                    cell.counter("scan.containers_skipped") > 0,
                    "skipping cells must eliminate whole containers"
                );
            } else {
                assert_eq!(cell.counter("scan.containers_skipped"), 0);
                assert_eq!(cell.counter("scan.rows_skipped"), 0);
            }
            if cell.agg_pushdown {
                assert!(
                    cell.counter("agg.pushdown.partials_merged") > 0,
                    "pushdown cells must merge partials at the driver"
                );
            } else {
                assert_eq!(cell.counter("agg.pushdown.partials_merged"), 0);
            }
        }
    }
}
