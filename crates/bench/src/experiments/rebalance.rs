//! Ablation (DESIGN.md §14): query availability through an online
//! node-add. The elastic-cluster claim is that membership changes are
//! invisible to readers and writers: while a rebalance copies segment
//! ranges onto a new node, every probe query keeps answering (zero
//! errors, the same count) and every S2V save job lands, with bounded
//! latency inflation over the quiet baseline.
//!
//! The harness arms a seeded rebalance crash with probability 1.0 so
//! each `run_rebalance` call copies exactly one migration and then
//! "dies" — which turns the rebalance into a step-wise background job
//! the probe load can interleave with, exactly the online shape a real
//! rebalancer has. Once every migration is recorded, the next call
//! skips them all and flips the map at an epoch boundary.

use std::sync::Arc;
use std::time::Instant;

use common::{row, DataType, Expr, Row, Schema};
use connector::DefaultSource;
use mppdb::{Cluster, ClusterConfig, FaultPlan, QuerySpec};
use sparklet::{Options, SaveMode, SparkConf, SparkContext};

use crate::report::ReportRow;

/// Rows seeded before the membership change.
pub const SEED_ROWS: usize = 24_000;
/// The probe counts ids below this bound; appended rows live far above
/// it, so the correct answer never moves.
pub const PROBE_IDS: i64 = 1_000;
/// Probe queries in the quiet baseline phase.
pub const BASELINE_PROBES: usize = 160;
/// Probe queries between consecutive rebalance migrations.
pub const PROBES_PER_STEP: usize = 6;
/// An S2V append job lands every this-many migration steps.
pub const SAVE_EVERY: usize = 2;
/// Rows per mid-rebalance append job.
pub const APPEND_ROWS: usize = 400;

/// Everything the ablation measures across the three phases: quiet
/// baseline, during the online rebalance, and after the flip.
pub struct RebalanceCell {
    pub baseline_p50_us: f64,
    pub baseline_p99_us: f64,
    pub during_p50_us: f64,
    pub during_p99_us: f64,
    pub after_p50_us: f64,
    pub after_p99_us: f64,
    /// Probe queries issued across all phases.
    pub probes: u64,
    /// Probes that errored or returned the wrong count. Must be zero.
    pub failed_probes: u64,
    /// S2V save jobs submitted while the rebalance was in flight.
    pub jobs: u64,
    /// Save jobs that failed. Must be zero.
    pub failed_jobs: u64,
    /// Interrupted `run_rebalance` calls (one migration each).
    pub steps: u64,
    pub migrations: u64,
    pub rows_copied: u64,
    pub flips: u64,
}

fn bed() -> (SparkContext, Arc<Cluster>) {
    let db = Cluster::new(ClusterConfig {
        node_count: 4,
        ..ClusterConfig::default()
    });
    let ctx = SparkContext::new(SparkConf {
        nodes: 8,
        cores_per_node: 8,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, Arc::clone(&db));
    (ctx, db)
}

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("val", DataType::Float64)])
}

fn save(ctx: &SparkContext, rows: Vec<Row>, mode: SaveMode) -> Result<(), sparklet::SparkError> {
    let df = ctx
        .create_dataframe(rows, schema(), 4)
        .expect("generated rows match the schema");
    df.write()
        .format(connector::DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("host", 0)
                .with("table", "elastic_fact")
                .with("numPartitions", 4),
        )
        .mode(mode)
        .save()
        .map(|_| ())
}

fn pctl(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64
}

/// One timed probe: a narrow count whose answer is pinned by
/// construction. An error or a wrong count both count as a failure —
/// availability means *correct* answers, not just connections.
fn probe(db: &Arc<Cluster>, node: usize, samples_us: &mut Vec<u64>, failed: &mut u64) {
    let spec = QuerySpec::scan("elastic_fact")
        .filter(Expr::col("id").lt(Expr::lit(PROBE_IDS)))
        .count();
    let t0 = Instant::now();
    match db.connect(node).and_then(|mut s| s.query(&spec)) {
        Ok(result) if result.count == PROBE_IDS as u64 => {
            samples_us.push(t0.elapsed().as_micros() as u64);
        }
        _ => *failed += 1,
    }
}

/// Run the ablation: seed, measure a quiet baseline, add a node and
/// drive its rebalance one migration at a time under probe + save
/// load, then measure again after the flip.
pub fn run() -> RebalanceCell {
    let (ctx, db) = bed();
    let seed: Vec<Row> = (0..SEED_ROWS as i64)
        .map(|id| row![id, id as f64 * 0.5])
        .collect();
    save(&ctx, seed, SaveMode::Overwrite).expect("seeding save");

    let before = obs::global().snapshot();
    let mut failed_probes = 0u64;
    let mut probes = 0u64;

    // Phase A: quiet baseline on the 4-node cluster.
    let mut baseline_us: Vec<u64> = Vec::new();
    for i in 0..BASELINE_PROBES {
        probe(&db, i % 4, &mut baseline_us, &mut failed_probes);
        probes += 1;
    }

    // Phase B: node-add under load. Every `run_rebalance` call copies
    // one migration and crash-returns; probes and append jobs run in
    // the gaps. Dual-writes cover the in-flight target map, so the
    // appends need no special handling.
    db.faults()
        .arm(FaultPlan::seeded(0xE1A5).with_rebalance_crash(1.0));
    let mut during_us: Vec<u64> = Vec::new();
    let mut steps = 0u64;
    let mut jobs = 0u64;
    let mut failed_jobs = 0u64;
    let mut next_append_id = 1_000_000i64;
    let _ = db.add_node();
    while db.rebalance_in_progress() && steps < 256 {
        steps += 1;
        for p in 0..PROBES_PER_STEP {
            probe(
                &db,
                (steps as usize + p) % 4,
                &mut during_us,
                &mut failed_probes,
            );
            probes += 1;
        }
        if (steps as usize).is_multiple_of(SAVE_EVERY) {
            let rows: Vec<Row> = (0..APPEND_ROWS as i64)
                .map(|i| row![next_append_id + i, 0.0f64])
                .collect();
            next_append_id += APPEND_ROWS as i64;
            jobs += 1;
            if save(&ctx, rows, SaveMode::Append).is_err() {
                failed_jobs += 1;
            }
        }
        let _ = db.run_rebalance();
    }
    db.faults().disarm();
    assert!(
        !db.rebalance_in_progress(),
        "rebalance must finish within the step budget"
    );

    // Phase C: the flipped 5-node cluster under the same probe load.
    let mut after_us: Vec<u64> = Vec::new();
    for i in 0..BASELINE_PROBES {
        probe(&db, i % db.node_count(), &mut after_us, &mut failed_probes);
        probes += 1;
    }

    let delta = obs::global().snapshot().counters_since(&before);
    baseline_us.sort_unstable();
    during_us.sort_unstable();
    after_us.sort_unstable();
    RebalanceCell {
        baseline_p50_us: pctl(&baseline_us, 0.50),
        baseline_p99_us: pctl(&baseline_us, 0.99),
        during_p50_us: pctl(&during_us, 0.50),
        during_p99_us: pctl(&during_us, 0.99),
        after_p50_us: pctl(&after_us, 0.50),
        after_p99_us: pctl(&after_us, 0.99),
        probes,
        failed_probes,
        jobs,
        failed_jobs,
        steps,
        migrations: delta.get("rebalance.migrations").copied().unwrap_or(0),
        rows_copied: delta.get("rebalance.rows_copied").copied().unwrap_or(0),
        flips: delta.get("rebalance.flips").copied().unwrap_or(0),
    }
}

/// P99 inflation of the during-rebalance phase over the quiet baseline.
pub fn p99_inflation(cell: &RebalanceCell) -> f64 {
    cell.during_p99_us / cell.baseline_p99_us.max(1.0)
}

pub fn report_rows(cell: &RebalanceCell) -> Vec<ReportRow> {
    vec![
        ReportRow::new("probe P50 — quiet baseline", None, cell.baseline_p50_us).with_unit("us"),
        ReportRow::new("probe P99 — quiet baseline", None, cell.baseline_p99_us).with_unit("us"),
        ReportRow::new("probe P50 — during rebalance", None, cell.during_p50_us).with_unit("us"),
        ReportRow::new("probe P99 — during rebalance", None, cell.during_p99_us).with_unit("us"),
        ReportRow::new("probe P50 — after flip", None, cell.after_p50_us).with_unit("us"),
        ReportRow::new("probe P99 — after flip", None, cell.after_p99_us).with_unit("us"),
        ReportRow::new("P99 inflation (during/baseline)", None, p99_inflation(cell)).with_unit("x"),
        ReportRow::new("probes issued", None, cell.probes as f64).with_unit(""),
        ReportRow::new("probes failed", None, cell.failed_probes as f64).with_unit(""),
        ReportRow::new("save jobs during rebalance", None, cell.jobs as f64).with_unit(""),
        ReportRow::new("save jobs failed", None, cell.failed_jobs as f64).with_unit(""),
        ReportRow::new("migrations copied", None, cell.migrations as f64).with_unit(""),
        ReportRow::new("rows migrated", None, cell.rows_copied as f64).with_unit("rows"),
        ReportRow::new("map flips", None, cell.flips as f64).with_unit(""),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate of the ablation: a node-add under sustained
    /// probe + save load completes with zero failed queries, zero
    /// failed jobs, exactly one map flip, and bounded P99 inflation.
    #[test]
    fn node_add_under_load_keeps_availability() {
        let cell = run();
        assert_eq!(
            cell.failed_probes, 0,
            "every probe must answer correctly through the rebalance"
        );
        assert_eq!(cell.failed_jobs, 0, "every save job must land");
        assert_eq!(cell.flips, 1, "exactly one epoch-boundary map flip");
        assert!(cell.migrations > 0, "the add must actually move data");
        assert!(cell.rows_copied > 0);
        assert!(cell.steps > 1, "the rebalance must be genuinely stepwise");
        let inflation = p99_inflation(&cell);
        assert!(
            cell.during_p99_us <= cell.baseline_p99_us * 12.0 + 5_000.0,
            "P99 inflation through the rebalance must stay bounded: \
             {:.0}us during vs {:.0}us baseline ({inflation:.2}x)",
            cell.during_p99_us,
            cell.baseline_p99_us,
        );
    }
}
