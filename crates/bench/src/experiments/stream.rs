//! Ablation (DESIGN.md §13): steady-state scan latency under continuous
//! micro-batch streaming ingest, tuple mover on vs off.
//!
//! Both cells trickle the same workload through the streaming S2V path
//! with `copy_direct=false`, so every micro-batch lands in the WOS.
//! Commit-path auto-moveout is disabled in both clusters; the only
//! WOS→ROS motion in the "on" cell is the mover pass the stream writer
//! schedules after each flush. The probe is the canonical operational
//! query against a growing table: a narrow-predicate count that zone
//! maps answer from one or two containers — when a mover keeps the WOS
//! drained and the trickle compacted. With the mover off the same probe
//! must decode every WOS row ever ingested.

use std::sync::Arc;
use std::time::Instant;

use common::{row, DataType, Expr, Row, Schema};
use connector::{ConnectorOptions, DefaultSource, StreamWriter};
use mppdb::{Cluster, ClusterConfig, QuerySpec};
use sparklet::{SaveMode, SparkConf, SparkContext};

use crate::report::ReportRow;

/// Micro-batches ingested per cell.
pub const BATCHES: usize = 48;
/// Rows per micro-batch.
pub const BATCH_ROWS: usize = 1_500;
/// Batches ingested before latency sampling starts (steady state).
pub const WARMUP: usize = 8;

/// One cell of the ablation: the same continuous-ingest workload with
/// the tuple mover on or off.
pub struct StreamCell {
    pub mover_on: bool,
    /// Median steady-state probe latency, microseconds.
    pub median_probe_us: f64,
    /// Rows the steady-state probes had to examine, total.
    pub rows_examined: u64,
    /// Containers the probes skipped outright via zone maps.
    pub containers_skipped: u64,
    /// Micro-batches the stream writer committed.
    pub batches: u64,
}

/// A self-hosted bed whose commit path never auto-moves rows: the two
/// cells differ *only* in whether the stream writer runs mover passes.
fn bed() -> (SparkContext, Arc<Cluster>) {
    let db = Cluster::new(ClusterConfig {
        node_count: 4,
        moveout_threshold: usize::MAX,
        ..ClusterConfig::default()
    });
    let ctx = SparkContext::new(SparkConf {
        nodes: 8,
        cores_per_node: 8,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, Arc::clone(&db));
    (ctx, db)
}

fn batch(seq: usize) -> Vec<Row> {
    (0..BATCH_ROWS)
        .map(|i| {
            let id = (seq * BATCH_ROWS + i) as i64;
            row![id, id as f64 * 0.25]
        })
        .collect()
}

/// Run one cell: stream `BATCHES` micro-batches, timing a narrow count
/// probe after every post-warmup batch.
pub fn run_cell(mover_on: bool) -> StreamCell {
    let (ctx, db) = bed();
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("val", DataType::Float64)]);
    let opts = ConnectorOptions::builder("stream_fact")
        .num_partitions(4)
        .copy_direct(false)
        .stream(BATCH_ROWS, 600_000)
        .mover_enabled(mover_on)
        .build()
        .expect("valid stream options");
    let mut writer =
        StreamWriter::open(&ctx, &db, schema, &opts, SaveMode::Overwrite).expect("stream opens");

    // The operational probe: how many of the first batch's ids are
    // live? Old data in a narrow id range — exactly what zone maps
    // answer without touching the rest of the table.
    let probe = QuerySpec::scan("stream_fact")
        .filter(Expr::col("id").lt(Expr::lit(BATCH_ROWS as i64)))
        .count();
    let mut samples_us: Vec<u64> = Vec::new();
    let before = obs::global().snapshot();
    for seq in 0..BATCHES {
        writer.append_rows(batch(seq)).expect("micro-batch commits");
        if seq < WARMUP {
            continue;
        }
        let mut session = db.connect(seq % 4).expect("node up");
        let t0 = Instant::now();
        let result = session.query(&probe).expect("probe scans");
        samples_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(result.count, BATCH_ROWS as u64, "probe answer is stable");
    }
    let delta = obs::global().snapshot().counters_since(&before);
    let report = writer.finish().expect("stream finishes");
    assert_eq!(report.rows_loaded as usize, BATCHES * BATCH_ROWS);

    samples_us.sort_unstable();
    StreamCell {
        mover_on,
        median_probe_us: samples_us[samples_us.len() / 2] as f64,
        rows_examined: delta.get("scan.rows_examined").copied().unwrap_or(0),
        containers_skipped: delta.get("scan.containers_skipped").copied().unwrap_or(0),
        batches: report.batches,
    }
}

/// Run both cells (mover off first, so its counters cannot inherit the
/// other cell's work on a shared collector).
pub fn run() -> (StreamCell, StreamCell) {
    (run_cell(false), run_cell(true))
}

/// Render the report rows: the headline latencies, the work each cell's
/// probes did, and the derived speedup.
pub fn report_rows(off: &StreamCell, on: &StreamCell) -> Vec<ReportRow> {
    vec![
        ReportRow::new(
            "probe latency, median — mover off",
            None,
            off.median_probe_us,
        )
        .with_unit("us"),
        ReportRow::new("probe latency, median — mover on", None, on.median_probe_us)
            .with_unit("us"),
        ReportRow::new(
            "probe rows examined — mover off",
            None,
            off.rows_examined as f64,
        )
        .with_unit("rows"),
        ReportRow::new(
            "probe rows examined — mover on",
            None,
            on.rows_examined as f64,
        )
        .with_unit("rows"),
        ReportRow::new(
            "probe containers skipped — mover on",
            None,
            on.containers_skipped as f64,
        )
        .with_unit(""),
        ReportRow::new(
            "steady-state scan speedup (off/on)",
            None,
            off.median_probe_us / on.median_probe_us.max(1.0),
        )
        .with_unit("x"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate of the ablation: with the identical
    /// continuous-ingest workload, a running tuple mover makes the
    /// steady-state probe strictly faster — because its probes examine
    /// strictly fewer rows (WOS drained, containers zone-map-skipped).
    #[test]
    fn mover_makes_steady_state_scans_strictly_faster() {
        let (off, on) = run();
        assert_eq!(off.batches as usize, BATCHES);
        assert_eq!(on.batches as usize, BATCHES);
        assert!(
            on.rows_examined < off.rows_examined,
            "mover-on probes must examine fewer rows: on {} vs off {}",
            on.rows_examined,
            off.rows_examined
        );
        assert!(
            on.containers_skipped > 0,
            "mover-built containers must be zone-map-skippable"
        );
        assert!(
            on.median_probe_us < off.median_probe_us,
            "mover-on steady-state latency must beat mover-off: on {}us vs off {}us",
            on.median_probe_us,
            off.median_probe_us
        );
    }
}
