//! Table 2 — per-node resource usage during V2S at 4 vs 32 partitions.
//!
//! Paper (first 300 s of the Fig. 6 runs, one database node): with 4
//! partitions CPU settles at ~5% and the outbound network at ~38 MBps
//! (one connection per node, stream-capped); with 32 partitions CPU
//! ~20% and the network saturated at ~120 MBps.

use crate::datasets::{self, specs};
use crate::experiments::{run_v2s_load, seed_table, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

/// Steady-state summary of one run's node-0 trace.
#[derive(Debug, Clone, Copy)]
pub struct NodeUsage {
    pub cpu_percent: f64,
    pub network_mbps: f64,
}

/// Median over the steady portion of the first 300 seconds.
fn steady(series: &[f64]) -> f64 {
    let window: Vec<f64> = series
        .iter()
        .copied()
        .take(300)
        .skip(series.len().min(300) / 5)
        .collect();
    if window.is_empty() {
        return 0.0;
    }
    let mut sorted = window;
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

pub fn run() -> (Vec<ReportRow>, Vec<(usize, NodeUsage)>) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    seed_table(&bed, schema, rows, "table2");
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);

    let mut report = Vec::new();
    let mut usages = Vec::new();
    for (partitions, paper_cpu, paper_net) in [(4usize, 5.0, 38.0), (32, 20.0, 120.0)] {
        let events = run_v2s_load(&bed, "table2", partitions);
        let out = simulate(&events, &SimParams::new(4, 8, spec.scale()));
        let node0_net = out
            .result
            .trace
            .throughput_series(out.topology.db_ext_out[0]);
        let node0_cpu: Vec<f64> = (0..out.result.trace.bin_count(out.topology.db_cpu[0]))
            .map(|b| out.result.trace.utilization(out.topology.db_cpu[0], b) * 100.0)
            .collect();
        let usage = NodeUsage {
            cpu_percent: steady(&node0_cpu),
            network_mbps: steady(&node0_net) / 1e6,
        };
        report.push(
            ReportRow::new(
                format!("{partitions:>2} partitions: node CPU"),
                Some(paper_cpu),
                usage.cpu_percent,
            )
            .with_unit("%"),
        );
        report.push(
            ReportRow::new(
                format!("{partitions:>2} partitions: node net out"),
                Some(paper_net),
                usage.network_mbps,
            )
            .with_unit("MBps"),
        );
        usages.push((partitions, usage));
    }
    (report, usages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_matches_table_2() {
        let (_, usages) = run();
        let (_, low) = usages[0];
        let (_, high) = usages[1];
        // 4 partitions: one ~38-40 MBps stream, light CPU.
        assert!(
            (30.0..50.0).contains(&low.network_mbps),
            "net@4 {}",
            low.network_mbps
        );
        assert!(
            (2.0..10.0).contains(&low.cpu_percent),
            "cpu@4 {}",
            low.cpu_percent
        );
        // 32 partitions: the NIC saturates, CPU climbs toward ~20%.
        assert!(
            (105.0..126.0).contains(&high.network_mbps),
            "net@32 {}",
            high.network_mbps
        );
        assert!(
            (12.0..30.0).contains(&high.cpu_percent),
            "cpu@32 {}",
            high.cpu_percent
        );
    }
}
