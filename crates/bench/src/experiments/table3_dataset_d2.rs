//! Table 3 — performance on dataset D2 (1.46B tweet rows).
//!
//! Paper: V2S 378 s (faster than its D1 490 s: small textual rows ship
//! densely), S2V 386 s (slower than its D1 252 s: 14.6× more rows pay
//! the per-row Avro costs).

use crate::datasets::{self, specs};
use crate::experiments::{run_s2v_save, run_v2s_load};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

pub const LAB_D2_ROWS: usize = 40_000;

pub fn run() -> (Vec<ReportRow>, (f64, f64)) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d2(LAB_D2_ROWS, 42);
    let spec = specs::d2_full(LAB_D2_ROWS as u64);

    let s2v_events = run_s2v_save(&bed, schema.clone(), rows.clone(), "table3", 128);
    let s2v = simulate(&s2v_events, &SimParams::new(4, 8, spec.scale())).seconds;

    let v2s_events = run_v2s_load(&bed, "table3", 32);
    let v2s = simulate(&v2s_events, &SimParams::new(4, 8, spec.scale())).seconds;

    let report = vec![
        ReportRow::new("V2S dataset D2", Some(378.0), v2s),
        ReportRow::new("S2V dataset D2", Some(386.0), s2v),
    ];
    (report, (v2s, s2v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig6_parallelism;

    #[test]
    fn d2_flips_the_direction_ranking() {
        let (_, (v2s_d2, s2v_d2)) = run();
        // Near the paper's absolute numbers (generous bound).
        assert!((v2s_d2 / 378.0 - 1.0).abs() < 0.4, "V2S D2 {v2s_d2}");
        assert!((s2v_d2 / 386.0 - 1.0).abs() < 0.4, "S2V D2 {s2v_d2}");

        // The flip (paper Sec. 4.6): V2S is *faster* on D2 than on D1,
        // while S2V is *slower* on D2 than on D1.
        let (_, d1) = fig6_parallelism::run(&[32, 128]);
        let v2s_d1 = d1[0].1;
        let s2v_d1 = d1[1].2;
        assert!(v2s_d2 < v2s_d1, "V2S: D2 {v2s_d2} vs D1 {v2s_d1}");
        assert!(s2v_d2 > s2v_d1, "S2V: D2 {s2v_d2} vs D1 {s2v_d1}");
    }
}
