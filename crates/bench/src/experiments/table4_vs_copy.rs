//! Table 4 — S2V vs the database's native bulk-load COPY.
//!
//! Paper: the CSV file is split into parts distributed across the
//! database nodes' local disks and COPYed in parallel; the best time
//! (238 s at 8 parts, two per node) edges out S2V's best (252 s at 128
//! partitions) by ~6%.

use common::csv;
use mppdb::{CopyOptions, CopySource};
use netsim::record::{Event, NodeRef};

use crate::datasets::{self, specs};
use crate::experiments::{run_s2v_save, LAB_D1_ROWS};
use crate::fabric::TestBed;
use crate::model::{simulate, SimParams};
use crate::report::ReportRow;

/// Run a parallel COPY of the D1 CSV split into `parts` file parts
/// distributed round-robin over the nodes; returns the recorded events.
fn run_parallel_copy(bed: &TestBed, csv_text: &str, parts: usize, table: &str) -> Vec<Event> {
    {
        let mut s = bed.db.connect(0).unwrap();
        s.execute(&format!("DROP TABLE IF EXISTS {table}")).unwrap();
        let cols: Vec<String> = (0..100).map(|i| format!("c{i} FLOAT")).collect();
        s.execute(&format!("CREATE TABLE {table} ({})", cols.join(", ")))
            .unwrap();
    }
    bed.clear_recorders();
    let lines: Vec<&str> = csv_text.lines().collect();
    let per_part = lines.len().div_ceil(parts);
    for (part, chunk) in lines.chunks(per_part).enumerate() {
        let node = part % bed.db_nodes;
        let text = chunk.join("\n");
        let mut session = bed.db.connect(node).unwrap();
        session.set_task_tag(Some(part as u64));
        // The part is read from the node's local data disk.
        bed.db.recorder().work(
            Some(part as u64),
            NodeRef::Db(node),
            "local_disk_read",
            chunk.len() as u64,
            text.len() as u64,
        );
        session
            .copy(
                table,
                CopySource::Csv {
                    text,
                    delimiter: ',',
                },
                CopyOptions::default(),
            )
            .expect("COPY part");
    }
    bed.db.recorder().drain()
}

pub const PART_SWEEP: &[usize] = &[4, 8, 16, 32];

/// Returns `(report, s2v_best, copy per part-count)`.
pub fn run(sweep: &[usize]) -> (Vec<ReportRow>, f64, Vec<(usize, f64)>) {
    let bed = TestBed::new(4, 8);
    let (schema, rows) = datasets::d1(LAB_D1_ROWS, 100, 42);
    let spec = specs::d1_100m(LAB_D1_ROWS as u64);
    let params = SimParams::new(4, 8, spec.scale());

    // S2V's best configuration (Fig. 6: 128 partitions).
    let s2v_events = run_s2v_save(&bed, schema.clone(), rows.clone(), "table4_s2v", 128);
    let s2v = simulate(&s2v_events, &params).seconds;

    let csv_text = csv::encode_rows(&rows, ',');
    let mut report = vec![ReportRow::new("S2V (128 partitions)", Some(252.0), s2v)];
    let mut sweep_out = Vec::new();
    for &parts in sweep {
        let events = run_parallel_copy(&bed, &csv_text, parts, "table4_copy");
        let secs = simulate(&events, &params).seconds;
        let paper = if parts == 8 { Some(238.0) } else { None };
        report.push(ReportRow::new(
            format!("COPY {parts:>2} parts"),
            paper,
            secs,
        ));
        sweep_out.push((parts, secs));
    }
    (report, s2v, sweep_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_best_edges_out_s2v() {
        let (_, s2v, sweep) = run(&[4, 8, 16]);
        let best_copy = sweep.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
        // COPY's best beats S2V, but only modestly (the paper's ~6%;
        // we accept up to 30%).
        assert!(best_copy < s2v, "COPY {best_copy} vs S2V {s2v}");
        assert!(best_copy > s2v * 0.7, "COPY {best_copy} vs S2V {s2v}");
        // 4 parts underuse the cluster.
        let four = sweep.iter().find(|(p, _)| *p == 4).unwrap().1;
        assert!(four > best_copy * 1.3, "COPY@4 {four} vs best {best_copy}");
    }
}
