//! A fully wired test bed: database cluster + compute engine (+ DFS),
//! with the connector and baselines registered.

use std::sync::Arc;

use common::{Row, Schema};
use connector::DefaultSource;
use dfslite::{DfsClusterSim, DfsConfig};
use mppdb::{Cluster, ClusterConfig};
use sparklet::{DataFrame, SparkConf, SparkContext};

/// One experiment's worth of infrastructure. The paper's primary
/// configuration is the "4:8 cluster": 4 database nodes, 8 engine nodes
/// (Sec. 4.1).
pub struct TestBed {
    pub db: Arc<Cluster>,
    pub ctx: SparkContext,
    pub dfs: Option<Arc<DfsClusterSim>>,
    pub db_nodes: usize,
    pub compute_nodes: usize,
}

impl TestBed {
    /// Build a `db_nodes:compute_nodes` bed with the connector and the
    /// JDBC baseline registered.
    pub fn new(db_nodes: usize, compute_nodes: usize) -> TestBed {
        let db = Cluster::new(ClusterConfig {
            node_count: db_nodes,
            ..ClusterConfig::default()
        });
        let ctx = SparkContext::new(SparkConf {
            nodes: compute_nodes,
            cores_per_node: 24,
            max_task_attempts: 4,
            thread_cap: 8,
            ..SparkConf::default()
        });
        DefaultSource::register(&ctx, Arc::clone(&db));
        baselines::JdbcDefaultSource::register(&ctx, Arc::clone(&db));
        TestBed {
            db,
            ctx,
            dfs: None,
            db_nodes,
            compute_nodes,
        }
    }

    /// Add the separate `dfs_nodes`-node DFS cluster of Fig. 12 (block
    /// size is shrunk in proportion to lab-scale data so multi-block
    /// files still occur).
    pub fn with_dfs(mut self, dfs_nodes: usize, block_size: usize) -> TestBed {
        let dfs = DfsClusterSim::new(DfsConfig {
            nodes: dfs_nodes,
            block_size,
            replication: 3,
        });
        baselines::DfsSource::register(&self.ctx, Arc::clone(&dfs));
        self.dfs = Some(dfs);
        self
    }

    /// DataFrame from generated rows.
    pub fn dataframe(&self, schema: Schema, rows: Vec<Row>, partitions: usize) -> DataFrame {
        self.ctx
            .create_dataframe(rows, schema, partitions)
            .expect("generated rows always match their schema")
    }

    /// Drop recorded events from both recorders (the db recorder carries
    /// the connector's log; the DFS has its own).
    pub fn clear_recorders(&self) {
        self.db.recorder().clear();
        self.ctx.recorder().clear();
        if let Some(dfs) = &self.dfs {
            dfs.recorder().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn bed_wires_connector_and_baselines() {
        let bed = TestBed::new(4, 8).with_dfs(4, 1 << 20);
        assert!(bed.ctx.format_provider(connector::DEFAULT_SOURCE).is_ok());
        assert!(bed.ctx.format_provider(baselines::JDBC_FORMAT).is_ok());
        assert!(bed.ctx.format_provider(baselines::DFS_FORMAT).is_ok());
        let (schema, rows) = datasets::d1(100, 10, 1);
        let df = bed.dataframe(schema, rows, 4);
        assert_eq!(df.count().unwrap(), 100);
    }
}
