//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (Sec. 4).
//!
//! # Two-layer measurement
//!
//! The paper's numbers are wall-clock times of terabyte-scale transfers
//! on a 24-machine cluster. This harness reproduces their *shape* with
//! a two-layer design (see DESIGN.md §1):
//!
//! 1. **Functional layer** — the real pipeline (real rows through the
//!    real connector/database/engine code) runs at a reduced scale;
//!    every transfer and unit of work is recorded with its byte/row
//!    volumes.
//! 2. **Timing layer** — the recorded events, linearly scaled to the
//!    paper's dataset sizes, are replayed through the `netsim`
//!    discrete-event simulator against a topology calibrated to the
//!    paper's hardware (1 GbE NICs, per-connection stream caps, CPU
//!    cost coefficients — see [`calibrate`]).
//!
//! Every experiment prints a paper-vs-simulated table; EXPERIMENTS.md
//! records the comparison.

pub mod calibrate;
pub mod datasets;
pub mod experiments;
pub mod fabric;
pub mod model;
pub mod report;

pub use calibrate::Calibration;
pub use fabric::TestBed;
pub use model::{simulate, SimOutcome, SimParams};
