//! Event-log → simulator-workload reconstruction.
//!
//! The functional run leaves a [`netsim::record`] log: per-task
//! ordered sequences of setup steps, labeled CPU work, and transfers.
//! This module scales the volumes to paper size, maps endpoints onto a
//! calibrated cluster topology, and runs the discrete-event simulation.

use std::collections::BTreeMap;

use netsim::record::{Event, EventKind, NetClass, NodeRef};
use netsim::{FlowSpec, Phase, ResourceId, SimEngine, SimResult, SimTask, Topology, Workload};

use crate::calibrate::Calibration;

/// Simulation inputs.
#[derive(Debug, Clone)]
pub struct SimParams {
    pub db_nodes: usize,
    pub compute_nodes: usize,
    pub dfs_nodes: usize,
    /// Linear volume scale from the functional run to paper size
    /// (e.g. paper rows / lab rows).
    pub scale: f64,
    pub calib: Calibration,
}

impl SimParams {
    pub fn new(db_nodes: usize, compute_nodes: usize, scale: f64) -> SimParams {
        SimParams {
            db_nodes,
            compute_nodes,
            dfs_nodes: 0,
            scale,
            calib: Calibration::default(),
        }
    }

    pub fn with_dfs(mut self, dfs_nodes: usize) -> SimParams {
        self.dfs_nodes = dfs_nodes;
        self
    }
}

/// The calibrated topology with resource handles for reporting.
pub struct FabricTopology {
    pub topo: Topology,
    pub db_ext_out: Vec<ResourceId>,
    pub db_ext_in: Vec<ResourceId>,
    pub db_int_out: Vec<ResourceId>,
    pub db_int_in: Vec<ResourceId>,
    pub db_cpu: Vec<ResourceId>,
    pub comp_out: Vec<ResourceId>,
    pub comp_in: Vec<ResourceId>,
    pub comp_cpu: Vec<ResourceId>,
    pub dfs_out: Vec<ResourceId>,
    pub dfs_in: Vec<ResourceId>,
    pub dfs_int_out: Vec<ResourceId>,
    pub dfs_int_in: Vec<ResourceId>,
    pub dfs_cpu: Vec<ResourceId>,
    pub dfs_disk_read: Vec<ResourceId>,
    pub dfs_disk_write: Vec<ResourceId>,
    pub client_out: ResourceId,
    pub client_in: ResourceId,
    pub client_cpu: ResourceId,
    /// The engine's global commit/epoch serialization point.
    pub db_commit: ResourceId,
    /// Database nodes' local data disks (COPY file reads).
    pub db_disk: Vec<ResourceId>,
}

impl FabricTopology {
    pub fn build(params: &SimParams) -> FabricTopology {
        let c = &params.calib;
        let mut topo = Topology::new();
        let mut db_ext_out = Vec::new();
        let mut db_ext_in = Vec::new();
        let mut db_int_out = Vec::new();
        let mut db_int_in = Vec::new();
        let mut db_cpu = Vec::new();
        for i in 0..params.db_nodes {
            db_ext_out.push(topo.add_resource(format!("db{i}.ext.out"), c.link_bw));
            db_ext_in.push(topo.add_resource(format!("db{i}.ext.in"), c.link_bw));
            db_int_out.push(topo.add_resource(format!("db{i}.int.out"), c.link_bw));
            db_int_in.push(topo.add_resource(format!("db{i}.int.in"), c.link_bw));
            db_cpu.push(topo.add_resource(format!("db{i}.cpu"), c.db_cores));
        }
        let mut db_disk = Vec::new();
        for i in 0..params.db_nodes {
            db_disk.push(topo.add_resource(format!("db{i}.disk"), c.db_disk_bw));
        }
        let mut comp_out = Vec::new();
        let mut comp_in = Vec::new();
        let mut comp_cpu = Vec::new();
        for i in 0..params.compute_nodes {
            comp_out.push(topo.add_resource(format!("comp{i}.out"), c.link_bw));
            comp_in.push(topo.add_resource(format!("comp{i}.in"), c.link_bw));
            comp_cpu.push(topo.add_resource(format!("comp{i}.cpu"), c.compute_cores));
        }
        let mut dfs_out = Vec::new();
        let mut dfs_in = Vec::new();
        let mut dfs_int_out = Vec::new();
        let mut dfs_int_in = Vec::new();
        let mut dfs_cpu = Vec::new();
        let mut dfs_disk_read = Vec::new();
        let mut dfs_disk_write = Vec::new();
        for i in 0..params.dfs_nodes {
            dfs_out.push(topo.add_resource(format!("dfs{i}.out"), c.link_bw));
            dfs_in.push(topo.add_resource(format!("dfs{i}.in"), c.link_bw));
            dfs_int_out.push(topo.add_resource(format!("dfs{i}.int.out"), c.dfs_int_bw));
            dfs_int_in.push(topo.add_resource(format!("dfs{i}.int.in"), c.dfs_int_bw));
            dfs_cpu.push(topo.add_resource(format!("dfs{i}.cpu"), c.aux_cores));
            dfs_disk_read.push(topo.add_resource(format!("dfs{i}.disk.rd"), c.dfs_disk_read));
            dfs_disk_write.push(topo.add_resource(format!("dfs{i}.disk.wr"), c.dfs_disk_write));
        }
        let client_out = topo.add_resource("client.out", c.link_bw);
        let client_in = topo.add_resource("client.in", c.link_bw);
        let client_cpu = topo.add_resource("client.cpu", c.aux_cores);
        let db_commit = topo.add_untraced_resource("db.commit", 1.0); // fabriclint: allow(obs-registry): latency-model resource name, never recorded
        FabricTopology {
            topo,
            db_ext_out,
            db_ext_in,
            db_int_out,
            db_int_in,
            db_cpu,
            comp_out,
            comp_in,
            comp_cpu,
            dfs_out,
            dfs_in,
            dfs_int_out,
            dfs_int_in,
            dfs_cpu,
            dfs_disk_read,
            dfs_disk_write,
            client_out,
            client_in,
            client_cpu,
            db_commit,
            db_disk,
        }
    }

    fn egress(&self, node: NodeRef, class: NetClass) -> ResourceId {
        match (node, class) {
            (NodeRef::Db(i), NetClass::DbInternal) => self.db_int_out[i],
            (NodeRef::Db(i), NetClass::External) => self.db_ext_out[i],
            (NodeRef::Compute(i), _) => self.comp_out[i],
            (NodeRef::Dfs(i), NetClass::DbInternal) => self.dfs_int_out[i],
            (NodeRef::Dfs(i), NetClass::External) => self.dfs_out[i],
            (NodeRef::Client, _) => self.client_out,
        }
    }

    fn ingress(&self, node: NodeRef, class: NetClass) -> ResourceId {
        match (node, class) {
            (NodeRef::Db(i), NetClass::DbInternal) => self.db_int_in[i],
            (NodeRef::Db(i), NetClass::External) => self.db_ext_in[i],
            (NodeRef::Compute(i), _) => self.comp_in[i],
            (NodeRef::Dfs(i), NetClass::DbInternal) => self.dfs_int_in[i],
            (NodeRef::Dfs(i), NetClass::External) => self.dfs_in[i],
            (NodeRef::Client, _) => self.client_in,
        }
    }

    fn cpu(&self, node: NodeRef) -> ResourceId {
        match node {
            NodeRef::Db(i) => self.db_cpu[i],
            NodeRef::Compute(i) => self.comp_cpu[i],
            NodeRef::Dfs(i) => self.dfs_cpu[i],
            NodeRef::Client => self.client_cpu,
        }
    }
}

/// Simulation output.
pub struct SimOutcome {
    /// Simulated elapsed seconds for the whole operation.
    pub seconds: f64,
    pub result: SimResult,
    pub topology: FabricTopology,
}

/// Convert the recorded event log into a simulator workload and run it.
pub fn simulate(events: &[Event], params: &SimParams) -> SimOutcome {
    let fabric = FabricTopology::build(params);
    let calib = &params.calib;
    let scale = params.scale;

    // Partition events: driver (None-task) events before the first task
    // event, per-task sequences, driver events after.
    let mut pre: Vec<&Event> = Vec::new();
    let mut post: Vec<&Event> = Vec::new();
    let mut tasks: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    let mut seen_task = false;
    for e in events {
        match e.task {
            Some(t) => {
                seen_task = true;
                tasks.entry(t).or_default().push(e);
            }
            None if !seen_task => pre.push(e),
            None => post.push(e),
        }
    }

    let mut workload = Workload::new();
    let driver_pool = workload.add_pool("driver", 1);
    let comp_pools: Vec<_> = (0..params.compute_nodes)
        .map(|i| workload.add_pool(format!("executor{i}"), calib.compute_cores as usize))
        .collect();

    // Internal (intra-cluster) transfers are pipelined with the client
    // stream that produced them: they become parallel side tasks rather
    // than sequential phases of the producing task.
    let mut side_flows: Vec<FlowSpec> = Vec::new();

    let build_transfer = |src: &NodeRef, dst: &NodeRef, class: &NetClass, bytes: u64| {
        let volume = bytes as f64 * scale;
        if volume <= 0.0 {
            return None;
        }
        let send_cpu = if matches!(src, NodeRef::Db(_)) {
            calib.db_send_cpu_per_byte
        } else {
            calib.net_send_cpu_per_byte
        };
        let mut flow = FlowSpec::new(volume)
            .on(fabric.egress(*src, *class), 1.0)
            .on(fabric.ingress(*dst, *class), 1.0)
            .on(fabric.cpu(*src), send_cpu)
            .on(fabric.cpu(*dst), calib.net_recv_cpu_per_byte);
        // Stream caps: client connections to the database are single
        // TCP streams; internal shuffle streams are capped a little
        // higher; DFS ingest/readout is disk-gated instead.
        let db_endpoint = matches!(src, NodeRef::Db(_)) || matches!(dst, NodeRef::Db(_));
        match class {
            NetClass::External if db_endpoint => {
                flow = flow.capped(calib.db_stream_cap);
            }
            NetClass::DbInternal if db_endpoint => {
                flow = flow.capped(calib.internal_stream_cap);
            }
            _ => {}
        }
        if let NodeRef::Dfs(i) = src {
            // Block reads hit the spindle; replication hops stream the
            // just-written block from the page cache.
            if matches!(class, NetClass::External) {
                flow = flow.on(fabric.dfs_disk_read[*i], 1.0);
            }
        }
        if let NodeRef::Dfs(i) = dst {
            flow = flow.on(fabric.dfs_disk_write[*i], 1.0);
        }
        Some(flow)
    };

    let mut phases_for = |evs: &[&Event]| -> Vec<Phase> {
        let mut phases = Vec::new();
        for e in evs {
            match &e.kind {
                EventKind::Setup { label, .. } => {
                    phases.push(Phase::Delay(calib.setup_delay(label)));
                }
                EventKind::Work {
                    node,
                    label,
                    rows,
                    bytes,
                } => {
                    if *label == "local_disk_read" {
                        // COPY reading its local file part: a flow on
                        // the node's data disk, pipelined with the
                        // parse that consumes it.
                        if let NodeRef::Db(i) = node {
                            side_flows.push(
                                FlowSpec::new(*bytes as f64 * scale).on(fabric.db_disk[*i], 1.0),
                            );
                        }
                        continue;
                    }
                    if *label == "db_commit" {
                        // Commits serialize on the global commit path
                        // (a fixed cost each, NOT scaled by volume).
                        phases.push(Phase::Flow(
                            FlowSpec::new(calib.commit_seconds * *rows as f64)
                                .on(fabric.db_commit, 1.0)
                                .capped(1.0),
                        ));
                        continue;
                    }
                    let secs = calib
                        .work_rate(label)
                        .seconds(*rows as f64 * scale, *bytes as f64 * scale);
                    if secs > 0.0 {
                        // One core of the node, for `secs` core-seconds.
                        phases.push(Phase::Flow(
                            FlowSpec::new(secs).on(fabric.cpu(*node), 1.0).capped(1.0),
                        ));
                    }
                }
                EventKind::Transfer {
                    src,
                    dst,
                    class,
                    bytes,
                    ..
                } => {
                    let Some(flow) = build_transfer(src, dst, class, *bytes) else {
                        continue;
                    };
                    if matches!(class, NetClass::DbInternal) {
                        side_flows.push(flow);
                    } else {
                        phases.push(Phase::Flow(flow));
                    }
                }
            }
        }
        phases
    };

    // Driver setup task.
    let mut pre_task = SimTask::new(driver_pool, "driver-setup");
    pre_task.phases = phases_for(&pre);
    let pre_id = workload.add_task(pre_task);

    // Per-partition tasks on their executor pools.
    let mut task_ids = vec![pre_id];
    for (task, evs) in &tasks {
        let pool = comp_pools[*task as usize % params.compute_nodes.max(1)];
        let mut sim_task = SimTask::new(pool, format!("task{task}")).after(pre_id);
        sim_task.phases = phases_for(evs);
        task_ids.push(workload.add_task(sim_task));
    }

    // Driver teardown after everything.
    let mut post_task =
        SimTask::new(driver_pool, "driver-teardown").after_all(task_ids.iter().copied());
    post_task.phases = phases_for(&post);
    let post_id = workload.add_task(post_task);
    let _ = post_id;

    // Pipelined internal transfers: parallel side tasks on a pool wide
    // enough never to queue.
    if !side_flows.is_empty() {
        let side_pool = workload.add_pool("internal-shuffle", side_flows.len());
        for (i, flow) in side_flows.into_iter().enumerate() {
            workload.add_task(
                SimTask::new(side_pool, format!("shuffle{i}"))
                    .after(pre_id)
                    .flow(flow),
            );
        }
    }

    let engine = SimEngine::new(fabric.topo.clone()).with_sample_dt(1.0);
    let result = engine.run(&workload);
    SimOutcome {
        seconds: result.makespan,
        result,
        topology: fabric,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::record::Recorder;

    fn params() -> SimParams {
        SimParams::new(4, 8, 1.0)
    }

    #[test]
    fn empty_log_is_instant() {
        let out = simulate(&[], &params());
        assert_eq!(out.seconds, 0.0);
    }

    #[test]
    fn single_capped_transfer_timing() {
        let rec = Recorder::new();
        rec.transfer(
            Some(0),
            NodeRef::Db(0),
            NodeRef::Compute(0),
            NetClass::External,
            400_000_000,
            1000,
        );
        let out = simulate(&rec.drain(), &params());
        // 400 MB capped at the 40 MB/s stream: 10 s.
        assert!((out.seconds - 10.0).abs() < 0.2, "{}", out.seconds);
    }

    #[test]
    fn parallel_streams_saturate_the_nic() {
        let rec = Recorder::new();
        // Eight streams out of one db node: aggregate demand 320 MB/s,
        // NIC 125 MB/s → 8×100MB = 800MB at 125 MB/s ≈ 6.4 s.
        for t in 0..8 {
            rec.transfer(
                Some(t),
                NodeRef::Db(0),
                NodeRef::Compute(t as usize % 8),
                NetClass::External,
                100_000_000,
                100,
            );
        }
        let out = simulate(&rec.drain(), &params());
        assert!((out.seconds - 6.4).abs() < 0.5, "{}", out.seconds);
    }

    #[test]
    fn scale_multiplies_volumes() {
        let rec = Recorder::new();
        rec.transfer(
            Some(0),
            NodeRef::Db(0),
            NodeRef::Compute(0),
            NetClass::External,
            4_000_000,
            10,
        );
        let events = rec.drain();
        let small = simulate(&events, &params());
        let big = simulate(&events, &SimParams::new(4, 8, 100.0));
        assert!(big.seconds > small.seconds * 50.0);
    }

    #[test]
    fn work_runs_on_one_core() {
        let rec = Recorder::new();
        // A work item costing N core-seconds is capped at 1 core, so it
        // takes N wall seconds even on a 16-core node.
        let rate = Calibration::default().work_rate("scan_hash");
        let bytes = (10.0 / rate.sec_per_byte) as u64;
        rec.work(Some(0), NodeRef::Db(1), "scan_hash", 0, bytes);
        let out = simulate(&rec.drain(), &params());
        assert!((out.seconds - 10.0).abs() < 0.2, "{}", out.seconds);
    }

    #[test]
    fn driver_events_frame_the_job() {
        let rec = Recorder::new();
        rec.setup(None, NodeRef::Db(0), "s2v_setup_tables"); // 2.0 s
        rec.work(Some(0), NodeRef::Compute(0), "avro_encode", 1_000_000, 0); // 2.0 s
        rec.setup(None, NodeRef::Db(0), "s2v_teardown_tables"); // 1.5 s
        let out = simulate(&rec.drain(), &params());
        assert!((out.seconds - 5.5).abs() < 0.1, "{}", out.seconds);
    }

    #[test]
    fn executor_slots_create_waves() {
        let rec = Recorder::new();
        // 48 one-second tasks all on compute node 0 (task % 8 == 0):
        // 24 slots → 2 waves.
        for t in 0..48u64 {
            rec.work(Some(t * 8), NodeRef::Compute(0), "udf_eval", 1_000_000, 0);
        }
        let out = simulate(&rec.drain(), &params());
        assert!((out.seconds - 2.0).abs() < 0.3, "{}", out.seconds);
    }
}
