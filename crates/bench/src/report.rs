//! Report printing: paper-vs-simulated tables.

/// One row of an experiment report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    pub label: String,
    /// The paper's reported value, when it printed one.
    pub paper: Option<f64>,
    /// Our simulated value.
    pub simulated: f64,
    pub unit: &'static str,
}

impl ReportRow {
    pub fn new(label: impl Into<String>, paper: Option<f64>, simulated: f64) -> ReportRow {
        ReportRow {
            label: label.into(),
            paper,
            simulated,
            unit: "s",
        }
    }

    pub fn with_unit(mut self, unit: &'static str) -> ReportRow {
        self.unit = unit;
        self
    }
}

/// Render a titled experiment table.
pub fn render(title: &str, rows: &[ReportRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max("condition".len());
    out.push_str(&format!(
        "{:<label_w$}  {:>12}  {:>12}  {:>8}\n",
        "condition", "paper", "simulated", "ratio"
    ));
    out.push_str(&format!(
        "{:-<label_w$}  {:->12}  {:->12}  {:->8}\n",
        "", "", "", ""
    ));
    for r in rows {
        let paper = match r.paper {
            Some(p) => format!("{p:.0} {}", r.unit),
            None => "-".to_string(),
        };
        let ratio = match r.paper {
            Some(p) if p > 0.0 => format!("{:.2}x", r.simulated / p),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<label_w$}  {:>12}  {:>12}  {:>8}\n",
            r.label,
            paper,
            format!("{:.0} {}", r.simulated, r.unit),
            ratio
        ));
    }
    out
}

/// Render and print.
pub fn print(title: &str, rows: &[ReportRow]) {
    println!("{}", render(title, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_ratio_and_dashes() {
        let rows = vec![
            ReportRow::new("V2S 32 partitions", Some(497.0), 480.0),
            ReportRow::new("V2S 4 partitions", None, 1400.0),
        ];
        let text = render("Fig 6", &rows);
        assert!(text.contains("Fig 6"));
        assert!(text.contains("497 s"));
        assert!(text.contains("0.97x"));
        assert!(text.contains("V2S 4 partitions"));
        assert!(text.contains("   -"));
    }
}
