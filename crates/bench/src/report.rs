//! Report printing: paper-vs-simulated tables, plus machine-readable
//! `BENCH_<name>.json` reports carrying the data-collector counters
//! each experiment moved (rows, bytes, retries, ...).

use std::collections::BTreeMap;
use std::path::PathBuf;

/// One row of an experiment report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    pub label: String,
    /// The paper's reported value, when it printed one.
    pub paper: Option<f64>,
    /// Our simulated value.
    pub simulated: f64,
    pub unit: &'static str,
}

impl ReportRow {
    pub fn new(label: impl Into<String>, paper: Option<f64>, simulated: f64) -> ReportRow {
        ReportRow {
            label: label.into(),
            paper,
            simulated,
            unit: "s",
        }
    }

    pub fn with_unit(mut self, unit: &'static str) -> ReportRow {
        self.unit = unit;
        self
    }
}

/// Render a titled experiment table.
pub fn render(title: &str, rows: &[ReportRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max("condition".len());
    out.push_str(&format!(
        "{:<label_w$}  {:>12}  {:>12}  {:>8}\n",
        "condition", "paper", "simulated", "ratio"
    ));
    out.push_str(&format!(
        "{:-<label_w$}  {:->12}  {:->12}  {:->8}\n",
        "", "", "", ""
    ));
    for r in rows {
        let paper = match r.paper {
            Some(p) => format!("{p:.0} {}", r.unit),
            None => "-".to_string(),
        };
        let ratio = match r.paper {
            Some(p) if p > 0.0 => format!("{:.2}x", r.simulated / p),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<label_w$}  {:>12}  {:>12}  {:>8}\n",
            r.label,
            paper,
            format!("{:.0} {}", r.simulated, r.unit),
            ratio
        ));
    }
    out
}

/// Render and print.
pub fn print(title: &str, rows: &[ReportRow]) {
    println!("{}", render(title, rows));
}

/// Mark the start of an experiment: snapshot the data collector so
/// [`publish`] can report only the counters this experiment moved.
pub fn begin() -> obs::Snapshot {
    obs::global().snapshot()
}

/// Print the table and write `BENCH_<name>.json` beside it: the same
/// rows plus the collector-counter deltas since [`begin`] and the
/// per-histogram quantiles (span durations, phase timings, piece
/// sizes) the experiment contributed.
pub fn publish(name: &str, title: &str, rows: &[ReportRow], before: &obs::Snapshot) {
    print(title, rows);
    let after = obs::global().snapshot();
    let counters = after.counters_since(before);
    let histos = histos_since(&after, before);
    match write_json(name, title, rows, &counters, &histos) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => eprintln!("report: failed to write BENCH_{name}.json: {e}"),
    }
}

/// Per-histogram stats for what moved between two snapshots: bucket-
/// wise deltas, so a long-running process's earlier work does not
/// pollute an experiment's quantiles.
pub fn histos_since(
    after: &obs::Snapshot,
    before: &obs::Snapshot,
) -> BTreeMap<String, obs::HistoStats> {
    after
        .histos
        .iter()
        .filter_map(|(name, h)| {
            let delta = match before.histos.get(name) {
                Some(b) => h.since(b),
                None => h.clone(),
            };
            (!delta.is_empty()).then(|| (name.clone(), delta.stats()))
        })
        .collect()
}

/// Where the JSON reports land: `$BENCH_OUT_DIR` or the current dir.
fn out_dir() -> PathBuf {
    std::env::var_os("BENCH_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize one experiment to JSON (hand-rolled; the workspace has no
/// serde and the shape is fixed).
pub fn to_json(
    name: &str,
    title: &str,
    rows: &[ReportRow],
    counters: &BTreeMap<String, u64>,
    histos: &BTreeMap<String, obs::HistoStats>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"experiment\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"title\": \"{}\",\n", json_escape(title)));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let paper = r
            .paper
            .map(|p| format!("{p}"))
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"paper\": {paper}, \"simulated\": {}, \"unit\": \"{}\"}}{}\n",
            json_escape(&r.label),
            r.simulated,
            json_escape(r.unit),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"counters\": {\n");
    for (i, (k, v)) in counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {v}{}\n",
            json_escape(k),
            if i + 1 < counters.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"histograms\": {\n");
    for (i, (k, s)) in histos.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}}}{}\n",
            json_escape(k),
            s.count,
            s.sum,
            s.min,
            s.max,
            s.p50,
            s.p95,
            s.p99,
            if i + 1 < histos.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn write_json(
    name: &str,
    title: &str,
    rows: &[ReportRow],
    counters: &BTreeMap<String, u64>,
    histos: &BTreeMap<String, obs::HistoStats>,
) -> std::io::Result<PathBuf> {
    let path = out_dir().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, to_json(name, title, rows, counters, histos))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_ratio_and_dashes() {
        let rows = vec![
            ReportRow::new("V2S 32 partitions", Some(497.0), 480.0),
            ReportRow::new("V2S 4 partitions", None, 1400.0),
        ];
        let text = render("Fig 6", &rows);
        assert!(text.contains("Fig 6"));
        assert!(text.contains("497 s"));
        assert!(text.contains("0.97x"));
        assert!(text.contains("V2S 4 partitions"));
        assert!(text.contains("   -"));
    }

    #[test]
    fn json_report_carries_rows_and_counters() {
        let rows = vec![
            ReportRow::new("a \"quoted\" label", Some(10.0), 9.5),
            ReportRow::new("plain", None, 1.0),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("s2v.rows_loaded".to_string(), 8000u64);
        counters.insert("sched.task_retries".to_string(), 3u64);
        let mut phase3 = obs::Histo::new();
        for us in [100, 200, 300, 4000] {
            phase3.record(us);
        }
        let mut histos = BTreeMap::new();
        histos.insert("s2v.phase3".to_string(), phase3.stats());
        let json = to_json("fig6", "Fig. 6", &rows, &counters, &histos);
        assert!(json.contains("\"experiment\": \"fig6\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"paper\": null"));
        assert!(json.contains("\"s2v.rows_loaded\": 8000"));
        assert!(json.contains("\"sched.task_retries\": 3"));
        assert!(json.contains("\"s2v.phase3\": {\"count\": 4"));
        assert!(json.contains("\"p99\": 4000"), "{json}");
    }

    #[test]
    fn histos_since_subtracts_prior_work() {
        let c = obs::Collector::new();
        c.record_histo("v2s.piece_bytes", 10);
        let before = c.snapshot();
        c.record_histo("v2s.piece_bytes", 50);
        c.record_histo("v2s.piece_bytes", 50);
        let after = c.snapshot();
        let histos = histos_since(&after, &before);
        let s = &histos["v2s.piece_bytes"];
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 100);
        assert_eq!(s.p50, 50);
        // A histogram that did not move since `before` is omitted.
        let unmoved = histos_since(&after, &after);
        assert!(unmoved.is_empty());
    }
}
