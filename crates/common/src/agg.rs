//! Shared aggregate vocabulary and semantics.
//!
//! Both engines evaluate the same five SQL aggregates — COUNT, SUM,
//! MIN, MAX, AVG — in two places: node-side in `mppdb` (partial
//! aggregates pushed below the connector wire) and driver-side in
//! `sparklet` (the materialize-then-aggregate fallback, and the merge
//! of per-piece partials). Keeping the accumulator here guarantees the
//! pushed-down and the materialized plans compute byte-identical
//! answers, which the differential tests pin.
//!
//! Semantics follow the SQL layer's `compute_aggregate`: aggregates
//! ignore NULL inputs (except `COUNT(*)`), `SUM` stays `Int64` while
//! every input is an integer and widens to `Float64` otherwise, `AVG`
//! is always `Float64`, and any aggregate over zero non-null inputs is
//! NULL (`COUNT` is 0).

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};

/// The aggregate functions the engines can push down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// How many values this aggregate's partial state occupies on the
    /// wire. AVG ships as (sum, count) so partials merge exactly.
    pub fn partial_width(&self) -> usize {
        match self {
            AggFunc::Avg => 2,
            _ => 1,
        }
    }
}

/// One aggregate call: a function plus its input column. `column` is
/// `None` only for `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCall {
    pub func: AggFunc,
    pub column: Option<String>,
}

impl AggCall {
    pub fn count_star() -> AggCall {
        AggCall {
            func: AggFunc::Count,
            column: None,
        }
    }

    pub fn new(func: AggFunc, column: impl Into<String>) -> AggCall {
        AggCall {
            func,
            column: Some(column.into()),
        }
    }

    /// The output column name, e.g. `sum(price)` or `count(*)`.
    pub fn output_name(&self) -> String {
        format!(
            "{}({})",
            self.func.sql_name(),
            self.column.as_deref().unwrap_or("*")
        )
    }

    pub fn validate(&self) -> Result<()> {
        if self.column.is_none() && self.func != AggFunc::Count {
            return Err(Error::Eval(format!(
                "{}(*) is not a valid aggregate",
                self.func.sql_name()
            )));
        }
        Ok(())
    }
}

/// An aggregation request: grouping columns plus aggregate calls.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggRequest {
    pub group_by: Vec<String>,
    pub calls: Vec<AggCall>,
}

impl AggRequest {
    pub fn new(group_by: &[&str], calls: Vec<AggCall>) -> AggRequest {
        AggRequest {
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            calls,
        }
    }

    pub fn validate(&self) -> Result<()> {
        if self.calls.is_empty() {
            return Err(Error::Eval("aggregation needs at least one call".into()));
        }
        for c in &self.calls {
            c.validate()?;
        }
        Ok(())
    }

    /// Schema of the finalized output: group columns, then one column
    /// per call.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema> {
        let mut fields = Vec::new();
        for g in &self.group_by {
            fields.push(input.field(input.index_of(g)?).clone());
        }
        for c in &self.calls {
            let dtype = match c.func {
                AggFunc::Count => DataType::Int64,
                AggFunc::Avg => DataType::Float64,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                    input
                        .field(input.index_of(c.column.as_deref().unwrap_or(""))?)
                        .dtype
                }
            };
            fields.push(Field::new(c.output_name(), dtype));
        }
        Ok(Schema::new(fields))
    }

    /// Schema of the partial-state rows shipped between engine layers:
    /// group columns, then `partial_width` values per call (AVG ships
    /// its running sum and count separately).
    pub fn partial_schema(&self, input: &Schema) -> Result<Schema> {
        let mut fields = Vec::new();
        for g in &self.group_by {
            fields.push(input.field(input.index_of(g)?).clone());
        }
        for c in &self.calls {
            match c.func {
                AggFunc::Avg => {
                    fields.push(Field::new(
                        format!("{}.sum", c.output_name()),
                        DataType::Float64,
                    ));
                    fields.push(Field::new(
                        format!("{}.count", c.output_name()),
                        DataType::Int64,
                    ));
                }
                AggFunc::Count => fields.push(Field::new(c.output_name(), DataType::Int64)),
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                    let dtype = input
                        .field(input.index_of(c.column.as_deref().unwrap_or(""))?)
                        .dtype;
                    fields.push(Field::new(c.output_name(), dtype));
                }
            }
        }
        Ok(Schema::new(fields))
    }
}

/// Running state for one aggregate call within one group.
#[derive(Debug, Clone, PartialEq)]
pub enum Acc {
    Count(i64),
    /// `Int64` while every input was an integer, `Float64` after the
    /// first float; `None` until the first non-null input.
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
}

impl Acc {
    pub fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold one input value in. `COUNT(*)` passes a non-null dummy;
    /// callers handle the star case by never passing NULL for it.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(state) => {
                let next = match (state.take(), v) {
                    (None, Value::Int64(i)) => Value::Int64(*i),
                    (None, _) => Value::Float64(v.as_f64()?),
                    (Some(Value::Int64(a)), Value::Int64(b)) => Value::Int64(a.wrapping_add(*b)),
                    (Some(acc), _) => Value::Float64(acc.as_f64()? + v.as_f64()?),
                };
                *state = Some(next);
            }
            Acc::Min(best) => {
                let take = match best.as_ref() {
                    None => true,
                    Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                };
                if take {
                    *best = Some(v.clone());
                }
            }
            Acc::Max(best) => {
                let take = match best.as_ref() {
                    None => true,
                    Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                };
                if take {
                    *best = Some(v.clone());
                }
            }
            Acc::Avg { sum, count } => {
                *sum += v.as_f64()?;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Fold `n` identical non-null inputs in at once (RLE runs,
    /// zone-map answers). Equivalent to `n` calls to [`Acc::update`].
    pub fn update_repeated(&mut self, v: &Value, n: u64) -> Result<()> {
        if v.is_null() || n == 0 {
            return Ok(());
        }
        match self {
            Acc::Count(c) => *c += n as i64,
            Acc::Sum(_) => {
                for _ in 0..n {
                    self.update(v)?;
                }
            }
            Acc::Min(_) | Acc::Max(_) => self.update(v)?,
            Acc::Avg { sum, count } => {
                *sum += v.as_f64()? * n as f64;
                *count += n as i64;
            }
        }
        Ok(())
    }

    /// Merge another partial state for the same call into this one.
    pub fn merge(&mut self, other: &Acc) -> Result<()> {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::Sum(a), Acc::Sum(b)) => {
                if let Some(v) = b {
                    let next = match a.take() {
                        None => v.clone(),
                        Some(Value::Int64(x)) => match v {
                            Value::Int64(y) => Value::Int64(x.wrapping_add(*y)),
                            _ => Value::Float64(x as f64 + v.as_f64()?),
                        },
                        Some(acc) => Value::Float64(acc.as_f64()? + v.as_f64()?),
                    };
                    *a = Some(next);
                }
            }
            (Acc::Min(a), Acc::Min(b)) => {
                if let Some(v) = b {
                    let take = match a.as_ref() {
                        None => true,
                        Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
                    };
                    if take {
                        *a = Some(v.clone());
                    }
                }
            }
            (Acc::Max(a), Acc::Max(b)) => {
                if let Some(v) = b {
                    let take = match a.as_ref() {
                        None => true,
                        Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
                    };
                    if take {
                        *a = Some(v.clone());
                    }
                }
            }
            (Acc::Avg { sum: a, count: ac }, Acc::Avg { sum: b, count: bc }) => {
                *a += b;
                *ac += bc;
            }
            _ => return Err(Error::Eval("mismatched aggregate partials".into())),
        }
        Ok(())
    }

    /// Serialize the partial state ([`AggFunc::partial_width`] values).
    pub fn to_partial(&self, out: &mut Vec<Value>) {
        match self {
            Acc::Count(n) => out.push(Value::Int64(*n)),
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => out.push(v.clone().unwrap_or(Value::Null)),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    out.push(Value::Null);
                } else {
                    out.push(Value::Float64(*sum));
                }
                out.push(Value::Int64(*count));
            }
        }
    }

    /// Rebuild a partial state from its wire values.
    pub fn from_partial(func: AggFunc, values: &[Value]) -> Result<Acc> {
        let arity_err = || Error::Eval("truncated aggregate partial".into());
        match func {
            AggFunc::Count => Ok(Acc::Count(values.first().ok_or_else(arity_err)?.as_i64()?)),
            AggFunc::Sum => Ok(Acc::Sum(non_null(values.first().ok_or_else(arity_err)?))),
            AggFunc::Min => Ok(Acc::Min(non_null(values.first().ok_or_else(arity_err)?))),
            AggFunc::Max => Ok(Acc::Max(non_null(values.first().ok_or_else(arity_err)?))),
            AggFunc::Avg => {
                let sum = values.first().ok_or_else(arity_err)?;
                let count = values.get(1).ok_or_else(arity_err)?.as_i64()?;
                Ok(Acc::Avg {
                    sum: if sum.is_null() { 0.0 } else { sum.as_f64()? },
                    count,
                })
            }
        }
    }

    /// Finalize into the output value.
    pub fn finalize(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int64(*n),
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / *count as f64)
                }
            }
        }
    }
}

fn non_null(v: &Value) -> Option<Value> {
    if v.is_null() {
        None
    } else {
        Some(v.clone())
    }
}

/// Grouped accumulator table. Groups appear in first-seen order, which
/// is deterministic for a deterministic input order.
#[derive(Debug, Clone, Default)]
pub struct GroupedAccs {
    funcs: Vec<AggFunc>,
    groups: Vec<(Vec<Value>, Vec<Acc>)>,
}

impl GroupedAccs {
    pub fn new(funcs: Vec<AggFunc>) -> GroupedAccs {
        GroupedAccs {
            funcs,
            groups: Vec::new(),
        }
    }

    pub fn funcs(&self) -> &[AggFunc] {
        &self.funcs
    }

    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// The accumulator row for `key`, created on first sight. Linear
    /// probing: pushed-down GROUP BYs are small by contract.
    pub fn entry(&mut self, key: Vec<Value>) -> &mut Vec<Acc> {
        if let Some(i) = self.groups.iter().position(|(k, _)| *k == key) {
            return &mut self.groups[i].1;
        }
        let accs = self.funcs.iter().map(|f| Acc::new(*f)).collect();
        self.groups.push((key, accs));
        // fabriclint: allow(panic-hygiene): the group was pushed just above
        &mut self.groups.last_mut().expect("group just pushed").1
    }

    /// Merge another table (same funcs, same group-key arity) in.
    pub fn merge(&mut self, other: &GroupedAccs) -> Result<()> {
        for (key, accs) in &other.groups {
            let mine = self.entry(key.clone());
            for (a, b) in mine.iter_mut().zip(accs) {
                a.merge(b)?;
            }
        }
        Ok(())
    }

    /// A global (no GROUP BY) aggregate over zero rows still yields one
    /// output row; call this before finalizing/serializing when the
    /// request has no grouping columns.
    pub fn ensure_global_group(&mut self) {
        if self.groups.is_empty() {
            self.entry(Vec::new());
        }
    }

    /// Serialize every group to partial-state rows.
    pub fn to_partial_rows(&self) -> Vec<Row> {
        self.groups
            .iter()
            .map(|(key, accs)| {
                let mut values = key.clone();
                for a in accs {
                    a.to_partial(&mut values);
                }
                Row::new(values)
            })
            .collect()
    }

    /// Absorb one partial-state row produced by [`to_partial_rows`]
    /// with `key_width` leading group columns.
    pub fn absorb_partial_row(&mut self, row: &Row, key_width: usize) -> Result<()> {
        let values = row.values();
        if values.len() < key_width {
            return Err(Error::Eval("truncated aggregate partial row".into()));
        }
        let key = values[..key_width].to_vec();
        let funcs = self.funcs.clone();
        let mut at = key_width;
        let mut incoming = Vec::with_capacity(funcs.len());
        for f in &funcs {
            let w = f.partial_width();
            if values.len() < at + w {
                return Err(Error::Eval("truncated aggregate partial row".into()));
            }
            incoming.push(Acc::from_partial(*f, &values[at..at + w])?);
            at += w;
        }
        let mine = self.entry(key);
        for (a, b) in mine.iter_mut().zip(&incoming) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Finalize every group to output rows.
    pub fn finalize_rows(&self) -> Vec<Row> {
        self.groups
            .iter()
            .map(|(key, accs)| {
                let mut values = key.clone();
                values.extend(accs.iter().map(|a| a.finalize()));
                Row::new(values)
            })
            .collect()
    }
}

/// Materialized (row-at-a-time) aggregation: the reference plan the
/// pushdown differentials compare against, and the fallback for data
/// sources without aggregate pushdown.
pub fn aggregate_rows(
    schema: &Schema,
    rows: &[Row],
    request: &AggRequest,
) -> Result<(Schema, Vec<Row>)> {
    request.validate()?;
    let key_idx: Vec<usize> = request
        .group_by
        .iter()
        .map(|g| schema.index_of(g))
        .collect::<Result<_>>()?;
    let col_idx: Vec<Option<usize>> = request
        .calls
        .iter()
        .map(|c| c.column.as_deref().map(|n| schema.index_of(n)).transpose())
        .collect::<Result<_>>()?;
    let mut table = GroupedAccs::new(request.calls.iter().map(|c| c.func).collect());
    for row in rows {
        let key: Vec<Value> = key_idx.iter().map(|&i| row.get(i).clone()).collect();
        let accs = table.entry(key);
        for (acc, idx) in accs.iter_mut().zip(&col_idx) {
            match idx {
                Some(i) => acc.update(row.get(*i))?,
                None => acc.update(&Value::Int64(1))?,
            }
        }
    }
    if request.group_by.is_empty() {
        table.ensure_global_group();
    }
    Ok((request.output_schema(schema)?, table.finalize_rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("grp", DataType::Varchar),
            ("n", DataType::Int64),
            ("x", DataType::Float64),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            row!["a", 1i64, 2.0],
            row!["b", 2i64, Value::Null],
            row!["a", Value::Null, 4.0],
            row!["b", 4i64, 0.5],
        ]
    }

    #[test]
    fn global_aggregates_match_sql_semantics() {
        let req = AggRequest::new(
            &[],
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Count, "n"),
                AggCall::new(AggFunc::Sum, "n"),
                AggCall::new(AggFunc::Min, "x"),
                AggCall::new(AggFunc::Max, "n"),
                AggCall::new(AggFunc::Avg, "x"),
            ],
        );
        let (out_schema, out) = aggregate_rows(&schema(), &rows(), &req).unwrap();
        assert_eq!(
            out_schema.column_names(),
            vec!["count(*)", "count(n)", "sum(n)", "min(x)", "max(n)", "avg(x)"]
        );
        assert_eq!(out.len(), 1);
        let r = &out[0];
        assert_eq!(r.get(0), &Value::Int64(4));
        assert_eq!(r.get(1), &Value::Int64(3));
        assert_eq!(r.get(2), &Value::Int64(7), "all-int SUM stays Int64");
        assert_eq!(r.get(3), &Value::Float64(0.5));
        assert_eq!(r.get(4), &Value::Int64(4));
        assert_eq!(r.get(5), &Value::Float64(6.5 / 3.0));
    }

    #[test]
    fn zero_rows_yield_one_null_group() {
        let req = AggRequest::new(
            &[],
            vec![AggCall::count_star(), AggCall::new(AggFunc::Sum, "n")],
        );
        let (_, out) = aggregate_rows(&schema(), &[], &req).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::Int64(0));
        assert_eq!(out[0].get(1), &Value::Null);
    }

    #[test]
    fn grouped_aggregation_first_seen_order() {
        let req = AggRequest::new(&["grp"], vec![AggCall::new(AggFunc::Sum, "n")]);
        let (_, out) = aggregate_rows(&schema(), &rows(), &req).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get(0), &Value::Varchar("a".into()));
        assert_eq!(out[0].get(1), &Value::Int64(1));
        assert_eq!(out[1].get(0), &Value::Varchar("b".into()));
        assert_eq!(out[1].get(1), &Value::Int64(6));
    }

    #[test]
    fn partial_roundtrip_merges_exactly() {
        let req = AggRequest::new(
            &["grp"],
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Avg, "x"),
                AggCall::new(AggFunc::Sum, "n"),
            ],
        );
        let funcs: Vec<AggFunc> = req.calls.iter().map(|c| c.func).collect();
        let all = rows();
        // Split the input into two "pieces", aggregate each, ship
        // partial rows, merge, finalize.
        let mut merged = GroupedAccs::new(funcs.clone());
        for piece in all.chunks(2) {
            let mut t = GroupedAccs::new(funcs.clone());
            for row in piece {
                let accs = t.entry(vec![row.get(0).clone()]);
                accs[0].update(&Value::Int64(1)).unwrap();
                accs[1].update(row.get(2)).unwrap();
                accs[2].update(row.get(1)).unwrap();
            }
            for prow in t.to_partial_rows() {
                merged.absorb_partial_row(&prow, 1).unwrap();
            }
        }
        let direct = aggregate_rows(&schema(), &all, &req).unwrap().1;
        assert_eq!(merged.finalize_rows(), direct);
    }

    #[test]
    fn sum_widens_on_mixed_inputs_and_repeats_match_updates() {
        let mut a = Acc::new(AggFunc::Sum);
        a.update(&Value::Int64(3)).unwrap();
        a.update(&Value::Float64(1.5)).unwrap();
        assert_eq!(a.finalize(), Value::Float64(4.5));

        let mut one_by_one = Acc::new(AggFunc::Avg);
        let mut repeated = Acc::new(AggFunc::Avg);
        for _ in 0..5 {
            one_by_one.update(&Value::Float64(2.0)).unwrap();
        }
        repeated.update_repeated(&Value::Float64(2.0), 5).unwrap();
        assert_eq!(one_by_one.finalize(), repeated.finalize());
    }

    #[test]
    fn invalid_calls_are_rejected() {
        assert!(AggCall {
            func: AggFunc::Sum,
            column: None
        }
        .validate()
        .is_err());
        assert!(AggRequest::new(&[], vec![]).validate().is_err());
        let mut c = Acc::new(AggFunc::Count);
        let s = Acc::new(AggFunc::Sum);
        assert!(c.merge(&s).is_err(), "mismatched partials must not merge");
    }
}
