//! A small CSV codec.
//!
//! Used by the database's COPY bulk-load path and by the HDFS-baseline
//! text files (the paper stores all datasets "as delimited text files
//! (CSV)" in HDFS, Sec. 4.1). Supports RFC-4180-style quoting with
//! embedded delimiters, quotes, and newlines.

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Encode one row as a CSV line (no trailing newline).
pub fn encode_row(row: &Row, delimiter: char) -> String {
    let mut out = String::with_capacity(row.len() * 8);
    for (i, v) in row.values().iter().enumerate() {
        if i > 0 {
            out.push(delimiter);
        }
        encode_field(&mut out, v, delimiter);
    }
    out
}

fn encode_field(out: &mut String, v: &Value, delimiter: char) {
    let text = v.to_string();
    let needs_quotes = text.contains(delimiter)
        || text.contains('"')
        || text.contains('\n')
        || text.contains('\r');
    if needs_quotes {
        out.push('"');
        for c in text.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(&text);
    }
}

/// Split a CSV line into raw fields, honouring quoting.
pub fn split_line(line: &str, delimiter: char) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err(Error::Parse(format!(
            "unterminated quote in CSV line: {line:?}"
        )));
    }
    fields.push(field);
    Ok(fields)
}

/// Parse a CSV line into a typed row under `schema`.
pub fn parse_row(line: &str, schema: &Schema, delimiter: char) -> Result<Row> {
    let fields = split_line(line, delimiter)?;
    if fields.len() != schema.len() {
        return Err(Error::SchemaMismatch(format!(
            "CSV line has {} fields, schema has {} columns",
            fields.len(),
            schema.len()
        )));
    }
    let values = fields
        .iter()
        .zip(schema.fields())
        .map(|(text, field)| Value::parse_typed(text, field.dtype))
        .collect::<Result<Vec<_>>>()?;
    Ok(Row::new(values))
}

/// Encode many rows into a single CSV document.
pub fn encode_rows(rows: &[Row], delimiter: char) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&encode_row(row, delimiter));
        out.push('\n');
    }
    out
}

/// Parse a CSV document into rows, skipping blank lines.
pub fn parse_rows(text: &str, schema: &Schema, delimiter: char) -> Result<Vec<Row>> {
    text.lines()
        .filter(|l| !l.is_empty())
        .map(|l| parse_row(l, schema, delimiter))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("x", DataType::Float64),
            ("name", DataType::Varchar),
        ])
    }

    #[test]
    fn round_trip_simple_row() {
        let r = row![7i64, 1.25f64, "bob"];
        let line = encode_row(&r, ',');
        assert_eq!(line, "7,1.25,bob");
        assert_eq!(parse_row(&line, &schema(), ',').unwrap(), r);
    }

    #[test]
    fn quoting_of_delimiters_and_quotes() {
        let r = row![1i64, 0.0f64, "a,\"b\""];
        let line = encode_row(&r, ',');
        assert_eq!(line, "1,0,\"a,\"\"b\"\"\"");
        assert_eq!(parse_row(&line, &schema(), ',').unwrap(), r);
    }

    #[test]
    fn null_round_trips_as_empty() {
        let r = Row::new(vec![Value::Null, Value::Float64(2.0), Value::Null]);
        let line = encode_row(&r, ',');
        assert_eq!(line, ",2,");
        assert_eq!(parse_row(&line, &schema(), ',').unwrap(), r);
    }

    #[test]
    fn arity_mismatch_is_error() {
        assert!(parse_row("1,2", &schema(), ',').is_err());
        assert!(parse_row("1,2,3,4", &schema(), ',').is_err());
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(split_line("\"abc", ',').is_err());
    }

    #[test]
    fn alternative_delimiter() {
        let r = row![1i64, 2.0f64, "x|y"];
        let line = encode_row(&r, '|');
        assert_eq!(line, "1|2|\"x|y\"");
        assert_eq!(parse_row(&line, &schema(), '|').unwrap(), r);
    }

    #[test]
    fn multi_row_document() {
        let rows = vec![row![1i64, 1.0f64, "a"], row![2i64, 2.0f64, "b"]];
        let doc = encode_rows(&rows, ',');
        assert_eq!(parse_rows(&doc, &schema(), ',').unwrap(), rows);
    }
}
