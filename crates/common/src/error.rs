//! Shared error type for schema/type/parse failures.

use std::fmt;

/// Convenience alias used throughout the `common` crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the shared data-model layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column name did not resolve against a schema.
    UnknownColumn(String),
    /// Two schemas (or a row and a schema) did not line up.
    SchemaMismatch(String),
    /// A value had the wrong type for an operation.
    TypeMismatch { expected: String, found: String },
    /// Text could not be parsed into a value.
    Parse(String),
    /// An expression could not be evaluated.
    Eval(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            Error::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
