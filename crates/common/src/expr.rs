//! Scalar expressions and predicates.
//!
//! Expressions serve two masters: the SQL layer of the database evaluates
//! them during scans, and the compute engine's External Data Source API
//! pushes them down into the database (the paper's Sec. 3.1.1 "reducing
//! the amount of data in the pipeline"). NULL handling follows SQL
//! three-valued logic with Kleene AND/OR.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinaryOp {
    fn sql_symbol(&self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name; resolved to an ordinal by [`Expr::bind`].
    Column(String),
    /// Column reference by ordinal (produced by binding).
    ColumnIdx(usize),
    Literal(Value),
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Neg(Box<Expr>),
    IsNull(Box<Expr>),
    IsNotNull(Box<Expr>),
    /// SQL LIKE with `%` (any run) and `_` (any char) wildcards.
    Like {
        expr: Box<Expr>,
        pattern: String,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Eq, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Lt, rhs)
    }
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        Expr::binary(self, BinaryOp::LtEq, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Gt, rhs)
    }
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        Expr::binary(self, BinaryOp::GtEq, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, rhs)
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Or, rhs)
    }

    /// Resolve all column names against `schema`, producing an expression
    /// that evaluates without per-row name lookups.
    pub fn bind(&self, schema: &Schema) -> Result<Expr> {
        Ok(match self {
            Expr::Column(name) => Expr::ColumnIdx(schema.index_of(name)?),
            Expr::ColumnIdx(i) => {
                if *i >= schema.len() {
                    return Err(Error::SchemaMismatch(format!(
                        "column ordinal {i} out of range for {schema}"
                    )));
                }
                Expr::ColumnIdx(*i)
            }
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.bind(schema)?),
                op: *op,
                right: Box::new(right.bind(schema)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.bind(schema)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(e.bind(schema)?)),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.bind(schema)?)),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.bind(schema)?)),
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.bind(schema)?),
                pattern: pattern.clone(),
            },
        })
    }

    /// Evaluate a bound expression against a row. Unbound column names
    /// are an error — call [`Expr::bind`] first.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Column(name) => Err(Error::Eval(format!(
                "unbound column reference {name} (call bind first)"
            ))),
            Expr::ColumnIdx(i) => Ok(row.get(*i).clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { left, op, right } => {
                // Kleene AND/OR must not short-circuit on errors but may
                // resolve with one NULL side.
                if matches!(op, BinaryOp::And | BinaryOp::Or) {
                    return eval_logical(*op, left.eval(row)?, right.eval(row)?);
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, l, r)
            }
            Expr::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Boolean(!v.as_bool()?)),
            },
            Expr::Neg(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int64(i) => Ok(Value::Int64(-i)),
                Value::Float64(f) => Ok(Value::Float64(-f)),
                other => Err(Error::TypeMismatch {
                    expected: "numeric".into(),
                    found: other.type_name().into(),
                }),
            },
            Expr::IsNull(e) => Ok(Value::Boolean(e.eval(row)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Boolean(!e.eval(row)?.is_null())),
            Expr::Like { expr, pattern } => match expr.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Boolean(like_match(v.as_str()?, pattern))),
            },
        }
    }

    /// Evaluate as a filter predicate: only `TRUE` passes (NULL and FALSE
    /// are both rejected, as in SQL WHERE).
    pub fn matches(&self, row: &Row) -> Result<bool> {
        Ok(matches!(self.eval(row)?, Value::Boolean(true)))
    }

    /// Static result type of the expression under a schema, when known.
    pub fn result_type(&self, schema: &Schema) -> Result<Option<DataType>> {
        Ok(match self {
            Expr::Column(name) => Some(schema.field(schema.index_of(name)?).dtype),
            Expr::ColumnIdx(i) => Some(schema.field(*i).dtype),
            Expr::Literal(v) => v.data_type(),
            Expr::Binary { left, op, right } => match op {
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
                | BinaryOp::And
                | BinaryOp::Or => Some(DataType::Boolean),
                _ => {
                    let lt = left.result_type(schema)?;
                    let rt = right.result_type(schema)?;
                    match (lt, rt) {
                        (Some(DataType::Float64), _) | (_, Some(DataType::Float64)) => {
                            Some(DataType::Float64)
                        }
                        (Some(DataType::Int64), _) | (_, Some(DataType::Int64)) => {
                            // Division always yields a float, as in Vertica.
                            if matches!(op, BinaryOp::Div) {
                                Some(DataType::Float64)
                            } else {
                                Some(DataType::Int64)
                            }
                        }
                        _ => None,
                    }
                }
            },
            Expr::Not(_) | Expr::IsNull(_) | Expr::IsNotNull(_) | Expr::Like { .. } => {
                Some(DataType::Boolean)
            }
            Expr::Neg(e) => e.result_type(schema)?,
        })
    }

    /// Names of all columns referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                    out.push(name.clone());
                }
            }
            Expr::ColumnIdx(_) | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => {
                e.referenced_columns(out)
            }
            Expr::Like { expr, .. } => expr.referenced_columns(out),
        }
    }

    /// Ordinals of all bound column references (`ColumnIdx`) in this
    /// expression. Unresolved `Column` names are ignored — bind first.
    /// The scan pipeline uses this to decode only referenced columns.
    pub fn referenced_indices(&self, out: &mut Vec<usize>) {
        match self {
            Expr::ColumnIdx(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_indices(out);
                right.referenced_indices(out);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => {
                e.referenced_indices(out)
            }
            Expr::Like { expr, .. } => expr.referenced_indices(out),
        }
    }

    /// Render the expression as a SQL fragment. Used by the connector to
    /// push filters down into database queries (paper Sec. 3.1.1).
    pub fn to_sql(&self) -> String {
        match self {
            Expr::Column(name) => quote_ident(name),
            Expr::ColumnIdx(i) => format!("${i}"),
            Expr::Literal(v) => literal_sql(v),
            Expr::Binary { left, op, right } => {
                format!("({} {} {})", left.to_sql(), op.sql_symbol(), right.to_sql())
            }
            Expr::Not(e) => format!("(NOT {})", e.to_sql()),
            Expr::Neg(e) => format!("(-{})", e.to_sql()),
            Expr::IsNull(e) => format!("({} IS NULL)", e.to_sql()),
            Expr::IsNotNull(e) => format!("({} IS NOT NULL)", e.to_sql()),
            Expr::Like { expr, pattern } => {
                format!("({} LIKE '{}')", expr.to_sql(), escape_sql_string(pattern))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

fn quote_ident(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.is_empty()
        && !name.chars().next().unwrap().is_ascii_digit()
    {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

fn escape_sql_string(s: &str) -> String {
    s.replace('\'', "''")
}

fn literal_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Boolean(b) => b.to_string().to_uppercase(),
        Value::Int64(i) => i.to_string(),
        Value::Float64(x) => {
            if x.fract() == 0.0 && x.is_finite() {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Value::Varchar(s) => format!("'{}'", escape_sql_string(s)),
    }
}

fn eval_logical(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    let lb = match &l {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    let rb = match &r {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    let out = match op {
        BinaryOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinaryOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logical called with non-logical op"),
    };
    Ok(out.map(Value::Boolean).unwrap_or(Value::Null))
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let Some(ord) = l.sql_cmp(&r) else {
                return Ok(Value::Null);
            };
            let b = match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (&l, &r) {
                (Value::Int64(a), Value::Int64(b)) => {
                    let a = *a;
                    let b = *b;
                    match op {
                        Add => Ok(Value::Int64(a.wrapping_add(b))),
                        Sub => Ok(Value::Int64(a.wrapping_sub(b))),
                        Mul => Ok(Value::Int64(a.wrapping_mul(b))),
                        Div => {
                            if b == 0 {
                                Err(Error::Eval("division by zero".into()))
                            } else {
                                Ok(Value::Float64(a as f64 / b as f64))
                            }
                        }
                        Mod => {
                            if b == 0 {
                                Err(Error::Eval("division by zero".into()))
                            } else {
                                Ok(Value::Int64(a % b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                _ => {
                    let a = l.as_f64()?;
                    let b = r.as_f64()?;
                    let x = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => {
                            if b == 0.0 {
                                return Err(Error::Eval("division by zero".into()));
                            }
                            a / b
                        }
                        Mod => {
                            if b == 0.0 {
                                return Err(Error::Eval("division by zero".into()));
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::Float64(x))
                }
            }
        }
        And | Or => unreachable!("handled by eval_logical"),
    }
}

/// SQL LIKE matcher: `%` matches any run (including empty), `_` matches a
/// single character. Comparison is byte-wise (ASCII semantics).
fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => {
                // Collapse consecutive %.
                let p = &p[1..];
                (0..=t.len()).any(|i| rec(&t[i..], p))
            }
            Some(b'_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(&c) => t.first() == Some(&c) && rec(&t[1..], &p[1..]),
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("score", DataType::Float64),
            ("name", DataType::Varchar),
        ])
    }

    fn eval_on(e: Expr, r: &Row) -> Value {
        e.bind(&schema()).unwrap().eval(r).unwrap()
    }

    #[test]
    fn comparison_and_arithmetic() {
        let r = row![10i64, 2.5f64, "alice"];
        assert_eq!(
            eval_on(Expr::col("id").gt(Expr::lit(5i64)), &r),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_on(
                Expr::binary(Expr::col("id"), BinaryOp::Add, Expr::col("score")),
                &r
            ),
            Value::Float64(12.5)
        );
        assert_eq!(
            eval_on(
                Expr::binary(Expr::lit(7i64), BinaryOp::Div, Expr::lit(2i64)),
                &r
            ),
            Value::Float64(3.5)
        );
    }

    #[test]
    fn kleene_logic_with_nulls() {
        let r = Row::new(vec![Value::Null, Value::Float64(1.0), Value::Null]);
        // NULL AND FALSE = FALSE
        let e = Expr::col("id")
            .gt(Expr::lit(0i64))
            .and(Expr::col("score").lt(Expr::lit(0i64)));
        assert_eq!(eval_on(e, &r), Value::Boolean(false));
        // NULL OR TRUE = TRUE
        let e = Expr::col("id")
            .gt(Expr::lit(0i64))
            .or(Expr::col("score").gt(Expr::lit(0i64)));
        assert_eq!(eval_on(e, &r), Value::Boolean(true));
        // NULL AND TRUE = NULL, and a NULL predicate does not match.
        let e = Expr::col("id")
            .gt(Expr::lit(0i64))
            .and(Expr::col("score").gt(Expr::lit(0i64)));
        let bound = e.bind(&schema()).unwrap();
        assert_eq!(bound.eval(&r).unwrap(), Value::Null);
        assert!(!bound.matches(&r).unwrap());
    }

    #[test]
    fn is_null_and_like() {
        let r = Row::new(vec![
            Value::Null,
            Value::Float64(0.0),
            Value::Varchar("alice".into()),
        ]);
        assert_eq!(
            eval_on(Expr::IsNull(Box::new(Expr::col("id"))), &r),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_on(
                Expr::Like {
                    expr: Box::new(Expr::col("name")),
                    pattern: "al%e".into()
                },
                &r
            ),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_on(
                Expr::Like {
                    expr: Box::new(Expr::col("name")),
                    pattern: "a_ice".into()
                },
                &r
            ),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_on(
                Expr::Like {
                    expr: Box::new(Expr::col("name")),
                    pattern: "bob".into()
                },
                &r
            ),
            Value::Boolean(false)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let r = row![0i64, 0.0f64, "x"];
        let e = Expr::binary(Expr::lit(1i64), BinaryOp::Div, Expr::col("id"));
        assert!(e.bind(&schema()).unwrap().eval(&r).is_err());
    }

    #[test]
    fn bind_rejects_unknown_columns_and_eval_rejects_unbound() {
        assert!(Expr::col("nope").bind(&schema()).is_err());
        assert!(Expr::col("id").eval(&row![1i64]).is_err());
    }

    #[test]
    fn to_sql_round_trippable_shapes() {
        let e = Expr::col("id")
            .gt_eq(Expr::lit(5i64))
            .and(Expr::col("name").eq(Expr::lit("o'brien")));
        assert_eq!(e.to_sql(), "((id >= 5) AND (name = 'o''brien'))");
    }

    #[test]
    fn referenced_columns_deduplicates() {
        let e = Expr::col("a")
            .gt(Expr::col("b"))
            .and(Expr::col("A").lt(Expr::lit(1i64)));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%c"));
        assert!(like_match("abc", "a%"));
        assert!(!like_match("abc", "a"));
        assert!(like_match("a%c", "a%c")); // literal text containing %
    }
}
