//! The 64-bit segmentation hash.
//!
//! The database distributes table data by hashing the segmentation
//! columns of each row onto a 64-bit ring; contiguous hash ranges
//! ("segments") are assigned to nodes (paper Sec. 2.1.1 and 3.1.2).
//! The connector computes the *same* hash client-side when formulating
//! locality-aware range queries, so the function lives in the shared
//! crate and must be stable.
//!
//! The implementation is FNV-1a over a canonical byte encoding of each
//! value, which is cheap, deterministic, and spreads typical key
//! distributions well enough for segmentation purposes.

use crate::row::Row;
use crate::value::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a single value into the running FNV-1a state.
fn fnv1a_value(mut state: u64, value: &Value) -> u64 {
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            state ^= b as u64;
            state = state.wrapping_mul(FNV_PRIME);
        }
    };
    match value {
        Value::Null => feed(&[0x00]),
        Value::Boolean(b) => feed(&[0x01, *b as u8]),
        Value::Int64(i) => {
            feed(&[0x02]);
            feed(&i.to_le_bytes());
        }
        Value::Float64(f) => {
            // Canonicalize so that integral floats hash like themselves
            // across runs; NaNs collapse to one bit pattern.
            let bits = if f.is_nan() {
                f64::NAN.to_bits()
            } else {
                f.to_bits()
            };
            feed(&[0x03]);
            feed(&bits.to_le_bytes());
        }
        Value::Varchar(s) => {
            feed(&[0x04]);
            feed(s.as_bytes());
        }
    }
    state
}

/// Hash the given values (the segmentation expression's column values)
/// onto the 64-bit ring.
pub fn segmentation_hash(values: &[Value]) -> u64 {
    let mut state = FNV_OFFSET;
    for v in values {
        state = fnv1a_value(state, v);
    }
    state
}

/// Hash a row's segmentation columns (by ordinal).
pub fn hash_row_columns(row: &Row, columns: &[usize]) -> u64 {
    let mut state = FNV_OFFSET;
    for &c in columns {
        state = fnv1a_value(state, row.get(c));
    }
    state
}

/// Hash an arbitrary byte string onto the ring (used for synthetic
/// hash ranges over views and unsegmented tables, paper Sec. 3.1.1).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn deterministic_across_calls() {
        let v = vec![Value::Int64(42), Value::Varchar("abc".into())];
        assert_eq!(segmentation_hash(&v), segmentation_hash(&v));
    }

    #[test]
    fn distinguishes_types_and_values() {
        assert_ne!(
            segmentation_hash(&[Value::Int64(1)]),
            segmentation_hash(&[Value::Int64(2)])
        );
        assert_ne!(
            segmentation_hash(&[Value::Int64(1)]),
            segmentation_hash(&[Value::Varchar("1".into())])
        );
        assert_ne!(
            segmentation_hash(&[Value::Null]),
            segmentation_hash(&[Value::Varchar(String::new())])
        );
    }

    #[test]
    fn row_column_subset_hashing() {
        let r = row![1i64, 2i64, 3i64];
        assert_eq!(
            hash_row_columns(&r, &[0, 2]),
            segmentation_hash(&[Value::Int64(1), Value::Int64(3)])
        );
    }

    #[test]
    fn nan_canonicalization() {
        let a = segmentation_hash(&[Value::Float64(f64::NAN)]);
        let b = segmentation_hash(&[Value::Float64(-f64::NAN)]);
        assert_eq!(a, b);
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential integer keys should land in all 4 quarters of the
        // ring — a sanity check that segmentation gets balanced data.
        let mut buckets = [0usize; 4];
        for i in 0..1000i64 {
            let h = segmentation_hash(&[Value::Int64(i)]);
            buckets[(h >> 62) as usize] += 1;
        }
        for (q, &count) in buckets.iter().enumerate() {
            assert!(count > 100, "quarter {q} underfilled: {count}");
        }
    }
}
