//! Shared data model for the Vertica/Spark fabric reproduction.
//!
//! Both engines in this workspace — the MPP column store (`mppdb`) and the
//! batch compute engine (`sparklet`) — exchange relational data. This crate
//! holds the vocabulary they share:
//!
//! * [`Value`] / [`DataType`] — the dynamically typed cell model,
//! * [`Schema`] / [`Field`] — column metadata,
//! * [`Row`] — a materialized tuple,
//! * [`expr::Expr`] — scalar expressions and predicates, used both by the
//!   SQL layer of `mppdb` and by the data-source pushdown API of `sparklet`,
//! * [`hash::segmentation_hash`] — the 64-bit hash that drives table
//!   segmentation (the "hash ring" of the paper, Sec. 3.1.2),
//! * [`csv`] — a small CSV codec used by bulk load and the HDFS baseline.

pub mod agg;
pub mod csv;
pub mod error;
pub mod expr;
pub mod hash;
pub mod row;
pub mod schema;
pub mod value;

pub use error::{Error, Result};
pub use expr::Expr;
pub use row::Row;
pub use schema::{Field, Schema};
pub use value::{DataType, Value};
