//! Materialized tuples.

use crate::value::Value;

/// A materialized tuple: one value per schema column.
///
/// Rows are the unit of transfer between the engines; the connectors
/// account for their [`wire_size`](Row::wire_size) when charging the
/// network cost model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Replace the value at `idx` in place (vectorized scans reuse one
    /// scratch row across a batch instead of allocating per row).
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Project the row onto the given column ordinals.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Project an owned row by moving the selected values out instead of
    /// cloning them. Falls back to cloning when an ordinal repeats
    /// (`SELECT a, a` style projections).
    pub fn into_projected(self, indices: &[usize]) -> Row {
        let has_dup = indices
            .iter()
            .enumerate()
            .any(|(k, i)| indices[..k].contains(i));
        if has_dup {
            return self.project(indices);
        }
        let mut values: Vec<Option<Value>> = self.values.into_iter().map(Some).collect();
        Row::new(
            indices
                .iter()
                .map(|&i| values[i].take().expect("unique projection ordinal"))
                .collect(),
        )
    }

    /// Total approximate wire size of the row in bytes.
    pub fn wire_size(&self) -> usize {
        self.values.iter().map(Value::wire_size).sum()
    }

    /// Approximate textual (delimited) wire size: value texts plus one
    /// delimiter per column and a ~10-byte per-row message header (the
    /// fixed per-row overhead behind the paper's Fig. 9).
    pub fn text_wire_size(&self) -> usize {
        self.values.iter().map(Value::text_wire_size).sum::<usize>() + self.values.len() + 10
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Row {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Row {
        Row::new(iter.into_iter().collect())
    }
}

/// Build a [`Row`] from a list of expressions convertible to [`Value`].
///
/// ```
/// use common::{row, Value};
/// let r = row![1i64, 2.5f64, "abc"];
/// assert_eq!(r.get(0), &Value::Int64(1));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_reorders_and_duplicates() {
        let r = row![1i64, 2i64, 3i64];
        let p = r.project(&[2, 0, 0]);
        assert_eq!(
            p.values(),
            &[Value::Int64(3), Value::Int64(1), Value::Int64(1)]
        );
    }

    #[test]
    fn wire_size_sums_values() {
        let r = row![1i64, "abcd"];
        assert_eq!(r.wire_size(), 8 + 8);
    }

    #[test]
    fn row_macro_builds_expected_types() {
        let r = row![true, 7i64, 1.5f64, "s"];
        assert_eq!(r.get(0), &Value::Boolean(true));
        assert_eq!(r.get(1), &Value::Int64(7));
        assert_eq!(r.get(2), &Value::Float64(1.5));
        assert_eq!(r.get(3), &Value::Varchar("s".into()));
    }
}
