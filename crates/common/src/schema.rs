//! Column metadata: fields and schemas.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::value::DataType;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    pub fn not_null(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }
}

/// An ordered list of fields. Cheap to clone (used pervasively by both
/// engines), hence the `Arc` inside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema {
            fields: Arc::new(fields),
        }
    }

    /// Build a schema from `(name, type)` pairs, all nullable.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Schema {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Resolve a column name (case-insensitive) to its ordinal.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.index_of(n).map(|i| self.fields[i].clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Schema::new(fields))
    }

    /// Check that a row is storable under this schema (arity, types,
    /// nullability).
    pub fn validate_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.len() {
            return Err(Error::SchemaMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.len()
            )));
        }
        for (value, field) in row.values().iter().zip(self.fields.iter()) {
            if value.is_null() {
                if !field.nullable {
                    return Err(Error::SchemaMismatch(format!(
                        "NULL in non-nullable column {}",
                        field.name
                    )));
                }
            } else if !value.fits(field.dtype) {
                return Err(Error::TypeMismatch {
                    expected: field.dtype.sql_name().to_string(),
                    found: value.type_name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Two schemas are compatible for data transfer when they have the
    /// same arity and column types (names may differ).
    pub fn compatible_with(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|(a, b)| a.dtype == b.dtype)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|fd| format!("{} {}", fd.name, fd.dtype))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn abc() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int64),
            ("b", DataType::Float64),
            ("c", DataType::Varchar),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = abc();
        assert_eq!(s.index_of("A").unwrap(), 0);
        assert_eq!(s.index_of("c").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn project_preserves_requested_order() {
        let s = abc();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.column_names(), vec!["c", "a"]);
        assert_eq!(p.field(0).dtype, DataType::Varchar);
    }

    #[test]
    fn validate_row_checks_arity_types_nullability() {
        let s = Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("x", DataType::Float64),
        ]);
        assert!(s
            .validate_row(&Row::new(vec![Value::Int64(1), Value::Float64(2.0)]))
            .is_ok());
        // Int widens to float.
        assert!(s
            .validate_row(&Row::new(vec![Value::Int64(1), Value::Int64(2)]))
            .is_ok());
        // NULL rejected in NOT NULL column.
        assert!(s
            .validate_row(&Row::new(vec![Value::Null, Value::Null]))
            .is_err());
        // Arity mismatch.
        assert!(s.validate_row(&Row::new(vec![Value::Int64(1)])).is_err());
        // Type mismatch.
        assert!(s
            .validate_row(&Row::new(vec![Value::Varchar("x".into()), Value::Null]))
            .is_err());
    }

    #[test]
    fn compatibility_ignores_names() {
        let a = Schema::from_pairs(&[("x", DataType::Int64)]);
        let b = Schema::from_pairs(&[("y", DataType::Int64)]);
        let c = Schema::from_pairs(&[("y", DataType::Varchar)]);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
    }
}
