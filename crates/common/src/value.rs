//! Dynamically typed cell values and their types.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// Column data types supported by both engines.
///
/// This is the intersection the paper actually exercises: dataset D1 is
/// 100 `Float64` columns, dataset D2 is one `Int64` plus one `Varchar`
/// column, and the ML pipelines add `Boolean` labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Boolean,
    Int64,
    Float64,
    Varchar,
}

impl DataType {
    /// SQL spelling of the type, as used by the `mppdb` SQL layer.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Boolean => "BOOLEAN",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "FLOAT",
            DataType::Varchar => "VARCHAR",
        }
    }

    /// Parse a SQL type name (case-insensitive, with common aliases).
    pub fn from_sql_name(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOLEAN" | "BOOL" => Ok(DataType::Boolean),
            "BIGINT" | "INT" | "INTEGER" | "INT8" => Ok(DataType::Int64),
            "FLOAT" | "DOUBLE" | "FLOAT8" | "REAL" => Ok(DataType::Float64),
            "VARCHAR" | "TEXT" | "STRING" | "CHAR" => Ok(DataType::Varchar),
            other => Err(Error::Parse(format!("unknown data type: {other}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single dynamically typed cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Boolean(bool),
    Int64(i64),
    Float64(f64),
    Varchar(String),
}

impl Value {
    /// The type of this value, or `None` for SQL NULL (typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Varchar(_) => Some(DataType::Varchar),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value is storable in a column of type `dtype`.
    /// NULL is storable in any (nullable) column; `Int64` widens to
    /// `Float64` as in most SQL engines.
    pub fn fits(&self, dtype: DataType) -> bool {
        match (self, dtype) {
            (Value::Null, _) => true,
            (Value::Int64(_), DataType::Float64) => true,
            (v, t) => v.data_type() == Some(t),
        }
    }

    /// Coerce into the given type where a lossless conversion exists.
    pub fn coerce(self, dtype: DataType) -> Result<Value> {
        match (self, dtype) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int64(i), DataType::Float64) => Ok(Value::Float64(i as f64)),
            (v, t) if v.data_type() == Some(t) => Ok(v),
            (v, t) => Err(Error::TypeMismatch {
                expected: t.sql_name().to_string(),
                found: v.type_name().to_string(),
            }),
        }
    }

    /// Human-readable type name, including "NULL".
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            None => "NULL",
            Some(t) => t.sql_name(),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Boolean(b) => Ok(*b),
            other => Err(Error::TypeMismatch {
                expected: "BOOLEAN".into(),
                found: other.type_name().into(),
            }),
        }
    }

    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int64(i) => Ok(*i),
            other => Err(Error::TypeMismatch {
                expected: "BIGINT".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Numeric view: integers widen to floats.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int64(i) => Ok(*i as f64),
            Value::Float64(f) => Ok(*f),
            other => Err(Error::TypeMismatch {
                expected: "FLOAT".into(),
                found: other.type_name().into(),
            }),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Varchar(s) => Ok(s),
            other => Err(Error::TypeMismatch {
                expected: "VARCHAR".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// SQL-style three-valued comparison: NULL compares as unknown (`None`).
    /// Numeric types compare cross-type (Int64 vs Float64).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (Varchar(a), Varchar(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64().ok()?, b.as_f64().ok()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Approximate in-memory size of the value in bytes, used by the
    /// cost model to account for wire volume.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Boolean(_) => 1,
            Value::Int64(_) => 8,
            Value::Float64(_) => 8,
            Value::Varchar(s) => 4 + s.len(),
        }
    }

    /// Approximate textual (CSV/JDBC-style) size of the value in
    /// bytes. Client-server row transfer in the modeled systems is
    /// text-encoded, so the cost model charges this, not the binary
    /// size.
    pub fn text_wire_size(&self) -> usize {
        // Each value carries ~6 bytes of protocol framing (length
        // prefix, type tag, nullability) on top of its text.
        const FRAMING: usize = 6;
        FRAMING
            + match self {
                Value::Null => 0,
                Value::Boolean(_) => 5,
                Value::Int64(i) => {
                    let mut n = if *i < 0 { 1 } else { 0 };
                    let mut v = i.unsigned_abs();
                    loop {
                        n += 1;
                        v /= 10;
                        if v == 0 {
                            break;
                        }
                    }
                    n
                }
                // Round-trippable float formatting averages ~17 chars.
                Value::Float64(_) => 17,
                Value::Varchar(s) => s.len(),
            }
    }

    /// Parse a textual literal into a value of the given type. Empty
    /// strings parse as NULL, mirroring typical bulk-load behaviour.
    pub fn parse_typed(text: &str, dtype: DataType) -> Result<Value> {
        if text.is_empty() {
            return Ok(Value::Null);
        }
        match dtype {
            DataType::Boolean => match text.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Ok(Value::Boolean(true)),
                "false" | "f" | "0" => Ok(Value::Boolean(false)),
                other => Err(Error::Parse(format!("bad boolean literal: {other}"))),
            },
            DataType::Int64 => text
                .parse::<i64>()
                .map(Value::Int64)
                .map_err(|e| Error::Parse(format!("bad integer literal {text:?}: {e}"))),
            DataType::Float64 => text
                .parse::<f64>()
                .map(Value::Float64)
                .map_err(|e| Error::Parse(format!("bad float literal {text:?}: {e}"))),
            DataType::Varchar => Ok(Value::Varchar(text.to_string())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int64(i) => write!(f, "{i}"),
            Value::Float64(x) => write!(f, "{x}"),
            Value::Varchar(s) => f.write_str(s),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Boolean(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int64(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float64(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Varchar(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Varchar(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_sql_round_trip() {
        for t in [
            DataType::Boolean,
            DataType::Int64,
            DataType::Float64,
            DataType::Varchar,
        ] {
            assert_eq!(DataType::from_sql_name(t.sql_name()).unwrap(), t);
        }
    }

    #[test]
    fn data_type_aliases() {
        assert_eq!(DataType::from_sql_name("int").unwrap(), DataType::Int64);
        assert_eq!(
            DataType::from_sql_name("double").unwrap(),
            DataType::Float64
        );
        assert_eq!(DataType::from_sql_name("text").unwrap(), DataType::Varchar);
        assert!(DataType::from_sql_name("blob").is_err());
    }

    #[test]
    fn fits_and_coerce() {
        assert!(Value::Null.fits(DataType::Varchar));
        assert!(Value::Int64(3).fits(DataType::Float64));
        assert!(!Value::Float64(3.0).fits(DataType::Int64));
        assert_eq!(
            Value::Int64(3).coerce(DataType::Float64).unwrap(),
            Value::Float64(3.0)
        );
        assert!(Value::Varchar("x".into()).coerce(DataType::Int64).is_err());
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int64(1)), None);
        assert_eq!(
            Value::Int64(2).sql_cmp(&Value::Float64(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Varchar("a".into()).sql_cmp(&Value::Varchar("b".into())),
            Some(Ordering::Less)
        );
        // Cross-type non-numeric comparison is unknown.
        assert_eq!(
            Value::Boolean(true).sql_cmp(&Value::Varchar("t".into())),
            None
        );
    }

    #[test]
    fn parse_typed_values() {
        assert_eq!(
            Value::parse_typed("42", DataType::Int64).unwrap(),
            Value::Int64(42)
        );
        assert_eq!(
            Value::parse_typed("", DataType::Int64).unwrap(),
            Value::Null
        );
        assert_eq!(
            Value::parse_typed("t", DataType::Boolean).unwrap(),
            Value::Boolean(true)
        );
        assert!(Value::parse_typed("nope", DataType::Int64).is_err());
    }

    #[test]
    fn wire_size_accounts_for_strings() {
        assert_eq!(Value::Int64(0).wire_size(), 8);
        assert_eq!(Value::Varchar("abcd".into()).wire_size(), 8);
    }
}
