//! Property tests for the shared data model: CSV round trips, hash
//! determinism, and expression binding invariants.

use common::csv;
use common::expr::{BinaryOp, Expr};
use common::hash::segmentation_hash;
use common::{DataType, Row, Schema, Value};
use proptest::prelude::*;

fn arb_value(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Boolean => {
            prop_oneof![Just(Value::Null), any::<bool>().prop_map(Value::Boolean)].boxed()
        }
        DataType::Int64 => {
            prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Int64)].boxed()
        }
        DataType::Float64 => prop_oneof![
            Just(Value::Null),
            // Finite, non-signed-zero floats: CSV text round trips can't
            // distinguish -0.0 from 0.0.
            any::<i64>().prop_map(|i| Value::Float64(i as f64 / 64.0))
        ]
        .boxed(),
        DataType::Varchar => prop_oneof![
            // Note: empty string is intentionally excluded — CSV encodes
            // NULL as empty text, so "" does not round trip (documented
            // COPY behaviour).
            "[a-zA-Z0-9,\"\\|; ']{1,20}".prop_map(Value::Varchar)
        ]
        .boxed(),
    }
}

fn arb_schema() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(
        prop_oneof![
            Just(DataType::Boolean),
            Just(DataType::Int64),
            Just(DataType::Float64),
            Just(DataType::Varchar)
        ],
        1..8,
    )
    .prop_map(|types| {
        Schema::new(
            types
                .into_iter()
                .enumerate()
                .map(|(i, t)| common::Field::new(format!("c{i}"), t))
                .collect(),
        )
    })
}

fn arb_row(schema: &Schema) -> impl Strategy<Value = Row> {
    let strategies: Vec<BoxedStrategy<Value>> =
        schema.fields().iter().map(|f| arb_value(f.dtype)).collect();
    strategies.prop_map(Row::new)
}

proptest! {
    #[test]
    fn csv_round_trip(
        (schema, row) in arb_schema().prop_flat_map(|s| {
            let rs = arb_row(&s);
            (Just(s), rs)
        })
    ) {
        let line = csv::encode_row(&row, ',');
        let back = csv::parse_row(&line, &schema, ',').unwrap();
        prop_assert_eq!(back, row);
    }

    #[test]
    fn hash_is_deterministic_and_order_sensitive(a in any::<i64>(), b in any::<i64>()) {
        let va = [Value::Int64(a), Value::Int64(b)];
        let vb = [Value::Int64(b), Value::Int64(a)];
        prop_assert_eq!(segmentation_hash(&va), segmentation_hash(&va));
        if a != b {
            prop_assert_ne!(segmentation_hash(&va), segmentation_hash(&vb));
        }
    }

    #[test]
    fn bound_expr_evaluates_without_error_on_valid_rows(
        (schema, row) in arb_schema().prop_flat_map(|s| {
            let rs = arb_row(&s);
            (Just(s), rs)
        })
    ) {
        // IS NULL over every column is always evaluable and boolean.
        for field in schema.fields() {
            let e = Expr::IsNull(Box::new(Expr::col(field.name.clone())))
                .bind(&schema).unwrap();
            let v = e.eval(&row).unwrap();
            prop_assert!(matches!(v, Value::Boolean(_)));
        }
    }

    #[test]
    fn comparison_predicates_never_error_on_same_typed_columns(x in any::<i64>(), y in any::<i64>()) {
        let schema = Schema::from_pairs(&[("a", DataType::Int64), ("b", DataType::Int64)]);
        let row = Row::new(vec![Value::Int64(x), Value::Int64(y)]);
        for op in [BinaryOp::Eq, BinaryOp::Lt, BinaryOp::GtEq] {
            let e = Expr::binary(Expr::col("a"), op, Expr::col("b")).bind(&schema).unwrap();
            prop_assert!(e.eval(&row).is_ok());
        }
    }
}
