//! The connector's typed error surface.
//!
//! Before this module the connector surfaced every failure as a
//! stringly `SparkError::DataSource(String)`, which made "should I
//! retry?" a substring match. [`ConnectorError`] keeps the database
//! error (`DbError`) structured and classifies every variant as
//! transient or fatal via [`ConnectorError::is_transient`] — the single
//! predicate the retry layer consults.

use mppdb::DbError;
use sparklet::SparkError;

pub type ConnectorResult<T> = Result<T, ConnectorError>;

/// Everything that can go wrong between Spark and the database.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnectorError {
    /// The caller misused the API (bad option, bad mode, bad argument).
    Usage(String),
    /// A database error, tagged with the connector operation that hit it.
    Db { op: &'static str, source: DbError },
    /// The compute engine failed the job (task kill, scheduler error).
    Engine(String),
    /// No cluster node is accepting connections.
    NoLiveNodes,
    /// The load exceeded the configured rejected-rows tolerance.
    Tolerance {
        job: String,
        loaded: u64,
        rejected: u64,
        tolerance: f64,
    },
    /// The S2V protocol reached a state it never should (e.g. no task
    /// committed and no final status recorded).
    Protocol(String),
    /// The retry policy ran out of attempts.
    RetriesExhausted {
        op: &'static str,
        attempts: u32,
        last: Box<ConnectorError>,
    },
    /// The retry policy ran out of wall-clock budget.
    DeadlineExceeded {
        op: &'static str,
        attempts: u32,
        elapsed_ms: u64,
    },
}

impl ConnectorError {
    pub fn db(op: &'static str, source: DbError) -> ConnectorError {
        ConnectorError::Db { op, source }
    }

    /// Whether retrying the same operation can plausibly succeed.
    ///
    /// Transient: connectivity loss, refused/overloaded nodes, lock
    /// timeouts, and segments that are momentarily unreadable (their
    /// node may be restored or a buddy may come up). Everything else —
    /// schema errors, rejected data, usage mistakes, protocol
    /// violations, exhausted budgets — is fatal: retrying replays the
    /// same failure.
    /// The match is exhaustive on purpose (no `_` arm): `fabriclint`
    /// checks that every variant is classified here, and the compiler
    /// forces a decision when a variant is added. Database errors
    /// delegate to [`DbError::is_transient`] so the two layers cannot
    /// drift apart.
    pub fn is_transient(&self) -> bool {
        match self {
            ConnectorError::Db { source, .. } => source.is_transient(),
            ConnectorError::NoLiveNodes => true,
            ConnectorError::Usage(_)
            | ConnectorError::Engine(_)
            | ConnectorError::Tolerance { .. }
            | ConnectorError::Protocol(_)
            | ConnectorError::RetriesExhausted { .. }
            | ConnectorError::DeadlineExceeded { .. } => false,
        }
    }
}

impl std::fmt::Display for ConnectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectorError::Usage(msg) => write!(f, "usage: {msg}"),
            ConnectorError::Db { op, source } => write!(f, "db error during {op}: {source}"),
            ConnectorError::Engine(msg) => write!(f, "engine error: {msg}"),
            ConnectorError::NoLiveNodes => write!(f, "no live database nodes"),
            ConnectorError::Tolerance {
                job,
                loaded,
                rejected,
                tolerance,
            } => write!(
                f,
                "job {job}: {rejected} rejected rows against {loaded} loaded \
                 exceeds tolerance {tolerance}"
            ),
            ConnectorError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ConnectorError::RetriesExhausted { op, attempts, last } => {
                write!(
                    f,
                    "{op}: gave up after {attempts} attempts, last error: {last}"
                )
            }
            ConnectorError::DeadlineExceeded {
                op,
                attempts,
                elapsed_ms,
            } => write!(
                f,
                "{op}: deadline exceeded after {attempts} attempts ({elapsed_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for ConnectorError {}

impl From<DbError> for ConnectorError {
    fn from(e: DbError) -> ConnectorError {
        ConnectorError::Db {
            op: "db",
            source: e,
        }
    }
}

impl From<common::Error> for ConnectorError {
    fn from(e: common::Error) -> ConnectorError {
        ConnectorError::Db {
            op: "data",
            source: DbError::Data(e),
        }
    }
}

impl From<SparkError> for ConnectorError {
    fn from(e: SparkError) -> ConnectorError {
        match e {
            SparkError::Usage(msg) => ConnectorError::Usage(msg),
            other => ConnectorError::Engine(other.to_string()),
        }
    }
}

/// The bridge back into the engine's error type: Spark-facing entry
/// points (`DataSourceProvider`, `ScanRelation`) return `SparkError`.
impl From<ConnectorError> for SparkError {
    fn from(e: ConnectorError) -> SparkError {
        match e {
            ConnectorError::Usage(msg) => SparkError::Usage(msg),
            other => SparkError::DataSource(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification_covers_connectivity_errors() {
        for e in [
            DbError::NodeUnavailable(2),
            DbError::ConnectionRefused { node: 0 },
            DbError::ConnectionLost { node: 1 },
            DbError::TooManySessions { node: 0, limit: 8 },
            DbError::LockTimeout { table: "t".into() },
            DbError::DataUnavailable { segment: 3 },
            DbError::Overloaded {
                pool: "general".into(),
            },
        ] {
            assert!(
                ConnectorError::db("op", e.clone()).is_transient(),
                "{e} should be transient"
            );
        }
        assert!(ConnectorError::NoLiveNodes.is_transient());
    }

    #[test]
    fn fatal_classification_covers_semantic_errors() {
        for e in [
            DbError::UnknownTable("t".into()),
            DbError::TableExists("t".into()),
            DbError::Syntax("bad".into()),
            DbError::TxnState("no txn".into()),
            DbError::CopyRejected {
                rejected: 5,
                tolerance: 1,
            },
            DbError::BadEpoch {
                requested: 9,
                current: 3,
            },
        ] {
            assert!(
                !ConnectorError::db("op", e.clone()).is_transient(),
                "{e} should be fatal"
            );
        }
        assert!(!ConnectorError::Usage("bad".into()).is_transient());
        assert!(!ConnectorError::Protocol("weird".into()).is_transient());
        assert!(!ConnectorError::RetriesExhausted {
            op: "x",
            attempts: 3,
            last: Box::new(ConnectorError::NoLiveNodes),
        }
        .is_transient());
    }

    #[test]
    fn spark_usage_errors_round_trip() {
        let c: ConnectorError = SparkError::Usage("bad arg".into()).into();
        assert_eq!(c, ConnectorError::Usage("bad arg".into()));
        let s: SparkError = c.into();
        assert!(matches!(s, SparkError::Usage(_)));
        let s2: SparkError = ConnectorError::NoLiveNodes.into();
        assert!(matches!(s2, SparkError::DataSource(_)));
    }
}
