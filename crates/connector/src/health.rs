//! Grey-failure defenses: per-node health scoring, circuit breakers,
//! deadlines, and hedged reads.
//!
//! PR 3's retry/failover layer handles *fail-stop* faults — a node that
//! is down errors fast and the next candidate is tried. Grey failures
//! are worse: a node that is alive but 10–100× slower never errors, so
//! every piece routed through it stalls for its full service time. The
//! defenses here are the classic tail-tolerance toolbox:
//!
//! * **[`HealthTracker`]** — per-node EWMA latency and error-rate
//!   scores, fed by every [`crate::retry::RetryConn`] call and V2S
//!   piece. The scores drive a three-state circuit breaker per node:
//!
//!   ```text
//!   Closed ──(N consecutive failures)──▶ Open
//!   Open ──(cooldown elapsed, next acquire)──▶ HalfOpen
//!   HalfOpen ──(success)──▶ Closed
//!   HalfOpen ──(failure)──▶ Open          (cooldown restarts)
//!   ```
//!
//!   HalfOpen grants a bounded *probe budget*: only a few trial
//!   operations may test a recovering node, so a still-sick node cannot
//!   absorb a thundering herd the moment its cooldown lapses. Any
//!   success fully closes the breaker.
//!
//! * **[`Deadline`]** — an overall time budget set once at
//!   `save()`/`load()` and propagated by value through every retry
//!   loop, hedge, and COPY phase, so a job fails crisply at its budget
//!   instead of each layer timing out independently.
//!
//! * **[`hedged_read`]** — tail-latency hedging for *idempotent reads
//!   only* (V2S pieces and catalog probes). If the primary attempt has
//!   not answered within a delay derived from the observed P99, a buddy
//!   attempt launches on another node; the first result wins and the
//!   loser is abandoned. S2V writes never hedge: a second in-flight
//!   writer would break the exactly-once commit protocol.
//!
//! Everything reports through the obs layer as `health.*`, `breaker.*`,
//! and `hedge.*` counters, visible in the `dc_counters` system table.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use mppdb::Cluster;
use parking_lot::Mutex;

use crate::error::{ConnectorError, ConnectorResult};

// ---------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------

/// An overall wall-clock budget, propagated by value (it is `Copy`)
/// from the driver entry point down through retries, hedges, and COPY
/// phases.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline expiring `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            started: Instant::now(),
            budget,
        }
    }

    pub fn budget(&self) -> Duration {
        self.budget
    }

    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.started.elapsed())
    }

    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }

    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

// ---------------------------------------------------------------------
// Health scoring + circuit breaker
// ---------------------------------------------------------------------

/// Breaker states for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic admitted.
    Closed,
    /// Sick: traffic steered away until the cooldown lapses.
    Open,
    /// Recovering: a bounded probe budget may test the node.
    HalfOpen,
}

/// Tuning knobs for [`HealthTracker`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Weight of the newest sample in the EWMA scores.
    pub ewma_alpha: f64,
    /// Consecutive failures that open a closed breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects traffic before allowing probes.
    pub open_cooldown: Duration,
    /// Trial operations admitted while half-open.
    pub half_open_probes: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            ewma_alpha: 0.3,
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(50),
            half_open_probes: 2,
        }
    }
}

#[derive(Debug)]
struct NodeHealth {
    /// EWMA of successful-operation latency, microseconds.
    ewma_us: f64,
    /// EWMA of the failure indicator (1.0 = all recent ops failed).
    err_rate: f64,
    samples: u64,
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
    probes_left: u32,
}

impl NodeHealth {
    fn new() -> NodeHealth {
        NodeHealth {
            ewma_us: 0.0,
            err_rate: 0.0,
            samples: 0,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
            probes_left: 0,
        }
    }
}

/// Minimum samples before a P99 (and thus an auto hedge delay) exists.
const MIN_P99_SAMPLES: u64 = 20;
/// The derived hedge delay never drops below this: clean runs with
/// µs-scale operations must not hedge.
const MIN_HEDGE_DELAY: Duration = Duration::from_millis(10);
/// Hedge after this multiple of the observed P99.
const HEDGE_P99_MULTIPLIER: u32 = 3;

/// Per-node health scores and circuit breakers for one cluster.
///
/// Successful-op latencies land in a log-scale [`obs::Histo`], so the
/// hedge delay derives from a *true* P99 quantile (exact to one bucket,
/// never forgetting the tail) instead of the old 512-sample ring whose
/// P99 shifted as old samples were overwritten.
pub struct HealthTracker {
    cfg: HealthConfig,
    nodes: Vec<Mutex<NodeHealth>>,
    recent: Mutex<obs::Histo>,
}

impl HealthTracker {
    pub fn new(node_count: usize) -> HealthTracker {
        HealthTracker::with_config(node_count, HealthConfig::default())
    }

    pub fn with_config(node_count: usize, cfg: HealthConfig) -> HealthTracker {
        HealthTracker {
            cfg,
            nodes: (0..node_count.max(1))
                .map(|_| Mutex::new(NodeHealth::new()))
                .collect(),
            recent: Mutex::new(obs::Histo::new()),
        }
    }

    fn node(&self, node: usize) -> &Mutex<NodeHealth> {
        &self.nodes[node.min(self.nodes.len() - 1)]
    }

    /// Record a successful operation against `node`. Any success fully
    /// closes the node's breaker.
    pub fn record_success(&self, node: usize, latency: Duration) {
        let us = latency.as_micros() as u64;
        {
            let mut nh = self.node(node).lock();
            let a = self.cfg.ewma_alpha;
            nh.ewma_us = if nh.samples == 0 {
                us as f64
            } else {
                a * us as f64 + (1.0 - a) * nh.ewma_us
            };
            nh.err_rate *= 1.0 - a;
            nh.samples += 1;
            nh.consecutive_failures = 0;
            if nh.state != BreakerState::Closed {
                nh.state = BreakerState::Closed;
                nh.opened_at = None;
                nh.probes_left = 0;
                drop(nh);
                self.breaker_event(node, "closed");
                obs::global().incr("breaker.close");
            }
        }
        self.recent.lock().record(us);
        obs::global().incr("health.successes");
    }

    /// Record a failed (transient-errored) operation against `node`.
    pub fn record_failure(&self, node: usize) {
        let mut nh = self.node(node).lock();
        let a = self.cfg.ewma_alpha;
        nh.err_rate = a + (1.0 - a) * nh.err_rate;
        nh.samples += 1;
        nh.consecutive_failures = nh.consecutive_failures.saturating_add(1);
        let open = match nh.state {
            BreakerState::Closed => nh.consecutive_failures >= self.cfg.failure_threshold,
            BreakerState::HalfOpen => true,
            // Already open: leave the cooldown clock running.
            BreakerState::Open => false,
        };
        if open {
            nh.state = BreakerState::Open;
            nh.opened_at = Some(Instant::now());
            nh.probes_left = 0;
            drop(nh);
            self.breaker_event(node, "opened");
            obs::global().incr("breaker.open");
        }
        obs::global().incr("health.failures");
    }

    fn breaker_event(&self, node: usize, what: &str) {
        obs::global().emit(obs::EventKind::BreakerTrip, |e| {
            e.node = Some(node as u64);
            e.detail = format!("breaker {what} for node {node}");
        });
    }

    /// Current breaker state (read-only; does not consume probes or
    /// promote an open breaker).
    pub fn state(&self, node: usize) -> BreakerState {
        self.node(node).lock().state
    }

    /// Ask the breaker to admit one operation against `node`. While
    /// half-open, this consumes one probe; an open breaker past its
    /// cooldown transitions to half-open (and consumes the first
    /// probe). Returns false when the node should not be tried.
    pub fn acquire(&self, node: usize) -> bool {
        let mut nh = self.node(node).lock();
        match nh.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled = nh
                    .opened_at
                    .map(|t| t.elapsed() >= self.cfg.open_cooldown)
                    .unwrap_or(true);
                if cooled {
                    nh.state = BreakerState::HalfOpen;
                    nh.probes_left = self.cfg.half_open_probes.saturating_sub(1);
                    drop(nh);
                    self.breaker_event(node, "half-open");
                    obs::global().incr("breaker.half_open");
                    true
                } else {
                    obs::global().incr(obs::names::BREAKER_REJECTED);
                    false
                }
            }
            BreakerState::HalfOpen => {
                if nh.probes_left > 0 {
                    nh.probes_left -= 1;
                    true
                } else {
                    obs::global().incr(obs::names::BREAKER_REJECTED);
                    false
                }
            }
        }
    }

    /// Stable-sort a candidate list so healthy nodes come first:
    /// closed breakers, then half-open, then open-past-cooldown, then
    /// open. Ties keep the caller's (locality-aware) order.
    pub fn reorder(&self, order: &mut [usize]) {
        order.sort_by_key(|&n| {
            let nh = self.node(n).lock();
            match nh.state {
                BreakerState::Closed => 0u8,
                BreakerState::HalfOpen => 1,
                BreakerState::Open => {
                    let cooled = nh
                        .opened_at
                        .map(|t| t.elapsed() >= self.cfg.open_cooldown)
                        .unwrap_or(true);
                    if cooled {
                        2
                    } else {
                        3
                    }
                }
            }
        });
    }

    /// EWMA latency of successful ops at `node`, if any were recorded.
    pub fn ewma_latency(&self, node: usize) -> Option<Duration> {
        let nh = self.node(node).lock();
        (nh.samples > 0).then(|| Duration::from_micros(nh.ewma_us as u64))
    }

    /// EWMA failure rate at `node` in [0, 1].
    pub fn error_rate(&self, node: usize) -> f64 {
        self.node(node).lock().err_rate
    }

    /// P99 of successful-op latencies across all nodes — the histogram
    /// quantile (upper bucket bound clamped to the observed min/max) —
    /// once enough samples exist.
    pub fn observed_p99(&self) -> Option<Duration> {
        let h = self.recent.lock();
        (h.count() >= MIN_P99_SAMPLES).then(|| Duration::from_micros(h.quantile(0.99)))
    }

    /// The delay after which a hedge launches: the explicit override if
    /// set, else `max(3 × P99, 10ms)` once enough samples exist, else
    /// `None` (no hedging until the tracker has seen real latencies).
    pub fn hedge_delay(&self, fixed: Option<Duration>) -> Option<Duration> {
        if fixed.is_some() {
            return fixed;
        }
        self.observed_p99()
            .map(|p99| (p99 * HEDGE_P99_MULTIPLIER).max(MIN_HEDGE_DELAY))
    }
}

/// Process-wide registry of health trackers, one per cluster, keyed by
/// [`Cluster::id`] so independent test clusters never share scores.
/// Every `RetryConn` and `V2sSource` against the same cluster feeds the
/// same tracker — that sharing is what lets the S2V driver's failures
/// steer V2S piece placement and vice versa.
pub fn tracker_for(cluster: &Cluster) -> Arc<HealthTracker> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<HealthTracker>>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock();
    // Old clusters (lower ids) are dead test fixtures; keep the map
    // bounded across a long-lived test process.
    if map.len() > 256 {
        if let Some(&oldest) = map.keys().min() {
            map.remove(&oldest);
        }
    }
    Arc::clone(
        map.entry(cluster.id())
            .or_insert_with(|| Arc::new(HealthTracker::new(cluster.node_count()))),
    )
}

// ---------------------------------------------------------------------
// Hedged reads
// ---------------------------------------------------------------------

/// Run an idempotent read with a tail-latency hedge: start `run` on
/// `primary`; if no answer within `delay`, start it on `buddy` too and
/// take whichever finishes first. The loser cannot be interrupted
/// mid-call — it is abandoned on a detached thread and its eventual
/// result discarded (counted under `hedge.cancelled`).
///
/// Only reads may use this: a hedged write would put two copies of the
/// same mutation in flight.
///
/// Each attempt runs under a `hedge.attempt` span parented at `trace`
/// (attempt 1 = primary, attempt 2 = buddy); the span is finished by
/// the worker thread when its attempt returns, so an abandoned loser
/// closes its span late rather than never.
pub fn hedged_read<T: Send + 'static>(
    op: &'static str,
    delay: Duration,
    primary: usize,
    buddy: usize,
    trace: obs::TraceCtx,
    run: Arc<dyn Fn(usize) -> ConnectorResult<T> + Send + Sync>,
) -> ConnectorResult<T> {
    let (tx, rx) = mpsc::channel();
    {
        let tx = tx.clone();
        let run = Arc::clone(&run);
        let span = obs::global().span_start(obs::names::HEDGE_ATTEMPT, trace);
        std::thread::spawn(move || {
            let result = run(primary);
            obs::global().span_finish(span, |s| {
                s.attempt = 1;
                s.node = Some(primary as u64);
                s.failed = result.is_err();
                s.detail = format!("{op} primary");
            });
            // The receiver may be gone (winner already returned).
            let _ = tx.send((primary, result));
        });
    }
    match rx.recv_timeout(delay) {
        Ok((_, result)) => return result,
        Err(mpsc::RecvTimeoutError::Timeout) => {}
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            return Err(ConnectorError::Engine(format!(
                "{op}: hedged read worker died"
            )))
        }
    }
    // Primary is past the hedge delay: launch the buddy attempt.
    obs::global().emit(obs::EventKind::Hedge, |e| {
        e.node = Some(buddy as u64);
        e.dur_us = delay.as_micros() as u64;
        e.detail = format!("{op}: hedging node {primary} with buddy {buddy}");
    });
    obs::global().incr("hedge.launched");
    {
        let run = Arc::clone(&run);
        let span = obs::global().span_start(obs::names::HEDGE_ATTEMPT, trace);
        std::thread::spawn(move || {
            let result = run(buddy);
            obs::global().span_finish(span, |s| {
                s.attempt = 2;
                s.node = Some(buddy as u64);
                s.failed = result.is_err();
                s.detail = format!("{op} hedge");
            });
            let _ = tx.send((buddy, result));
        });
    }
    let mut received = 0usize;
    let mut first_err: Option<ConnectorError> = None;
    while received < 2 {
        match rx.recv() {
            Ok((node, Ok(value))) => {
                received += 1;
                obs::global().incr(if node == buddy {
                    "hedge.wins"
                } else {
                    "hedge.primary_wins"
                });
                if received < 2 {
                    // The loser is still in flight; abandon it.
                    obs::global().incr("hedge.cancelled");
                }
                return Ok(value);
            }
            Ok((_, Err(e))) => {
                received += 1;
                first_err.get_or_insert(e);
            }
            Err(_) => break,
        }
    }
    Err(first_err
        .unwrap_or_else(|| ConnectorError::Engine(format!("{op}: hedged read lost both attempts"))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> HealthConfig {
        HealthConfig {
            open_cooldown: Duration::from_millis(5),
            ..HealthConfig::default()
        }
    }

    #[test]
    fn deadline_counts_down_and_expires() {
        let d = Deadline::within(Duration::from_millis(20));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(25));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn consecutive_failures_open_the_breaker() {
        let t = HealthTracker::with_config(2, fast_cfg());
        t.record_failure(1);
        t.record_failure(1);
        assert_eq!(t.state(1), BreakerState::Closed, "below threshold");
        t.record_failure(1);
        assert_eq!(t.state(1), BreakerState::Open);
        // The other node is untouched.
        assert_eq!(t.state(0), BreakerState::Closed);
        assert!(!t.acquire(1), "open breaker rejects before cooldown");
        std::thread::sleep(Duration::from_millis(6));
        assert!(t.acquire(1), "cooldown lapsed: probe admitted");
        assert_eq!(t.state(1), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_budget_is_bounded_and_success_closes() {
        let t = HealthTracker::with_config(1, fast_cfg());
        for _ in 0..3 {
            t.record_failure(0);
        }
        std::thread::sleep(Duration::from_millis(6));
        assert!(t.acquire(0), "first probe");
        assert!(t.acquire(0), "second probe (budget 2)");
        assert!(!t.acquire(0), "probe budget exhausted");
        t.record_success(0, Duration::from_micros(100));
        assert_eq!(t.state(0), BreakerState::Closed, "success fully closes");
        assert!(t.acquire(0));
    }

    #[test]
    fn half_open_failure_reopens() {
        let t = HealthTracker::with_config(1, fast_cfg());
        for _ in 0..3 {
            t.record_failure(0);
        }
        std::thread::sleep(Duration::from_millis(6));
        assert!(t.acquire(0));
        t.record_failure(0);
        assert_eq!(t.state(0), BreakerState::Open);
        assert!(!t.acquire(0), "cooldown restarted");
    }

    #[test]
    fn reorder_puts_sick_nodes_last_and_is_stable() {
        let t = HealthTracker::with_config(4, fast_cfg());
        for _ in 0..3 {
            t.record_failure(2);
        }
        let mut order = vec![2, 0, 1, 3];
        t.reorder(&mut order);
        assert_eq!(order, vec![0, 1, 3, 2], "sick node demoted, rest stable");
    }

    #[test]
    fn hedge_delay_requires_samples_and_floors() {
        let t = HealthTracker::new(2);
        assert_eq!(t.hedge_delay(None), None, "no samples, no hedging");
        assert_eq!(
            t.hedge_delay(Some(Duration::from_millis(7))),
            Some(Duration::from_millis(7)),
            "explicit override wins"
        );
        for _ in 0..MIN_P99_SAMPLES {
            t.record_success(0, Duration::from_micros(200));
        }
        let d = t.hedge_delay(None).unwrap();
        assert_eq!(d, MIN_HEDGE_DELAY, "µs-scale ops floor at the minimum");
        for _ in 0..40 {
            t.record_success(1, Duration::from_millis(8));
        }
        let d = t.hedge_delay(None).unwrap();
        assert!(d >= Duration::from_millis(24), "3 × P99 above the floor");
    }

    #[test]
    fn hedge_delay_is_a_true_histogram_quantile() {
        // 600 fast ops then 40 slow ones: more samples than the old
        // 512-slot ring could hold. The histogram keeps them all, so
        // rank ceil(0.99 × 640) = 634 lands in the slow group and the
        // quantile clamps to the observed max — exactly 8ms, no decay
        // or overwrite drift.
        let t = HealthTracker::new(2);
        for _ in 0..600 {
            t.record_success(0, Duration::from_millis(1));
        }
        for _ in 0..40 {
            t.record_success(1, Duration::from_millis(8));
        }
        assert_eq!(t.observed_p99(), Some(Duration::from_millis(8)));
        assert_eq!(
            t.hedge_delay(None),
            Some(Duration::from_millis(24)),
            "hedge delay is 3 × the histogram P99"
        );
        // A reference obs::Histo fed the same samples agrees.
        let mut reference = obs::Histo::new();
        for _ in 0..600 {
            reference.record(1_000);
        }
        for _ in 0..40 {
            reference.record(8_000);
        }
        assert_eq!(reference.quantile(0.99), 8_000);
    }

    #[test]
    fn hedged_read_prefers_fast_primary() {
        let before = obs::global().snapshot().counters;
        let run = Arc::new(|node: usize| -> ConnectorResult<usize> { Ok(node) });
        let got = hedged_read(
            "t.fast",
            Duration::from_millis(50),
            0,
            1,
            obs::TraceCtx::NONE,
            run,
        )
        .unwrap();
        assert_eq!(got, 0, "primary answered before the hedge delay");
        let after = obs::global().snapshot().counters;
        let delta =
            |k: &str| after.get(k).copied().unwrap_or(0) - before.get(k).copied().unwrap_or(0);
        assert_eq!(delta("hedge.launched"), 0);
    }

    #[test]
    fn hedged_read_buddy_wins_when_primary_stalls() {
        let run = Arc::new(|node: usize| -> ConnectorResult<usize> {
            if node == 0 {
                std::thread::sleep(Duration::from_millis(120));
            }
            Ok(node)
        });
        let started = Instant::now();
        let got = hedged_read(
            "t.stall",
            Duration::from_millis(10),
            0,
            1,
            obs::TraceCtx::NONE,
            run,
        )
        .unwrap();
        assert_eq!(got, 1, "buddy wins");
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "did not wait for the stalled primary"
        );
        // Let the abandoned primary drain so its send outlives no one.
        std::thread::sleep(Duration::from_millis(130));
    }

    #[test]
    fn hedged_read_surfaces_error_when_both_fail() {
        let run = Arc::new(|node: usize| -> ConnectorResult<usize> {
            Err(ConnectorError::Engine(format!("node {node} boom")))
        });
        let err = hedged_read(
            "t.both",
            Duration::from_millis(5),
            0,
            1,
            obs::TraceCtx::NONE,
            run,
        )
        .unwrap_err();
        assert!(matches!(err, ConnectorError::Engine(_)));
    }

    #[test]
    fn hedged_read_falls_through_to_buddy_after_primary_error() {
        // Primary errors *slowly* (after the hedge delay), buddy is good.
        let run = Arc::new(|node: usize| -> ConnectorResult<usize> {
            if node == 0 {
                std::thread::sleep(Duration::from_millis(15));
                Err(ConnectorError::Engine("slow failure".into()))
            } else {
                Ok(node)
            }
        });
        let got = hedged_read(
            "t.slow_err",
            Duration::from_millis(5),
            0,
            1,
            obs::TraceCtx::NONE,
            run,
        )
        .unwrap();
        assert_eq!(got, 1);
    }
}
