//! The unified ingest surface: one [`SaveRequest`] for every way rows
//! reach the database.
//!
//! Historically the connector grew three parallel save entry points —
//! `s2v::save_to_db` (direct COPY), `two_stage::save_via_dfs` (DFS
//! landing zone), and `connector::save` (the stringly dispatch behind
//! `df.write()`) — each with its own signature and defaults. They are
//! now thin deprecated shims over this one surface:
//!
//! ```ignore
//! let report = SaveRequest::new(&ctx, &cluster, &df, &opts)
//!     .mode(SaveMode::Append)
//!     .submit()?;
//! ```
//!
//! Dispatch is typed, not stringly: [`ConnectorOptions::ingest`] picks
//! bulk vs. streaming micro-batches ([`IngestMode`]), and
//! [`ConnectorOptions::method`] picks the physical bulk path (direct
//! COPY vs. two-stage DFS). Every combination returns the same
//! [`SaveReport`].

use std::sync::Arc;

use dfslite::DfsClusterSim;
use mppdb::Cluster;
use sparklet::{DataFrame, SaveMode, SparkContext};

use crate::error::{ConnectorError, ConnectorResult};
use crate::health::{self, Deadline};
use crate::options::{ConnectorOptions, IngestMode, WriteMethod};
use crate::retry::RetryConn;
use crate::two_stage::TwoStageConfig;
use crate::{s2v, stream, two_stage, SaveReport};

/// One save, fully described: the engine context, the target cluster,
/// the rows, the parsed options, and the save mode. Built with
/// [`SaveRequest::new`], submitted with [`SaveRequest::submit`].
#[must_use = "a SaveRequest does nothing until submit() is called"]
pub struct SaveRequest<'a> {
    ctx: &'a SparkContext,
    cluster: &'a Arc<Cluster>,
    dfs: Option<&'a Arc<DfsClusterSim>>,
    df: &'a DataFrame,
    opts: &'a ConnectorOptions,
    mode: SaveMode,
}

impl<'a> SaveRequest<'a> {
    /// A save request with the default [`SaveMode::ErrorIfExists`] and
    /// no DFS handle (sufficient for `method=copy`).
    pub fn new(
        ctx: &'a SparkContext,
        cluster: &'a Arc<Cluster>,
        df: &'a DataFrame,
        opts: &'a ConnectorOptions,
    ) -> SaveRequest<'a> {
        SaveRequest {
            ctx,
            cluster,
            dfs: None,
            df,
            opts,
            mode: SaveMode::default(),
        }
    }

    /// Attach the DFS handle `method=dfs` stages through.
    pub fn with_dfs(mut self, dfs: &'a Arc<DfsClusterSim>) -> SaveRequest<'a> {
        self.dfs = Some(dfs);
        self
    }

    /// Attach an optional DFS handle (what `DefaultSource` carries).
    pub fn with_dfs_opt(mut self, dfs: Option<&'a Arc<DfsClusterSim>>) -> SaveRequest<'a> {
        self.dfs = dfs;
        self
    }

    /// Set the save mode (default: [`SaveMode::ErrorIfExists`]).
    pub fn mode(mut self, mode: SaveMode) -> SaveRequest<'a> {
        self.mode = mode;
        self
    }

    /// Run the save, dispatching on [`ConnectorOptions::ingest`] and
    /// [`ConnectorOptions::method`].
    pub fn submit(self) -> ConnectorResult<SaveReport> {
        match self.opts.ingest {
            IngestMode::Bulk => bulk(
                self.ctx,
                self.cluster,
                self.dfs,
                self.df,
                self.opts,
                self.mode,
            ),
            IngestMode::Stream { batch_rows, .. } => {
                if self.opts.method == WriteMethod::Dfs {
                    return Err(ConnectorError::Usage(
                        "streaming ingest requires method=copy: each micro-batch \
                         is an exactly-once COPY job, which the two-stage DFS \
                         path cannot provide"
                            .into(),
                    ));
                }
                stream::save_stream(
                    self.ctx,
                    self.cluster,
                    self.df,
                    self.opts,
                    self.mode,
                    batch_rows,
                )
            }
        }
    }
}

/// The bulk path: one shot through the physical method `opts.method`
/// selects — the direct S2V exactly-once protocol (`method=copy`) or
/// the two-stage DFS landing zone (`method=dfs`).
pub(crate) fn bulk(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    dfs: Option<&Arc<DfsClusterSim>>,
    df: &DataFrame,
    opts: &ConnectorOptions,
    mode: SaveMode,
) -> ConnectorResult<SaveReport> {
    match opts.method {
        WriteMethod::Copy => Ok(s2v::run(ctx, cluster, df, opts, mode)?.into()),
        WriteMethod::Dfs => {
            let dfs = dfs.ok_or_else(|| {
                ConnectorError::Usage(
                    "method=dfs needs a DFS: register the source with \
                     DefaultSource::register_with_dfs (or pass a DFS handle \
                     via SaveRequest::with_dfs)"
                        .into(),
                )
            })?;
            let exists = cluster.has_table(&opts.table);
            match mode {
                SaveMode::ErrorIfExists if exists => {
                    return Err(ConnectorError::Usage(format!(
                        "table {} already exists (mode=ErrorIfExists)",
                        opts.table
                    )))
                }
                SaveMode::Ignore if exists => {
                    return Ok(SaveReport::empty(WriteMethod::Dfs));
                }
                SaveMode::Overwrite if exists => {
                    // The DFS stage-2 COPY appends; overwrite = clear first.
                    let host = opts.host_on(cluster)?;
                    let mut conn = RetryConn::new(Arc::clone(cluster), host, opts.retry.clone())
                        .with_deadline(opts.deadline.map(Deadline::within))
                        .with_health(health::tracker_for(cluster));
                    if !opts.failover {
                        conn = conn.pinned();
                    }
                    conn.run("dfs.truncate", |session| {
                        session
                            .execute(&format!("DELETE FROM {}", opts.table))
                            .map(|_| ())
                            .map_err(|e| ConnectorError::db("dfs.truncate", e))
                    })?;
                }
                _ => {}
            }
            let staging = opts
                .staging_path
                .clone()
                .unwrap_or_else(|| format!("/staging/{}", opts.table));
            let mut config = TwoStageConfig::new(staging);
            config.partitions = opts.num_partitions;
            config.host = opts.host_on(cluster)?;
            let report = two_stage::run_via_dfs(ctx, cluster, dfs, df, &opts.table, &config)?;
            Ok(SaveReport {
                method: WriteMethod::Dfs,
                rows_loaded: report.rows,
                part_files: report.part_files,
                staged_bytes: report.staged_bytes,
                ..SaveReport::empty(WriteMethod::Dfs)
            })
        }
    }
}
