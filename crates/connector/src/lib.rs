//! The database connector for the compute engine — the paper's primary
//! contribution.
//!
//! Three components, matching Fig. 1 of the paper:
//!
//! * **V2S** ([`v2s`]) — parallel, locality-aware load of database
//!   tables (and views) into DataFrames. Each task formulates a hash-
//!   range query for data *local* to the node it connects to,
//!   eliminating internal shuffle; all tasks read at one pinned epoch,
//!   so the load is a consistent snapshot with exactly-once semantics
//!   regardless of task retries (Sec. 3.1).
//! * **S2V** ([`s2v`]) — parallel save of DataFrames into the database
//!   with exactly-once semantics. Stateless tasks coordinate through
//!   durable protocol tables *in the database itself* (staging, task
//!   status, last committer, final status), surviving task failures,
//!   restarts, speculative duplicates, and total engine failure
//!   (Sec. 3.2).
//! * **MD** ([`md`]) — PMML model deployment: store documents in the
//!   database's internal DFS with a metadata table, and score them from
//!   SQL via the generic `PMMLPredict` UDx (Sec. 3.3).
//!
//! Every database touchpoint runs under a typed error surface
//! ([`error::ConnectorError`]) and a retry/failover policy
//! ([`retry::RetryPolicy`]); [`fault-injection`] on the database side
//! drives the chaos suite that exercises them. Grey failures — nodes
//! alive but slow — are handled by the [`health`] layer: per-node
//! health scores and circuit breakers steer placement away from sick
//! nodes, idempotent reads hedge onto buddy nodes past the observed
//! P99, and a [`health::Deadline`] budget set at `save()`/`load()`
//! flows through every retry and phase.
//!
//! The connector plugs into the engine's External Data Source API under
//! the format name [`DEFAULT_SOURCE`], so the user-facing surface is
//! exactly the paper's Table 1:
//!
//! ```text
//! df.read.format(DEFAULT_SOURCE).options(opts).load()
//! df.write.format(DEFAULT_SOURCE).options(opts).mode(mode).save()
//! ```
//!
//! Both write paths — the direct S2V protocol and the two-stage DFS
//! load — hang off one entry point, [`save`], selected by the
//! `method=copy|dfs` option; both return the same [`SaveReport`].
//!
//! [`fault-injection`]: mppdb::fault

pub mod error;
pub mod health;
pub mod md;
pub mod options;
pub mod retry;
pub mod s2v;
pub mod two_stage;
pub mod v2s;

use std::sync::Arc;

use dfslite::DfsClusterSim;
use mppdb::Cluster;
use sparklet::{DataFrame, DataSourceProvider, Options, SaveMode, ScanRelation, SparkContext};

pub use error::{ConnectorError, ConnectorResult};
pub use health::{BreakerState, Deadline, HealthConfig, HealthTracker};
pub use md::ModelDeployment;
pub use options::{ConnectorOptions, ConnectorOptionsBuilder, WriteMethod};
pub use retry::{with_retry, with_retry_deadline, RetryConn, RetryPolicy};
pub use s2v::{save_to_db, S2vReport};
pub use two_stage::{load_via_dfs, save_via_dfs, TwoStageConfig, TwoStageReport};
pub use v2s::DbRelation;

/// The format name the connector registers under — the paper's
/// implementation-specific DefaultSource string.
pub const DEFAULT_SOURCE: &str = "com.vertica.spark.datasource.DefaultSource";

/// Outcome of a save through either write path.
#[derive(Debug, Clone, PartialEq)]
pub struct SaveReport {
    pub method: WriteMethod,
    /// S2V job name (empty for the DFS path, which has no protocol job).
    pub job_name: String,
    pub rows_loaded: u64,
    pub rows_rejected: u64,
    /// S2V: the task that won the final-commit race.
    pub committer_task: Option<u64>,
    /// S2V: `(task, first rejection reason)` samples.
    pub rejected_samples: Vec<(u64, String)>,
    /// S2V: the scheduler job id of the save.
    pub engine_job_id: u64,
    /// S2V: cumulative microseconds per Fig. 5 phase.
    pub phase_us: [u64; 5],
    /// DFS path: number of staged part-files.
    pub part_files: usize,
    /// DFS path: bytes that crossed the landing zone.
    pub staged_bytes: u64,
    /// The save's span tree in the global collector (S2V path only;
    /// [`obs::TraceId`] 0 when untraced).
    pub trace: obs::TraceId,
}

impl SaveReport {
    /// Render the save's span tree and critical path (empty when
    /// tracing was disabled, the trace was evicted, or the save went
    /// through the untraced DFS path).
    pub fn profile(&self) -> String {
        obs::trace::render(&obs::global().trace_spans(self.trace))
    }
}

impl From<S2vReport> for SaveReport {
    fn from(r: S2vReport) -> SaveReport {
        SaveReport {
            method: WriteMethod::Copy,
            job_name: r.job_name,
            rows_loaded: r.rows_loaded,
            rows_rejected: r.rows_rejected,
            committer_task: Some(r.committer_task),
            rejected_samples: r.rejected_samples,
            engine_job_id: r.engine_job_id,
            phase_us: r.phase_us,
            part_files: 0,
            staged_bytes: 0,
            trace: r.trace,
        }
    }
}

/// Save a DataFrame through the write path `opts.method` selects:
/// the direct S2V exactly-once protocol (`method=copy`, the default) or
/// the two-stage DFS landing zone (`method=dfs`, which needs a DFS
/// handle). The single entry point behind `df.write().save()`.
pub fn save(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    dfs: Option<&Arc<DfsClusterSim>>,
    df: &DataFrame,
    opts: &ConnectorOptions,
    mode: SaveMode,
) -> ConnectorResult<SaveReport> {
    match opts.method {
        WriteMethod::Copy => Ok(save_to_db(ctx, cluster, df, opts, mode)?.into()),
        WriteMethod::Dfs => {
            let dfs = dfs.ok_or_else(|| {
                ConnectorError::Usage(
                    "method=dfs needs a DFS: register the source with \
                     DefaultSource::register_with_dfs (or pass a DFS handle to save)"
                        .into(),
                )
            })?;
            let exists = cluster.has_table(&opts.table);
            match mode {
                SaveMode::ErrorIfExists if exists => {
                    return Err(ConnectorError::Usage(format!(
                        "table {} already exists (mode=ErrorIfExists)",
                        opts.table
                    )))
                }
                SaveMode::Ignore if exists => {
                    return Ok(SaveReport {
                        method: WriteMethod::Dfs,
                        job_name: String::new(),
                        rows_loaded: 0,
                        rows_rejected: 0,
                        committer_task: None,
                        rejected_samples: Vec::new(),
                        engine_job_id: 0,
                        phase_us: [0; 5],
                        part_files: 0,
                        staged_bytes: 0,
                        trace: obs::TraceId(0),
                    })
                }
                SaveMode::Overwrite if exists => {
                    // The DFS stage-2 COPY appends; overwrite = clear first.
                    let host = opts.host_on(cluster)?;
                    let mut conn = RetryConn::new(Arc::clone(cluster), host, opts.retry.clone())
                        .with_deadline(opts.deadline.map(Deadline::within))
                        .with_health(health::tracker_for(cluster));
                    if !opts.failover {
                        conn = conn.pinned();
                    }
                    conn.run("dfs.truncate", |session| {
                        session
                            .execute(&format!("DELETE FROM {}", opts.table))
                            .map(|_| ())
                            .map_err(|e| ConnectorError::db("dfs.truncate", e))
                    })?;
                }
                _ => {}
            }
            let staging = opts
                .staging_path
                .clone()
                .unwrap_or_else(|| format!("/staging/{}", opts.table));
            let mut config = TwoStageConfig::new(staging);
            config.partitions = opts.num_partitions;
            config.host = opts.host_on(cluster)?;
            let report = save_via_dfs(ctx, cluster, dfs, df, &opts.table, &config)?;
            Ok(SaveReport {
                method: WriteMethod::Dfs,
                job_name: String::new(),
                rows_loaded: report.rows,
                rows_rejected: 0,
                committer_task: None,
                rejected_samples: Vec::new(),
                engine_job_id: 0,
                phase_us: [0; 5],
                part_files: report.part_files,
                staged_bytes: report.staged_bytes,
                trace: obs::TraceId(0),
            })
        }
    }
}

/// The connector's `DataSourceProvider`: one instance per database
/// cluster it connects to.
pub struct DefaultSource {
    cluster: Arc<Cluster>,
    dfs: Option<Arc<DfsClusterSim>>,
}

impl DefaultSource {
    pub fn new(cluster: Arc<Cluster>) -> Arc<DefaultSource> {
        Arc::new(DefaultSource { cluster, dfs: None })
    }

    /// A source that can also run `method=dfs` two-stage saves.
    pub fn with_dfs(cluster: Arc<Cluster>, dfs: Arc<DfsClusterSim>) -> Arc<DefaultSource> {
        Arc::new(DefaultSource {
            cluster,
            dfs: Some(dfs),
        })
    }

    /// Register the connector with an engine context under
    /// [`DEFAULT_SOURCE`].
    pub fn register(ctx: &SparkContext, cluster: Arc<Cluster>) {
        ctx.register_format(DEFAULT_SOURCE, DefaultSource::new(cluster));
    }

    /// Register with a DFS handle so `method=dfs` works through the
    /// `df.write()` surface too.
    pub fn register_with_dfs(ctx: &SparkContext, cluster: Arc<Cluster>, dfs: Arc<DfsClusterSim>) {
        ctx.register_format(DEFAULT_SOURCE, DefaultSource::with_dfs(cluster, dfs));
    }
}

impl DataSourceProvider for DefaultSource {
    fn create_relation(
        &self,
        _ctx: &SparkContext,
        options: &Options,
    ) -> sparklet::SparkResult<Arc<dyn ScanRelation>> {
        let opts = ConnectorOptions::parse(options)?;
        let relation = DbRelation::open(Arc::clone(&self.cluster), &opts)?;
        Ok(Arc::new(relation))
    }

    fn save(
        &self,
        ctx: &SparkContext,
        options: &Options,
        df: &DataFrame,
        mode: SaveMode,
    ) -> sparklet::SparkResult<()> {
        let opts = ConnectorOptions::parse(options)?;
        crate::save(ctx, &self.cluster, self.dfs.as_ref(), df, &opts, mode)
            .map(|_report| ())
            .map_err(sparklet::SparkError::from)
    }
}
