//! The database connector for the compute engine — the paper's primary
//! contribution.
//!
//! Three components, matching Fig. 1 of the paper:
//!
//! * **V2S** ([`v2s`]) — parallel, locality-aware load of database
//!   tables (and views) into DataFrames. Each task formulates a hash-
//!   range query for data *local* to the node it connects to,
//!   eliminating internal shuffle; all tasks read at one pinned epoch,
//!   so the load is a consistent snapshot with exactly-once semantics
//!   regardless of task retries (Sec. 3.1).
//! * **S2V** ([`s2v`]) — parallel save of DataFrames into the database
//!   with exactly-once semantics. Stateless tasks coordinate through
//!   durable protocol tables *in the database itself* (staging, task
//!   status, last committer, final status), surviving task failures,
//!   restarts, speculative duplicates, and total engine failure
//!   (Sec. 3.2).
//! * **MD** ([`md`]) — PMML model deployment: store documents in the
//!   database's internal DFS with a metadata table, and score them from
//!   SQL via the generic `PMMLPredict` UDx (Sec. 3.3).
//!
//! The connector plugs into the engine's External Data Source API under
//! the format name [`DEFAULT_SOURCE`], so the user-facing surface is
//! exactly the paper's Table 1:
//!
//! ```text
//! df.read.format(DEFAULT_SOURCE).options(opts).load()
//! df.write.format(DEFAULT_SOURCE).options(opts).mode(mode).save()
//! ```

pub mod md;
pub mod options;
pub mod s2v;
pub mod two_stage;
pub mod v2s;

use std::sync::Arc;

use mppdb::Cluster;
use sparklet::{DataFrame, DataSourceProvider, Options, SaveMode, ScanRelation, SparkContext};

pub use md::ModelDeployment;
pub use options::ConnectorOptions;
pub use s2v::{save_to_db, S2vReport};
pub use two_stage::{load_via_dfs, save_via_dfs, TwoStageConfig, TwoStageReport};
pub use v2s::DbRelation;

/// The format name the connector registers under — the paper's
/// implementation-specific DefaultSource string.
pub const DEFAULT_SOURCE: &str = "com.vertica.spark.datasource.DefaultSource";

/// The connector's `DataSourceProvider`: one instance per database
/// cluster it connects to.
pub struct DefaultSource {
    cluster: Arc<Cluster>,
}

impl DefaultSource {
    pub fn new(cluster: Arc<Cluster>) -> Arc<DefaultSource> {
        Arc::new(DefaultSource { cluster })
    }

    /// Register the connector with an engine context under
    /// [`DEFAULT_SOURCE`].
    pub fn register(ctx: &SparkContext, cluster: Arc<Cluster>) {
        ctx.register_format(DEFAULT_SOURCE, DefaultSource::new(cluster));
    }
}

impl DataSourceProvider for DefaultSource {
    fn create_relation(
        &self,
        _ctx: &SparkContext,
        options: &Options,
    ) -> sparklet::SparkResult<Arc<dyn ScanRelation>> {
        let opts = ConnectorOptions::parse(options)?;
        let relation = DbRelation::open(Arc::clone(&self.cluster), &opts)
            .map_err(|e| sparklet::SparkError::DataSource(e.to_string()))?;
        Ok(Arc::new(relation))
    }

    fn save(
        &self,
        ctx: &SparkContext,
        options: &Options,
        df: &DataFrame,
        mode: SaveMode,
    ) -> sparklet::SparkResult<()> {
        let opts = ConnectorOptions::parse(options)?;
        save_to_db(ctx, &self.cluster, df, &opts, mode).map(|_report| ())
    }
}
