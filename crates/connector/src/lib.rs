//! The database connector for the compute engine — the paper's primary
//! contribution.
//!
//! Three components, matching Fig. 1 of the paper:
//!
//! * **V2S** ([`v2s`]) — parallel, locality-aware load of database
//!   tables (and views) into DataFrames. Each task formulates a hash-
//!   range query for data *local* to the node it connects to,
//!   eliminating internal shuffle; all tasks read at one pinned epoch,
//!   so the load is a consistent snapshot with exactly-once semantics
//!   regardless of task retries (Sec. 3.1).
//! * **S2V** ([`s2v`]) — parallel save of DataFrames into the database
//!   with exactly-once semantics. Stateless tasks coordinate through
//!   durable protocol tables *in the database itself* (staging, task
//!   status, last committer, final status), surviving task failures,
//!   restarts, speculative duplicates, and total engine failure
//!   (Sec. 3.2).
//! * **MD** ([`md`]) — PMML model deployment: store documents in the
//!   database's internal DFS with a metadata table, and score them from
//!   SQL via the generic `PMMLPredict` UDx (Sec. 3.3).
//!
//! Every database touchpoint runs under a typed error surface
//! ([`error::ConnectorError`]) and a retry/failover policy
//! ([`retry::RetryPolicy`]); [`fault-injection`] on the database side
//! drives the chaos suite that exercises them. Grey failures — nodes
//! alive but slow — are handled by the [`health`] layer: per-node
//! health scores and circuit breakers steer placement away from sick
//! nodes, idempotent reads hedge onto buddy nodes past the observed
//! P99, and a [`health::Deadline`] budget set at `save()`/`load()`
//! flows through every retry and phase.
//!
//! The connector plugs into the engine's External Data Source API under
//! the format name [`DEFAULT_SOURCE`], so the user-facing surface is
//! exactly the paper's Table 1:
//!
//! ```text
//! df.read.format(DEFAULT_SOURCE).options(opts).load()
//! df.write.format(DEFAULT_SOURCE).options(opts).mode(mode).save()
//! ```
//!
//! Every write path — the direct S2V protocol, the two-stage DFS load,
//! and streaming micro-batch ingest — hangs off one typed entry point,
//! [`SaveRequest`], dispatched by `ConnectorOptions::{ingest, method}`;
//! all of them return the same [`SaveReport`]. The historical
//! free-function entry points ([`save`], [`s2v::save_to_db`],
//! [`two_stage::save_via_dfs`]) remain as deprecated shims.
//!
//! [`fault-injection`]: mppdb::fault

pub mod error;
pub mod health;
pub mod ingest;
pub mod md;
pub mod options;
pub mod retry;
pub mod s2v;
pub mod stream;
pub mod two_stage;
pub mod v2s;

use std::sync::Arc;

use dfslite::DfsClusterSim;
use mppdb::Cluster;
use sparklet::{DataFrame, DataSourceProvider, Options, SaveMode, ScanRelation, SparkContext};

pub use error::{ConnectorError, ConnectorResult};
pub use health::{BreakerState, Deadline, HealthConfig, HealthTracker};
pub use ingest::SaveRequest;
pub use md::ModelDeployment;
pub use options::{ConnectorOptions, ConnectorOptionsBuilder, IngestMode, WriteMethod};
pub use retry::{with_retry, with_retry_deadline, RetryConn, RetryPolicy};
#[allow(deprecated)] // the shim stays importable from the crate root
pub use s2v::save_to_db;
pub use s2v::S2vReport;
pub use stream::StreamWriter;
#[allow(deprecated)] // the shim stays importable from the crate root
pub use two_stage::save_via_dfs;
pub use two_stage::{load_via_dfs, TwoStageConfig, TwoStageReport};
pub use v2s::DbRelation;

/// The format name the connector registers under — the paper's
/// implementation-specific DefaultSource string.
pub const DEFAULT_SOURCE: &str = "com.vertica.spark.datasource.DefaultSource";

/// Outcome of a save through either write path.
#[derive(Debug, Clone, PartialEq)]
pub struct SaveReport {
    pub method: WriteMethod,
    /// S2V job name (empty for the DFS path, which has no protocol job).
    pub job_name: String,
    pub rows_loaded: u64,
    pub rows_rejected: u64,
    /// S2V: the task that won the final-commit race.
    pub committer_task: Option<u64>,
    /// S2V: `(task, first rejection reason)` samples.
    pub rejected_samples: Vec<(u64, String)>,
    /// S2V: the scheduler job id of the save.
    pub engine_job_id: u64,
    /// S2V: cumulative microseconds per Fig. 5 phase.
    pub phase_us: [u64; 5],
    /// DFS path: number of staged part-files.
    pub part_files: usize,
    /// DFS path: bytes that crossed the landing zone.
    pub staged_bytes: u64,
    /// Streaming path: micro-batches committed (0 for bulk saves).
    pub batches: u64,
    /// The save's span tree in the global collector (S2V path only;
    /// [`obs::TraceId`] 0 when untraced).
    pub trace: obs::TraceId,
}

impl SaveReport {
    /// Render the save's span tree and critical path (empty when
    /// tracing was disabled, the trace was evicted, or the save went
    /// through the untraced DFS path).
    pub fn profile(&self) -> String {
        obs::trace::render(&obs::global().trace_spans(self.trace))
    }

    /// An all-zero report for no-op saves (e.g. `SaveMode::Ignore` on
    /// an existing table).
    pub fn empty(method: WriteMethod) -> SaveReport {
        SaveReport {
            method,
            job_name: String::new(),
            rows_loaded: 0,
            rows_rejected: 0,
            committer_task: None,
            rejected_samples: Vec::new(),
            engine_job_id: 0,
            phase_us: [0; 5],
            part_files: 0,
            staged_bytes: 0,
            batches: 0,
            trace: obs::TraceId(0),
        }
    }
}

impl From<S2vReport> for SaveReport {
    fn from(r: S2vReport) -> SaveReport {
        SaveReport {
            method: WriteMethod::Copy,
            job_name: r.job_name,
            rows_loaded: r.rows_loaded,
            rows_rejected: r.rows_rejected,
            committer_task: Some(r.committer_task),
            rejected_samples: r.rejected_samples,
            engine_job_id: r.engine_job_id,
            phase_us: r.phase_us,
            part_files: 0,
            staged_bytes: 0,
            batches: 0,
            trace: r.trace,
        }
    }
}

/// Save a DataFrame through the write path `opts.method` selects — the
/// old positional entry point, superseded by the typed [`SaveRequest`]
/// builder (which also dispatches streaming ingest).
#[deprecated(
    since = "0.2.0",
    note = "use connector::SaveRequest::new(ctx, cluster, df, opts)\
            .with_dfs_opt(dfs).mode(mode).submit()"
)]
pub fn save(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    dfs: Option<&Arc<DfsClusterSim>>,
    df: &DataFrame,
    opts: &ConnectorOptions,
    mode: SaveMode,
) -> ConnectorResult<SaveReport> {
    SaveRequest::new(ctx, cluster, df, opts)
        .with_dfs_opt(dfs)
        .mode(mode)
        .submit()
}

/// The connector's `DataSourceProvider`: one instance per database
/// cluster it connects to.
pub struct DefaultSource {
    cluster: Arc<Cluster>,
    dfs: Option<Arc<DfsClusterSim>>,
}

impl DefaultSource {
    pub fn new(cluster: Arc<Cluster>) -> Arc<DefaultSource> {
        Arc::new(DefaultSource { cluster, dfs: None })
    }

    /// A source that can also run `method=dfs` two-stage saves.
    pub fn with_dfs(cluster: Arc<Cluster>, dfs: Arc<DfsClusterSim>) -> Arc<DefaultSource> {
        Arc::new(DefaultSource {
            cluster,
            dfs: Some(dfs),
        })
    }

    /// Register the connector with an engine context under
    /// [`DEFAULT_SOURCE`].
    pub fn register(ctx: &SparkContext, cluster: Arc<Cluster>) {
        ctx.register_format(DEFAULT_SOURCE, DefaultSource::new(cluster));
    }

    /// Register with a DFS handle so `method=dfs` works through the
    /// `df.write()` surface too.
    pub fn register_with_dfs(ctx: &SparkContext, cluster: Arc<Cluster>, dfs: Arc<DfsClusterSim>) {
        ctx.register_format(DEFAULT_SOURCE, DefaultSource::with_dfs(cluster, dfs));
    }
}

impl DataSourceProvider for DefaultSource {
    fn create_relation(
        &self,
        _ctx: &SparkContext,
        options: &Options,
    ) -> sparklet::SparkResult<Arc<dyn ScanRelation>> {
        let opts = ConnectorOptions::parse(options)?;
        let relation = DbRelation::open(Arc::clone(&self.cluster), &opts)?;
        Ok(Arc::new(relation))
    }

    fn save(
        &self,
        ctx: &SparkContext,
        options: &Options,
        df: &DataFrame,
        mode: SaveMode,
    ) -> sparklet::SparkResult<()> {
        let opts = ConnectorOptions::parse(options)?;
        SaveRequest::new(ctx, &self.cluster, df, &opts)
            .with_dfs_opt(self.dfs.as_ref())
            .mode(mode)
            .submit()
            .map(|_report| ())
            .map_err(sparklet::SparkError::from)
    }
}
