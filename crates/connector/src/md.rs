//! MD: model deployment from the compute engine into the database
//! (paper Sec. 3.3).
//!
//! PMML documents are stored in the database's internal DFS (a generic
//! table schema cannot fit every model family), with their metadata —
//! name, type, size, feature count — in a catalog table. The
//! [`PmmlPredictUdf`] is the paper's generic evaluator: input a numeric
//! vector, output a number, selected by `USING PARAMETERS
//! model_name='...'`, so scoring runs inside the database:
//!
//! ```sql
//! SELECT PMMLPredict(sepal_length, sepal_width, petal_length,
//!                    petal_width USING PARAMETERS model_name='regression')
//! FROM IrisTable
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use common::{Row, Value};
use mppdb::catalog::{Segmentation, TableDef};
use mppdb::udf::{ScalarUdf, UdfParams};
use mppdb::{Cluster, DbError, DbResult, QuerySpec};
use parking_lot::Mutex;
use pmml::{Evaluator, PmmlDocument};

/// Catalog table holding model metadata.
pub const MODEL_TABLE: &str = "pmml_models";
/// DFS directory holding model documents.
pub const MODEL_DFS_PREFIX: &str = "/pmml/";

/// Metadata of a deployed model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    pub name: String,
    pub model_type: String,
    pub size_bytes: u64,
    pub num_features: u64,
}

/// Handle for deploying and reading models on a cluster.
pub struct ModelDeployment {
    cluster: Arc<Cluster>,
}

impl ModelDeployment {
    /// Attach to a cluster: ensures the metadata table exists and the
    /// `PMMLPredict` UDx is registered.
    pub fn new(cluster: Arc<Cluster>) -> DbResult<ModelDeployment> {
        if !cluster.has_table(MODEL_TABLE) {
            let schema = common::Schema::new(vec![
                common::Field::not_null("name", common::DataType::Varchar),
                common::Field::new("model_type", common::DataType::Varchar),
                common::Field::new("size_bytes", common::DataType::Int64),
                common::Field::new("num_features", common::DataType::Int64),
            ]);
            cluster.create_table(TableDef::new(
                MODEL_TABLE,
                schema,
                Segmentation::Unsegmented,
            )?)?;
        }
        cluster.register_udf(Arc::new(PmmlPredictUdf::new(&cluster)));
        Ok(ModelDeployment { cluster })
    }

    fn dfs_path(name: &str) -> String {
        format!("{MODEL_DFS_PREFIX}{name}.xml")
    }

    /// `DeployPMMLModel()`: store the document in the DFS and its
    /// metadata in the catalog table.
    pub fn deploy_pmml_model(&self, doc: &PmmlDocument, overwrite: bool) -> DbResult<()> {
        let name = doc.model_name.clone();
        let xml = doc.to_xml();
        let path = Self::dfs_path(&name);
        if self.cluster.dfs().exists(&path) && !overwrite {
            return Err(DbError::Dfs(format!("model {name} already deployed")));
        }
        // Validate before publishing: an undeployable document must not
        // land in the DFS.
        Evaluator::from_document(doc).map_err(DbError::Data)?;
        let num_features = doc.model.input_fields().len() as i64;
        self.cluster
            .dfs()
            .store(&path, xml.clone().into_bytes(), overwrite)?;
        let mut session = self.cluster.connect(0)?;
        session.execute(&format!("DELETE FROM {MODEL_TABLE} WHERE name = '{name}'"))?;
        session.insert(
            MODEL_TABLE,
            vec![Row::new(vec![
                Value::Varchar(name.clone()),
                Value::Varchar(doc.model.model_type().to_string()),
                Value::Int64(xml.len() as i64),
                Value::Int64(num_features),
            ])],
        )?;
        obs::global().emit(obs::EventKind::MdScore, |e| {
            e.bytes = xml.len() as u64;
            e.detail = format!(
                "deployed model {name} ({}, {num_features} features)",
                doc.model.model_type()
            );
        });
        obs::global().add("md.models_deployed", 1);
        Ok(())
    }

    /// `GetPMML()`: read a deployed document back from the DFS.
    pub fn get_pmml(&self, name: &str) -> DbResult<PmmlDocument> {
        let bytes = self.cluster.dfs().read(&Self::dfs_path(name))?;
        let xml = std::str::from_utf8(&bytes)
            .map_err(|e| DbError::Dfs(format!("model {name} is not utf8: {e}")))?;
        PmmlDocument::from_xml(xml).map_err(DbError::Data)
    }

    /// Remove a model and its metadata.
    pub fn drop_model(&self, name: &str) -> DbResult<()> {
        self.cluster.dfs().delete(&Self::dfs_path(name))?;
        let mut session = self.cluster.connect(0)?;
        session.execute(&format!("DELETE FROM {MODEL_TABLE} WHERE name = '{name}'"))?;
        Ok(())
    }

    /// List deployed models from the metadata table.
    pub fn list_models(&self) -> DbResult<Vec<ModelInfo>> {
        let mut session = self.cluster.connect(0)?;
        let result = session.query(&QuerySpec::scan(MODEL_TABLE))?;
        let mut models: Vec<ModelInfo> = result
            .rows
            .iter()
            .map(|r| {
                Ok(ModelInfo {
                    name: r.get(0).as_str().map_err(DbError::Data)?.to_string(),
                    model_type: r.get(1).as_str().map_err(DbError::Data)?.to_string(),
                    size_bytes: r.get(2).as_i64().map_err(DbError::Data)? as u64,
                    num_features: r.get(3).as_i64().map_err(DbError::Data)? as u64,
                })
            })
            .collect::<DbResult<_>>()?;
        models.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(models)
    }
}

/// The generic scoring UDx.
///
/// Holds a weak cluster reference (it lives *in* the cluster's UDF
/// registry) and a per-model evaluator cache so the PMML document is
/// parsed once, not per row.
pub struct PmmlPredictUdf {
    cluster: Weak<Cluster>,
    cache: Mutex<HashMap<String, Arc<Evaluator>>>,
}

impl PmmlPredictUdf {
    pub fn new(cluster: &Arc<Cluster>) -> PmmlPredictUdf {
        PmmlPredictUdf {
            cluster: Arc::downgrade(cluster),
            cache: Mutex::new(HashMap::new()),
        }
    }

    fn evaluator(&self, name: &str) -> DbResult<Arc<Evaluator>> {
        if let Some(e) = self.cache.lock().get(name) {
            return Ok(Arc::clone(e));
        }
        let cluster = self
            .cluster
            .upgrade()
            .ok_or_else(|| DbError::Udf("database cluster is gone".into()))?;
        let bytes = cluster
            .dfs()
            .read(&format!("{MODEL_DFS_PREFIX}{name}.xml"))
            .map_err(|_| DbError::Udf(format!("no deployed model named {name:?}")))?;
        let xml = std::str::from_utf8(&bytes)
            .map_err(|e| DbError::Udf(format!("model {name} is not utf8: {e}")))?;
        let evaluator = Arc::new(
            Evaluator::from_xml(xml)
                .map_err(|e| DbError::Udf(format!("model {name} failed to parse: {e}")))?,
        );
        // One event per cache fill, not per row — the per-row scoring
        // throughput lives in the md.predictions counter.
        obs::global().emit(obs::EventKind::MdScore, |e| {
            e.bytes = bytes.len() as u64;
            e.detail = format!("model {name} parsed into the scoring cache");
        });
        self.cache
            .lock()
            .insert(name.to_string(), Arc::clone(&evaluator));
        Ok(evaluator)
    }
}

impl ScalarUdf for PmmlPredictUdf {
    fn name(&self) -> &str {
        "PMMLPredict"
    }

    fn eval(&self, args: &[Value], params: &UdfParams) -> DbResult<Value> {
        let model_name = params.require_str("model_name")?;
        let evaluator = self.evaluator(model_name)?;
        if args.iter().any(Value::is_null) {
            return Ok(Value::Null);
        }
        let features: Vec<f64> = args
            .iter()
            .map(|v| v.as_f64().map_err(|e| DbError::Udf(e.to_string())))
            .collect::<DbResult<_>>()?;
        let score = evaluator
            .predict(&features)
            .map_err(|e| DbError::Udf(e.to_string()))?;
        obs::global().add("md.predictions", 1);
        Ok(Value::Float64(score))
    }
}
