//! Connector options: the `key=value` pairs of the paper's Table 1.

use sparklet::{Options, SparkError, SparkResult};

/// Parsed connector options.
///
/// The real connector takes `host`, `user`, `password`, `db`, `table`,
/// `numPartitions`, and a rejected-rows tolerance. Ours accepts the
/// same keys; credentials are accepted but unused (there is no auth
/// surface in the in-process database).
#[derive(Debug, Clone)]
pub struct ConnectorOptions {
    /// The single database node the API is pointed at (all node
    /// addresses are looked up from it during setup, Sec. 3.2).
    pub host: usize,
    /// Target or source table (or view, for V2S).
    pub table: String,
    /// Desired parallelism; defaults per direction (Sec. 4.2 found 32
    /// best-practice for V2S, 128 for S2V on the 4:8 cluster).
    pub num_partitions: Option<usize>,
    /// S2V: tolerated fraction of rejected rows (0.0 = none), the
    /// paper's "failed rows percentage" tolerance.
    pub failed_rows_percent_tolerance: f64,
    /// S2V: bulk-load directly into read-optimized storage.
    pub copy_direct: bool,
    /// S2V: unique job name; auto-derived from the table when absent.
    pub job_name: Option<String>,
    /// Resource pool every connector session joins (the paper isolates
    /// data movement in a dedicated pool, Sec. 4.1). Must exist.
    pub resource_pool: Option<String>,
    /// S2V: pre-hash the DataFrame to the target table's segmentation
    /// so every task loads only node-local data (paper Sec. 5's first
    /// future-work optimization; eliminates database-internal shuffle
    /// at the cost of an engine-side shuffle).
    pub prehash: bool,
}

impl ConnectorOptions {
    pub fn parse(options: &Options) -> SparkResult<ConnectorOptions> {
        let host_raw = options.get("host").unwrap_or("0");
        // Accept both bare indices ("2") and db-style names ("db2").
        let host = host_raw
            .trim_start_matches("db")
            .parse::<usize>()
            .map_err(|_| {
                SparkError::Usage(format!("option host={host_raw} is not a node address"))
            })?;
        let table = options.require("table")?.to_string();
        let num_partitions = options.get_parsed::<usize>("numpartitions")?;
        if num_partitions == Some(0) {
            return Err(SparkError::Usage("numPartitions must be positive".into()));
        }
        let failed_rows_percent_tolerance = options
            .get_parsed::<f64>("failed_rows_percent_tolerance")?
            .unwrap_or(0.0);
        if !(0.0..=1.0).contains(&failed_rows_percent_tolerance) {
            return Err(SparkError::Usage(
                "failed_rows_percent_tolerance must be in [0, 1]".into(),
            ));
        }
        let copy_direct = options.get_parsed::<bool>("copy_direct")?.unwrap_or(true);
        let job_name = options.get("job_name").map(str::to_string);
        let prehash = options.get_parsed::<bool>("prehash")?.unwrap_or(false);
        let resource_pool = options.get("resource_pool").map(str::to_string);
        Ok(ConnectorOptions {
            host,
            table,
            num_partitions,
            failed_rows_percent_tolerance,
            copy_direct,
            job_name,
            resource_pool,
            prehash,
        })
    }

    /// Basic options for a table.
    pub fn for_table(table: &str) -> ConnectorOptions {
        ConnectorOptions {
            host: 0,
            table: table.to_string(),
            num_partitions: None,
            failed_rows_percent_tolerance: 0.0,
            copy_direct: true,
            job_name: None,
            resource_pool: None,
            prehash: false,
        }
    }

    pub fn with_partitions(mut self, n: usize) -> ConnectorOptions {
        self.num_partitions = Some(n);
        self
    }

    pub fn with_host(mut self, host: usize) -> ConnectorOptions {
        self.host = host;
        self
    }

    pub fn with_tolerance(mut self, fraction: f64) -> ConnectorOptions {
        self.failed_rows_percent_tolerance = fraction;
        self
    }

    pub fn with_prehash(mut self) -> ConnectorOptions {
        self.prehash = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table_1_style_options() {
        let o = Options::new()
            .with("host", "db2")
            .with("user", "dbadmin")
            .with("password", "secret")
            .with("table", "lineitem")
            .with("numPartitions", 32)
            .with("failed_rows_percent_tolerance", 0.02);
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert_eq!(parsed.host, 2);
        assert_eq!(parsed.table, "lineitem");
        assert_eq!(parsed.num_partitions, Some(32));
        assert!((parsed.failed_rows_percent_tolerance - 0.02).abs() < 1e-12);
        assert!(parsed.copy_direct);
    }

    #[test]
    fn table_is_required() {
        assert!(ConnectorOptions::parse(&Options::new()).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        let o = Options::new().with("table", "t").with("numPartitions", 0);
        assert!(ConnectorOptions::parse(&o).is_err());
        let o = Options::new()
            .with("table", "t")
            .with("failed_rows_percent_tolerance", 1.5);
        assert!(ConnectorOptions::parse(&o).is_err());
        let o = Options::new().with("table", "t").with("host", "not-a-host");
        assert!(ConnectorOptions::parse(&o).is_err());
    }
}
