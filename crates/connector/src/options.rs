//! Connector options: the `key=value` pairs of the paper's Table 1,
//! parsed into a typed struct — plus a typed [`builder`] for
//! programmatic callers, so Rust code never round-trips through the
//! stringly map.
//!
//! [`builder`]: ConnectorOptions::builder

use std::time::Duration;

use sparklet::Options;

use crate::error::{ConnectorError, ConnectorResult};
use crate::retry::RetryPolicy;

/// Which physical path a save takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMethod {
    /// Direct parallel COPY under the S2V exactly-once protocol
    /// (Sec. 3.2) — the default.
    #[default]
    Copy,
    /// Two-stage load through the shared DFS (Sec. 2.2.1's pre-connector
    /// architecture): stage part-files, then one transactional COPY.
    Dfs,
}

/// How rows reach the database: one bulk COPY, or a sequence of
/// micro-batches that each reuse the full exactly-once COPY protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// The whole DataFrame in one exactly-once save — the default.
    #[default]
    Bulk,
    /// Continuous ingest: rows accumulate in a [`StreamWriter`] and
    /// flush as micro-batches, each a complete 5-phase COPY job, when
    /// either bound is hit.
    ///
    /// [`StreamWriter`]: crate::stream::StreamWriter
    Stream {
        /// Flush when this many rows are buffered (`stream.batch_rows`).
        batch_rows: usize,
        /// Flush a non-empty buffer older than this (`stream.flush_ms`).
        flush_ms: u64,
    },
}

/// Default `stream.batch_rows` when stream mode is selected.
pub const STREAM_BATCH_ROWS_DEFAULT: usize = 1024;
/// Default `stream.flush_ms` when stream mode is selected.
pub const STREAM_FLUSH_MS_DEFAULT: u64 = 100;

/// Parsed connector options.
///
/// The real connector takes `host`, `user`, `password`, `db`, `table`,
/// `numPartitions`, and a rejected-rows tolerance. Ours accepts the
/// same keys; credentials are accepted but unused (there is no auth
/// surface in the in-process database).
#[derive(Debug, Clone)]
pub struct ConnectorOptions {
    /// The single database node the API is pointed at (all node
    /// addresses are looked up from it during setup, Sec. 3.2).
    pub host: usize,
    /// Target or source table (or view, for V2S).
    pub table: String,
    /// Desired parallelism; defaults per direction (Sec. 4.2 found 32
    /// best-practice for V2S, 128 for S2V on the 4:8 cluster).
    pub num_partitions: Option<usize>,
    /// S2V: tolerated fraction of rejected rows (0.0 = none), the
    /// paper's "failed rows percentage" tolerance.
    pub failed_rows_percent_tolerance: f64,
    /// S2V: bulk-load directly into read-optimized storage.
    pub copy_direct: bool,
    /// S2V: unique job name; auto-derived from the table when absent.
    pub job_name: Option<String>,
    /// Resource pool every connector session joins (the paper isolates
    /// data movement in a dedicated pool, Sec. 4.1). Must exist.
    pub resource_pool: Option<String>,
    /// S2V: pre-hash the DataFrame to the target table's segmentation
    /// so every task loads only node-local data (paper Sec. 5's first
    /// future-work optimization; eliminates database-internal shuffle
    /// at the cost of an engine-side shuffle).
    pub prehash: bool,
    /// Save path: direct COPY (S2V) or the two-stage DFS load.
    pub method: WriteMethod,
    /// DFS directory for `method=dfs` staging; defaults to
    /// `/staging/{table}`.
    pub staging_path: Option<String>,
    /// How each database touchpoint retries transient failures.
    pub retry: RetryPolicy,
    /// Whether reads/sessions may fail over to other nodes when the
    /// preferred node is down.
    pub failover: bool,
    /// Overall wall-clock budget for the whole `save()`/`load()`,
    /// propagated through every retry, hedge, and COPY phase. `None`
    /// leaves only the per-operation retry deadline.
    pub deadline: Option<Duration>,
    /// Hedge idempotent reads (V2S pieces, catalog probes) onto a buddy
    /// node when the primary runs past the observed P99. Never applies
    /// to S2V writes.
    pub hedge: bool,
    /// Explicit hedge delay; `None` derives it from observed latencies
    /// (`max(3 × P99, 10ms)`).
    pub hedge_delay: Option<Duration>,
    /// V2S: let piece scans use zone-map skipping and stats-driven
    /// conjunct ordering (ablation hook; results are identical).
    pub stats_skipping: bool,
    /// V2S: push `df.agg(..)` into the database as per-piece partial
    /// aggregates instead of pulling rows and aggregating engine-side.
    pub agg_pushdown: bool,
    /// Bulk (one COPY) or streaming micro-batch ingest.
    pub ingest: IngestMode,
    /// Streaming: run a tuple-mover pass after each micro-batch commit,
    /// keeping the WOS drained and small ROS containers compacted so
    /// steady-state scans stay fast under continuous ingest.
    pub mover_enabled: bool,
}

/// Every key `parse` understands; anything else is a usage error
/// (silently dropping a misspelled `numpartitions` cost real users real
/// debugging time).
const KNOWN_KEYS: &[&str] = &[
    "host",
    "user",
    "password",
    "db",
    "dbschema",
    "table",
    "numpartitions",
    "failed_rows_percent_tolerance",
    "copy_direct",
    "job_name",
    "resource_pool",
    "prehash",
    "method",
    "staging_path",
    "retry_max_attempts",
    "retry_deadline_ms",
    "failover",
    "deadline_ms",
    "hedge",
    "hedge_delay_ms",
    "stats_skipping",
    "agg_pushdown",
    "stream.batch_rows", // fabriclint: allow(obs-registry): option key, not a counter
    "stream.flush_ms",   // fabriclint: allow(obs-registry): option key, not a counter
    "mover.enabled",
];

impl ConnectorOptions {
    /// A typed builder — the programmatic mirror of the Table-1 string
    /// options.
    pub fn builder(table: &str) -> ConnectorOptionsBuilder {
        ConnectorOptionsBuilder {
            opts: ConnectorOptions::for_table(table),
        }
    }

    /// Parse the stringly Table-1 option map. Unknown keys are rejected.
    pub fn parse(options: &Options) -> ConnectorResult<ConnectorOptions> {
        for key in options.keys() {
            if !KNOWN_KEYS.contains(&key) {
                return Err(ConnectorError::Usage(format!(
                    "unknown option '{key}' (known: {})",
                    KNOWN_KEYS.join(", ")
                )));
            }
        }
        let host_raw = options.get("host").unwrap_or("0");
        // Accept both bare indices ("2") and db-style names ("db2").
        let host = host_raw
            .trim_start_matches("db")
            .parse::<usize>()
            .map_err(|_| {
                ConnectorError::Usage(format!("option host={host_raw} is not a node address"))
            })?;
        let mut b = ConnectorOptions::builder(options.require("table")?).host(host);
        if let Some(n) = options.get_parsed::<usize>("numpartitions")? {
            b = b.num_partitions(n);
        }
        if let Some(t) = options.get_parsed::<f64>("failed_rows_percent_tolerance")? {
            b = b.failed_rows_percent_tolerance(t);
        }
        if let Some(direct) = options.get_parsed::<bool>("copy_direct")? {
            b = b.copy_direct(direct);
        }
        if let Some(name) = options.get("job_name") {
            b = b.job_name(name);
        }
        if let Some(pool) = options.get("resource_pool") {
            b = b.resource_pool(pool);
        }
        if options.get_parsed::<bool>("prehash")?.unwrap_or(false) {
            b = b.prehash();
        }
        match options.get("method") {
            None | Some("copy") => {}
            Some("dfs") => b = b.method(WriteMethod::Dfs),
            Some(other) => {
                return Err(ConnectorError::Usage(format!(
                    "option method={other} is not one of copy, dfs"
                )));
            }
        }
        if let Some(path) = options.get("staging_path") {
            b = b.staging_path(path);
        }
        if let Some(n) = options.get_parsed::<u32>("retry_max_attempts")? {
            b = b.retry_max_attempts(n);
        }
        if let Some(ms) = options.get_parsed::<u64>("retry_deadline_ms")? {
            b = b.retry_deadline_ms(ms);
        }
        if let Some(fo) = options.get_parsed::<bool>("failover")? {
            b = b.failover(fo);
        }
        if let Some(ms) = options.get_parsed::<u64>("deadline_ms")? {
            b = b.deadline_ms(ms);
        }
        if let Some(h) = options.get_parsed::<bool>("hedge")? {
            b = b.hedge(h);
        }
        if let Some(ms) = options.get_parsed::<u64>("hedge_delay_ms")? {
            b = b.hedge_delay_ms(ms);
        }
        if let Some(s) = options.get_parsed::<bool>("stats_skipping")? {
            b = b.stats_skipping(s);
        }
        if let Some(a) = options.get_parsed::<bool>("agg_pushdown")? {
            b = b.agg_pushdown(a);
        }
        // Either stream.* key opts the save into micro-batch streaming;
        // the other takes its default.
        let batch_rows = options.get_parsed::<usize>("stream.batch_rows")?; // fabriclint: allow(obs-registry): option key, not a counter
        let flush_ms = options.get_parsed::<u64>("stream.flush_ms")?; // fabriclint: allow(obs-registry): option key, not a counter
        if batch_rows.is_some() || flush_ms.is_some() {
            b = b.stream(
                batch_rows.unwrap_or(STREAM_BATCH_ROWS_DEFAULT),
                flush_ms.unwrap_or(STREAM_FLUSH_MS_DEFAULT),
            );
        }
        if let Some(m) = options.get_parsed::<bool>("mover.enabled")? {
            b = b.mover_enabled(m);
        }
        b.build()
    }

    /// Basic options for a table.
    pub fn for_table(table: &str) -> ConnectorOptions {
        ConnectorOptions {
            host: 0,
            table: table.to_string(),
            num_partitions: None,
            failed_rows_percent_tolerance: 0.0,
            copy_direct: true,
            job_name: None,
            resource_pool: None,
            prehash: false,
            method: WriteMethod::Copy,
            staging_path: None,
            retry: RetryPolicy::default(),
            failover: true,
            deadline: None,
            hedge: true,
            hedge_delay: None,
            stats_skipping: true,
            agg_pushdown: true,
            ingest: IngestMode::Bulk,
            mover_enabled: true,
        }
    }

    pub fn with_partitions(mut self, n: usize) -> ConnectorOptions {
        self.num_partitions = Some(n);
        self
    }

    pub fn with_host(mut self, host: usize) -> ConnectorOptions {
        self.host = host;
        self
    }

    pub fn with_tolerance(mut self, fraction: f64) -> ConnectorOptions {
        self.failed_rows_percent_tolerance = fraction;
        self
    }

    pub fn with_prehash(mut self) -> ConnectorOptions {
        self.prehash = true;
        self
    }

    /// Validate `host` against the actual cluster, returning the node
    /// index. A `host` pointing past the last node is a usage error
    /// naming the valid range, not an opaque index panic downstream.
    pub fn host_on(&self, cluster: &mppdb::Cluster) -> ConnectorResult<usize> {
        let n = cluster.node_count();
        if self.host >= n {
            return Err(ConnectorError::Usage(format!(
                "host db{} does not exist; this cluster has nodes db0..db{}",
                self.host,
                n - 1
            )));
        }
        Ok(self.host)
    }
}

/// Builder for [`ConnectorOptions`]; [`build`] validates everything the
/// string parser validates, so both entry points reject the same bad
/// configurations.
///
/// [`build`]: ConnectorOptionsBuilder::build
#[derive(Debug, Clone)]
pub struct ConnectorOptionsBuilder {
    opts: ConnectorOptions,
}

impl ConnectorOptionsBuilder {
    pub fn host(mut self, host: usize) -> Self {
        self.opts.host = host;
        self
    }

    pub fn num_partitions(mut self, n: usize) -> Self {
        self.opts.num_partitions = Some(n);
        self
    }

    pub fn failed_rows_percent_tolerance(mut self, fraction: f64) -> Self {
        self.opts.failed_rows_percent_tolerance = fraction;
        self
    }

    pub fn copy_direct(mut self, direct: bool) -> Self {
        self.opts.copy_direct = direct;
        self
    }

    pub fn job_name(mut self, name: &str) -> Self {
        self.opts.job_name = Some(name.to_string());
        self
    }

    pub fn resource_pool(mut self, pool: &str) -> Self {
        self.opts.resource_pool = Some(pool.to_string());
        self
    }

    pub fn prehash(mut self) -> Self {
        self.opts.prehash = true;
        self
    }

    pub fn method(mut self, method: WriteMethod) -> Self {
        self.opts.method = method;
        self
    }

    pub fn staging_path(mut self, path: &str) -> Self {
        self.opts.staging_path = Some(path.to_string());
        self
    }

    /// Replace the whole retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.opts.retry = policy;
        self
    }

    pub fn retry_max_attempts(mut self, attempts: u32) -> Self {
        self.opts.retry.max_attempts = attempts;
        self
    }

    pub fn retry_deadline_ms(mut self, ms: u64) -> Self {
        self.opts.retry.deadline = Duration::from_millis(ms);
        self
    }

    pub fn failover(mut self, failover: bool) -> Self {
        self.opts.failover = failover;
        self
    }

    /// Overall wall-clock budget for the whole save/load.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.opts.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Enable/disable buddy-node hedging of idempotent reads.
    pub fn hedge(mut self, hedge: bool) -> Self {
        self.opts.hedge = hedge;
        self
    }

    /// Fix the hedge delay instead of deriving it from the observed P99.
    pub fn hedge_delay_ms(mut self, ms: u64) -> Self {
        self.opts.hedge_delay = Some(Duration::from_millis(ms));
        self
    }

    /// Enable/disable zone-map skipping in pushed-down piece scans.
    pub fn stats_skipping(mut self, on: bool) -> Self {
        self.opts.stats_skipping = on;
        self
    }

    /// Enable/disable partial-aggregate pushdown for `df.agg(..)`.
    pub fn agg_pushdown(mut self, on: bool) -> Self {
        self.opts.agg_pushdown = on;
        self
    }

    /// Switch to streaming micro-batch ingest with explicit bounds.
    pub fn stream(mut self, batch_rows: usize, flush_ms: u64) -> Self {
        self.opts.ingest = IngestMode::Stream {
            batch_rows,
            flush_ms,
        };
        self
    }

    /// Streaming micro-batch ingest with the default bounds.
    pub fn stream_defaults(self) -> Self {
        self.stream(STREAM_BATCH_ROWS_DEFAULT, STREAM_FLUSH_MS_DEFAULT)
    }

    /// Override just `stream.batch_rows` (switches to stream mode).
    pub fn stream_batch_rows(mut self, rows: usize) -> Self {
        let flush_ms = match self.opts.ingest {
            IngestMode::Stream { flush_ms, .. } => flush_ms,
            IngestMode::Bulk => STREAM_FLUSH_MS_DEFAULT,
        };
        self.opts.ingest = IngestMode::Stream {
            batch_rows: rows,
            flush_ms,
        };
        self
    }

    /// Override just `stream.flush_ms` (switches to stream mode).
    pub fn stream_flush_ms(mut self, ms: u64) -> Self {
        let batch_rows = match self.opts.ingest {
            IngestMode::Stream { batch_rows, .. } => batch_rows,
            IngestMode::Bulk => STREAM_BATCH_ROWS_DEFAULT,
        };
        self.opts.ingest = IngestMode::Stream {
            batch_rows,
            flush_ms: ms,
        };
        self
    }

    /// Enable/disable the per-flush tuple-mover pass in stream mode.
    pub fn mover_enabled(mut self, on: bool) -> Self {
        self.opts.mover_enabled = on;
        self
    }

    pub fn build(self) -> ConnectorResult<ConnectorOptions> {
        let o = self.opts;
        if o.table.is_empty() {
            return Err(ConnectorError::Usage("table must not be empty".into()));
        }
        if o.num_partitions == Some(0) {
            return Err(ConnectorError::Usage(
                "numPartitions must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&o.failed_rows_percent_tolerance) {
            return Err(ConnectorError::Usage(
                "failed_rows_percent_tolerance must be in [0, 1]".into(),
            ));
        }
        if !(1..=100).contains(&o.retry.max_attempts) {
            return Err(ConnectorError::Usage(
                "retry_max_attempts must be in 1..=100".into(),
            ));
        }
        if o.retry.deadline < Duration::from_millis(1) {
            return Err(ConnectorError::Usage(
                "retry_deadline_ms must be at least 1".into(),
            ));
        }
        if o.deadline.is_some_and(|d| d < Duration::from_millis(1)) {
            return Err(ConnectorError::Usage(
                "deadline_ms must be at least 1".into(),
            ));
        }
        if o.hedge_delay.is_some_and(|d| d < Duration::from_millis(1)) {
            return Err(ConnectorError::Usage(
                "hedge_delay_ms must be at least 1".into(),
            ));
        }
        if let IngestMode::Stream {
            batch_rows,
            flush_ms,
        } = o.ingest
        {
            if !(1..=1_000_000).contains(&batch_rows) {
                return Err(ConnectorError::Usage(
                    "stream.batch_rows must be in 1..=1000000".into(),
                ));
            }
            if !(1..=600_000).contains(&flush_ms) {
                return Err(ConnectorError::Usage(
                    "stream.flush_ms must be in 1..=600000 (10 minutes)".into(),
                ));
            }
        }
        Ok(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table_1_style_options() {
        let o = Options::new()
            .with("host", "db2")
            .with("user", "dbadmin")
            .with("password", "secret")
            .with("table", "lineitem")
            .with("numPartitions", 32)
            .with("failed_rows_percent_tolerance", 0.02);
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert_eq!(parsed.host, 2);
        assert_eq!(parsed.table, "lineitem");
        assert_eq!(parsed.num_partitions, Some(32));
        assert!((parsed.failed_rows_percent_tolerance - 0.02).abs() < 1e-12);
        assert!(parsed.copy_direct);
        assert_eq!(parsed.method, WriteMethod::Copy);
        assert!(parsed.failover);
    }

    #[test]
    fn table_is_required() {
        assert!(ConnectorOptions::parse(&Options::new()).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        let o = Options::new().with("table", "t").with("numPartitions", 0);
        assert!(ConnectorOptions::parse(&o).is_err());
        let o = Options::new()
            .with("table", "t")
            .with("failed_rows_percent_tolerance", 1.5);
        assert!(ConnectorOptions::parse(&o).is_err());
        let o = Options::new().with("table", "t").with("host", "not-a-host");
        assert!(ConnectorOptions::parse(&o).is_err());
    }

    #[test]
    fn accepts_bare_and_db_prefixed_hosts() {
        for (raw, want) in [("0", 0usize), ("3", 3), ("db0", 0), ("db7", 7)] {
            let o = Options::new().with("table", "t").with("host", raw);
            assert_eq!(
                ConnectorOptions::parse(&o).unwrap().host,
                want,
                "host={raw}"
            );
        }
    }

    #[test]
    fn rejects_unknown_keys_but_accepts_credentials() {
        let o = Options::new().with("table", "t").with("numPartitons", 8); // typo
        let err = ConnectorOptions::parse(&o).unwrap_err();
        assert!(err.to_string().contains("numpartitons"), "{err}");
        // The unused-but-real Table 1 keys still pass.
        let o = Options::new()
            .with("table", "t")
            .with("user", "dbadmin")
            .with("password", "s")
            .with("db", "warehouse")
            .with("dbschema", "public");
        assert!(ConnectorOptions::parse(&o).is_ok());
    }

    #[test]
    fn parses_retry_and_method_keys() {
        let o = Options::new()
            .with("table", "t")
            .with("method", "dfs")
            .with("staging_path", "/tmp/stage")
            .with("retry_max_attempts", 7)
            .with("retry_deadline_ms", 1500)
            .with("failover", false);
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert_eq!(parsed.method, WriteMethod::Dfs);
        assert_eq!(parsed.staging_path.as_deref(), Some("/tmp/stage"));
        assert_eq!(parsed.retry.max_attempts, 7);
        assert_eq!(parsed.retry.deadline, Duration::from_millis(1500));
        assert!(!parsed.failover);
        let o = Options::new()
            .with("table", "t")
            .with("method", "carrier-pigeon");
        assert!(ConnectorOptions::parse(&o).is_err());
    }

    #[test]
    fn retry_key_bounds_are_enforced() {
        let o = Options::new()
            .with("table", "t")
            .with("retry_max_attempts", 0);
        assert!(ConnectorOptions::parse(&o).is_err());
        let o = Options::new()
            .with("table", "t")
            .with("retry_max_attempts", 101);
        assert!(ConnectorOptions::parse(&o).is_err());
        let o = Options::new()
            .with("table", "t")
            .with("retry_deadline_ms", 0);
        assert!(ConnectorOptions::parse(&o).is_err());
    }

    #[test]
    fn parses_deadline_and_hedge_keys() {
        let o = Options::new()
            .with("table", "t")
            .with("deadline_ms", 2500)
            .with("hedge", false)
            .with("hedge_delay_ms", 15);
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert_eq!(parsed.deadline, Some(Duration::from_millis(2500)));
        assert!(!parsed.hedge);
        assert_eq!(parsed.hedge_delay, Some(Duration::from_millis(15)));
        // Defaults: no deadline, hedging on with a derived delay.
        let parsed = ConnectorOptions::parse(&Options::new().with("table", "t")).unwrap();
        assert_eq!(parsed.deadline, None);
        assert!(parsed.hedge);
        assert_eq!(parsed.hedge_delay, None);
        // Bounds.
        let o = Options::new().with("table", "t").with("deadline_ms", 0);
        assert!(ConnectorOptions::parse(&o).is_err());
        let o = Options::new().with("table", "t").with("hedge_delay_ms", 0);
        assert!(ConnectorOptions::parse(&o).is_err());
    }

    #[test]
    fn parses_pushdown_keys_with_on_defaults() {
        let parsed = ConnectorOptions::parse(&Options::new().with("table", "t")).unwrap();
        assert!(parsed.stats_skipping);
        assert!(parsed.agg_pushdown);
        let o = Options::new()
            .with("table", "t")
            .with("stats_skipping", false)
            .with("agg_pushdown", false);
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert!(!parsed.stats_skipping);
        assert!(!parsed.agg_pushdown);
    }

    #[test]
    fn parses_stream_and_mover_keys() {
        // Bulk by default, mover on.
        let parsed = ConnectorOptions::parse(&Options::new().with("table", "t")).unwrap();
        assert_eq!(parsed.ingest, IngestMode::Bulk);
        assert!(parsed.mover_enabled);
        // Either stream key flips the mode; the other takes its default.
        let o = Options::new()
            .with("table", "t")
            .with("stream.batch_rows", 256); // fabriclint: allow(obs-registry): option key, not a counter
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert_eq!(
            parsed.ingest,
            IngestMode::Stream {
                batch_rows: 256,
                flush_ms: STREAM_FLUSH_MS_DEFAULT
            }
        );
        let o = Options::new()
            .with("table", "t")
            .with("stream.flush_ms", 50); // fabriclint: allow(obs-registry): option key, not a counter
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert_eq!(
            parsed.ingest,
            IngestMode::Stream {
                batch_rows: STREAM_BATCH_ROWS_DEFAULT,
                flush_ms: 50
            }
        );
        let o = Options::new()
            .with("table", "t")
            .with("stream.batch_rows", 2000) // fabriclint: allow(obs-registry): option key, not a counter
            .with("stream.flush_ms", 250) // fabriclint: allow(obs-registry): option key, not a counter
            .with("mover.enabled", false);
        let parsed = ConnectorOptions::parse(&o).unwrap();
        assert_eq!(
            parsed.ingest,
            IngestMode::Stream {
                batch_rows: 2000,
                flush_ms: 250
            }
        );
        assert!(!parsed.mover_enabled);
    }

    #[test]
    fn stream_key_bounds_are_enforced() {
        for (key, bad) in [
            ("stream.batch_rows", "0"), // fabriclint: allow(obs-registry): option key, not a counter
            ("stream.batch_rows", "1000001"), // fabriclint: allow(obs-registry): option key, not a counter
            ("stream.flush_ms", "0"), // fabriclint: allow(obs-registry): option key, not a counter
            ("stream.flush_ms", "600001"), // fabriclint: allow(obs-registry): option key, not a counter
        ] {
            let o = Options::new().with("table", "t").with(key, bad);
            let err = ConnectorOptions::parse(&o).unwrap_err();
            assert!(err.to_string().contains(key), "{key}={bad}: {err}");
        }
        // The same bounds hold through the typed builder.
        assert!(ConnectorOptions::builder("t")
            .stream(0, 100)
            .build()
            .is_err());
        assert!(ConnectorOptions::builder("t")
            .stream(100, 0)
            .build()
            .is_err());
        assert!(ConnectorOptions::builder("t")
            .stream(100, 100)
            .build()
            .is_ok());
    }

    #[test]
    fn rejects_misspelled_stream_keys() {
        // fabriclint: allow(obs-registry): deliberate typo fixtures
        for typo in ["stream.batchrows", "stream.flushms", "mover.enable"] {
            let o = Options::new().with("table", "t").with(typo, "1");
            let err = ConnectorOptions::parse(&o).unwrap_err();
            assert!(err.to_string().contains(typo), "{typo}: {err}");
        }
    }

    #[test]
    fn stream_builder_methods_preserve_the_other_bound() {
        let o = ConnectorOptions::builder("t")
            .stream_batch_rows(512)
            .stream_flush_ms(75)
            .build()
            .unwrap();
        assert_eq!(
            o.ingest,
            IngestMode::Stream {
                batch_rows: 512,
                flush_ms: 75
            }
        );
        let o = ConnectorOptions::builder("t")
            .stream_defaults()
            .build()
            .unwrap();
        assert_eq!(
            o.ingest,
            IngestMode::Stream {
                batch_rows: STREAM_BATCH_ROWS_DEFAULT,
                flush_ms: STREAM_FLUSH_MS_DEFAULT
            }
        );
    }

    #[test]
    fn builder_round_trips_and_validates() {
        let o = ConnectorOptions::builder("sales")
            .host(1)
            .num_partitions(16)
            .failed_rows_percent_tolerance(0.05)
            .job_name("nightly")
            .method(WriteMethod::Dfs)
            .retry_max_attempts(9)
            .retry_deadline_ms(2000)
            .failover(false)
            .build()
            .unwrap();
        assert_eq!(o.table, "sales");
        assert_eq!(o.host, 1);
        assert_eq!(o.num_partitions, Some(16));
        assert_eq!(o.job_name.as_deref(), Some("nightly"));
        assert_eq!(o.method, WriteMethod::Dfs);
        assert_eq!(o.retry.max_attempts, 9);
        assert!(!o.failover);
        assert!(ConnectorOptions::builder("").build().is_err());
        assert!(ConnectorOptions::builder("t")
            .num_partitions(0)
            .build()
            .is_err());
        assert!(ConnectorOptions::builder("t")
            .retry_max_attempts(0)
            .build()
            .is_err());
    }

    #[test]
    fn host_on_names_the_valid_range() {
        let cluster = mppdb::Cluster::new(mppdb::ClusterConfig::with_nodes(3));
        let o = ConnectorOptions::for_table("t").with_host(5);
        let err = o.host_on(&cluster).unwrap_err();
        assert!(err.to_string().contains("db0..db2"), "{err}");
        assert_eq!(
            ConnectorOptions::for_table("t")
                .with_host(2)
                .host_on(&cluster)
                .unwrap(),
            2
        );
    }
}
