//! Retry with exponential backoff, per-attempt timeouts, an overall
//! deadline — and node failover for the session-shaped operations.
//!
//! Every database touchpoint in the connector runs under a
//! [`RetryPolicy`]: transient errors ([`ConnectorError::is_transient`])
//! are retried with exponentially growing, deterministically jittered
//! backoff until the attempt budget or the wall-clock deadline runs
//! out; fatal errors surface immediately. The paper's connector rides
//! on JDBC where this layer is the driver's reconnect loop; here it is
//! explicit and observable (`retry.*` counters in `dc_counters`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use mppdb::{Cluster, Session};

use crate::error::{ConnectorError, ConnectorResult};
use crate::health::{Deadline, HealthTracker};

/// How a connector operation deals with transient failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts before giving up (>= 1; 1 means "no retries").
    pub max_attempts: u32,
    /// Backoff before attempt 2; doubles per attempt up to `max_backoff`.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Overall wall-clock budget across all attempts of one operation.
    pub deadline: Duration,
    /// Budget for any single attempt; an attempt that burned longer
    /// than this is not retried even if attempts remain.
    pub attempt_timeout: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(30),
            attempt_timeout: Duration::from_secs(10),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, fail fast).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before the given (1-based) attempt: exponential from
    /// `base_backoff`, capped at `max_backoff`, jittered into
    /// [50%, 100%] by a hash of (seed, op, attempt) so concurrent tasks
    /// retrying the same failure do not stampede in lockstep, yet every
    /// run with the same seed backs off identically.
    pub fn backoff_for(&self, op: &str, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let full = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let mut h = self.jitter_seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in op.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ attempt as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        // Scale into [1/2, 1] of the full backoff.
        let frac = 0.5 + (h % 1000) as f64 / 2000.0;
        full.mul_f64(frac)
    }
}

/// Run `attempt` under `policy`, retrying transient errors. The closure
/// receives the 1-based attempt number (so callers can rotate failover
/// targets per attempt).
pub fn with_retry<T>(
    policy: &RetryPolicy,
    op: &'static str,
    attempt_fn: impl FnMut(u32) -> ConnectorResult<T>,
) -> ConnectorResult<T> {
    with_retry_deadline(policy, None, op, attempt_fn)
}

/// [`with_retry`] under an *overall* [`Deadline`] shared with every
/// other operation of the same job. Backoff sleeps are capped at the
/// tighter of the policy deadline and the overall deadline: when the
/// next backoff would not fit in the remaining budget the loop gives up
/// immediately instead of sleeping past the budget it is about to fail.
pub fn with_retry_deadline<T>(
    policy: &RetryPolicy,
    overall: Option<Deadline>,
    op: &'static str,
    mut attempt_fn: impl FnMut(u32) -> ConnectorResult<T>,
) -> ConnectorResult<T> {
    let started = Instant::now();
    let mut attempt = 1u32;
    loop {
        if let Some(d) = overall {
            if d.expired() {
                obs::global().incr(obs::names::RETRY_GAVE_UP);
                obs::global().incr(obs::names::DEADLINE_EXPIRED);
                return Err(ConnectorError::DeadlineExceeded {
                    op,
                    attempts: attempt - 1,
                    elapsed_ms: d.elapsed_ms(),
                });
            }
        }
        let attempt_started = Instant::now();
        match attempt_fn(attempt) {
            Ok(v) => {
                if attempt > 1 {
                    obs::global().incr("retry.recovered");
                }
                return Ok(v);
            }
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => {
                if attempt >= policy.max_attempts {
                    obs::global().incr(obs::names::RETRY_GAVE_UP);
                    return Err(ConnectorError::RetriesExhausted {
                        op,
                        attempts: attempt,
                        last: Box::new(e),
                    });
                }
                let backoff = policy.backoff_for(op, attempt + 1);
                // Remaining budget: the tighter of the per-op policy
                // deadline and the job-wide deadline.
                let policy_remaining = policy.deadline.saturating_sub(started.elapsed());
                let remaining = match overall {
                    Some(d) => policy_remaining.min(d.remaining()),
                    None => policy_remaining,
                };
                let attempt_overran = attempt_started.elapsed() > policy.attempt_timeout;
                if backoff >= remaining || attempt_overran {
                    obs::global().incr(obs::names::RETRY_GAVE_UP);
                    if overall.map(|d| backoff >= d.remaining()).unwrap_or(false) {
                        obs::global().incr(obs::names::DEADLINE_EXPIRED);
                    }
                    return Err(ConnectorError::DeadlineExceeded {
                        op,
                        attempts: attempt,
                        elapsed_ms: started.elapsed().as_millis() as u64,
                    });
                }
                obs::global().incr("retry.attempts");
                obs::global().record_time("retry.backoff_us", backoff);
                std::thread::sleep(backoff);
                attempt += 1;
            }
        }
    }
}

/// A retrying, failing-over database connection: each attempt gets a
/// fresh [`Session`], rotated across the preferred node, its k-safety
/// buddies, and the rest of the live cluster. The JDBC analog is a
/// driver-level connection pool with multi-host failover.
pub struct RetryConn {
    cluster: Arc<Cluster>,
    preferred: usize,
    failover: bool,
    policy: RetryPolicy,
    pool: Option<String>,
    task_tag: Option<u64>,
    session: Option<Session>,
    /// Job-wide budget every `run` shares; `None` means unbounded.
    deadline: Option<Deadline>,
    /// Per-node health scores fed by every connect and operation, and
    /// consulted to steer connections away from sick nodes.
    tracker: Option<Arc<HealthTracker>>,
    /// Parent span for per-attempt `retry.attempt` spans; NONE (the
    /// default) keeps the connection untraced.
    trace: obs::TraceCtx,
}

impl RetryConn {
    pub fn new(cluster: Arc<Cluster>, preferred: usize, policy: RetryPolicy) -> RetryConn {
        RetryConn {
            cluster,
            preferred,
            failover: true,
            policy,
            pool: None,
            task_tag: None,
            session: None,
            deadline: None,
            tracker: None,
            trace: obs::TraceCtx::NONE,
        }
    }

    /// Disallow failover: every attempt reconnects to the preferred node.
    pub fn pinned(mut self) -> RetryConn {
        self.failover = false;
        self
    }

    pub fn with_pool(mut self, pool: Option<String>) -> RetryConn {
        self.pool = pool;
        self
    }

    pub fn with_task_tag(mut self, tag: Option<u64>) -> RetryConn {
        self.task_tag = tag;
        self
    }

    /// Bound every `run` by a job-wide deadline.
    pub fn with_deadline(mut self, deadline: Option<Deadline>) -> RetryConn {
        self.deadline = deadline;
        self
    }

    /// Feed and consult per-node health scores / circuit breakers.
    pub fn with_health(mut self, tracker: Arc<HealthTracker>) -> RetryConn {
        self.tracker = Some(tracker);
        self
    }

    /// Parent every attempt of every `run` under `trace` with a
    /// `retry.attempt` span tagged (op, attempt, node, failed).
    pub fn with_trace(mut self, trace: obs::TraceCtx) -> RetryConn {
        self.trace = trace;
        self
    }

    /// Re-point the attempt spans mid-life (e.g. one pooled connection
    /// serving several phases of a job).
    pub fn set_trace(&mut self, trace: obs::TraceCtx) {
        self.trace = trace;
    }

    /// Candidate nodes in failover preference order: the preferred node,
    /// then its buddy replicas, then every other node.
    fn candidates(&self) -> Vec<usize> {
        let mut order = vec![self.preferred];
        if self.failover {
            let k = self.cluster.config().k_safety;
            for b in self.cluster.segment_map().buddies(self.preferred, k) {
                if !order.contains(&b) {
                    order.push(b);
                }
            }
            for n in 0..self.cluster.node_count() {
                if !order.contains(&n) {
                    order.push(n);
                }
            }
        }
        order
    }

    fn connect(&mut self, attempt: u32) -> ConnectorResult<&mut Session> {
        if self.session.is_none() {
            let mut order = self.candidates();
            // Sick nodes (open breakers) sort to the back; ties keep
            // the locality-preference order.
            if let Some(tracker) = &self.tracker {
                tracker.reorder(&mut order);
            }
            // Rotate the starting candidate with the attempt number, but
            // always scan the whole preference list: attempt 1 tries the
            // preferred node first, later attempts lead with a failover
            // target while still falling back to any node that answers.
            let start = (attempt as usize - 1) % order.len();
            let mut last: Option<ConnectorError> = None;
            let mut breaker_skipped = 0usize;
            for i in 0..order.len() {
                let node = order[(start + i) % order.len()];
                // Ask the breaker unless this is the only remaining
                // candidate — never let the breaker strand a retry with
                // zero targets.
                if let Some(tracker) = &self.tracker {
                    let is_last_chance = i + 1 == order.len() && self.session.is_none();
                    if !is_last_chance && !tracker.acquire(node) {
                        breaker_skipped += 1;
                        continue;
                    }
                }
                match self.cluster.connect(node) {
                    Ok(mut session) => {
                        if node != self.preferred {
                            obs::global().incr("failover.connects");
                        }
                        if let Some(pool) = &self.pool {
                            session
                                .set_resource_pool(pool)
                                .map_err(|e| ConnectorError::db("set_resource_pool", e))?;
                        }
                        session.set_task_tag(self.task_tag);
                        self.session = Some(session);
                        break;
                    }
                    Err(e) => {
                        let e = ConnectorError::db("connect", e);
                        if !e.is_transient() {
                            return Err(e);
                        }
                        if let Some(tracker) = &self.tracker {
                            tracker.record_failure(node);
                        }
                        last = Some(e);
                    }
                }
            }
            if breaker_skipped > 0 {
                obs::global().add("health.steered_connects", breaker_skipped as u64);
            }
            if self.session.is_none() {
                return Err(last.unwrap_or(ConnectorError::NoLiveNodes));
            }
        }
        self.session.as_mut().ok_or(ConnectorError::NoLiveNodes)
    }

    /// Run `f` against a live session under the retry policy. On a
    /// transient error the session is dropped (its open transaction
    /// aborts, exactly as a dead JDBC connection's would) and the next
    /// attempt reconnects — possibly to a different node.
    pub fn run<T>(
        &mut self,
        op: &'static str,
        mut f: impl FnMut(&mut Session) -> ConnectorResult<T>,
    ) -> ConnectorResult<T> {
        let policy = self.policy.clone();
        let deadline = self.deadline;
        let trace = self.trace;
        with_retry_deadline(&policy, deadline, op, |attempt| {
            let span = obs::global().span_start(obs::names::RETRY_ATTEMPT, trace);
            let mut node_used: Option<usize> = None;
            let result = match self.connect(attempt) {
                Ok(session) => {
                    let node = session.node();
                    node_used = Some(node);
                    let op_started = Instant::now();
                    match f(session) {
                        Ok(v) => {
                            if let Some(tracker) = &self.tracker {
                                tracker.record_success(node, op_started.elapsed());
                            }
                            Ok(v)
                        }
                        Err(e) => {
                            if e.is_transient() {
                                if let Some(tracker) = &self.tracker {
                                    tracker.record_failure(node);
                                }
                                // Connection is suspect; drop it (aborting
                                // any open transaction) and reconnect next
                                // attempt.
                                self.session = None;
                            } else if let Some(s) = self.session.as_mut() {
                                if s.in_txn() {
                                    let _ = s.rollback();
                                }
                            }
                            Err(e)
                        }
                    }
                }
                Err(e) => Err(e),
            };
            obs::global().span_finish(span, |s| {
                s.attempt = attempt;
                s.node = node_used.map(|n| n as u64);
                s.failed = result.is_err();
                s.detail = op.to_string();
            });
            result
        })
    }

    /// The node the current session is pinned to, if connected.
    pub fn node(&self) -> Option<usize> {
        self.session.as_ref().map(|s| s.node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn fatal_errors_fail_fast() {
        let calls = AtomicU32::new(0);
        let r: ConnectorResult<()> = with_retry(&RetryPolicy::default(), "t", |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(ConnectorError::Usage("bad".into()))
        });
        assert!(matches!(r, Err(ConnectorError::Usage(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn transient_errors_retry_until_budget() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        let calls = AtomicU32::new(0);
        let r: ConnectorResult<()> = with_retry(&policy, "t", |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(ConnectorError::NoLiveNodes)
        });
        assert!(matches!(
            r,
            Err(ConnectorError::RetriesExhausted { attempts: 3, .. })
        ));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn recovers_when_a_later_attempt_succeeds() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let r = with_retry(&policy, "t", |attempt| {
            if attempt < 3 {
                Err(ConnectorError::NoLiveNodes)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r.unwrap(), 3);
    }

    #[test]
    fn deadline_bounds_total_time() {
        let policy = RetryPolicy {
            max_attempts: 1000,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_millis(12),
            ..RetryPolicy::default()
        };
        let started = Instant::now();
        let r: ConnectorResult<()> = with_retry(&policy, "t", |_| Err(ConnectorError::NoLiveNodes));
        assert!(matches!(r, Err(ConnectorError::DeadlineExceeded { .. })));
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn overall_deadline_caps_backoff_sleeps() {
        // Generous per-op policy, tight overall budget: the loop must
        // never sleep past the overall deadline. Worst case is one
        // attempt plus the backoffs that fit inside the budget, so the
        // total wall time is pinned well under the policy's own 30s
        // deadline.
        let policy = RetryPolicy {
            max_attempts: 1000,
            base_backoff: Duration::from_millis(8),
            max_backoff: Duration::from_millis(8),
            deadline: Duration::from_secs(30),
            ..RetryPolicy::default()
        };
        let overall = Deadline::within(Duration::from_millis(20));
        let started = Instant::now();
        let r: ConnectorResult<()> = with_retry_deadline(&policy, Some(overall), "t", |_| {
            Err(ConnectorError::NoLiveNodes)
        });
        let elapsed = started.elapsed();
        assert!(matches!(r, Err(ConnectorError::DeadlineExceeded { .. })));
        // Budget 20ms, backoff 8ms, instant attempts: at most two full
        // backoffs fit, and the final would-be sleep is skipped rather
        // than slept. 100ms of slack absorbs scheduler noise.
        assert!(
            elapsed < Duration::from_millis(120),
            "worst-case wall time {elapsed:?} must stay near the 20ms budget"
        );
    }

    #[test]
    fn expired_deadline_fails_before_the_first_attempt() {
        let overall = Deadline::within(Duration::ZERO);
        let calls = AtomicU32::new(0);
        let r: ConnectorResult<()> =
            with_retry_deadline(&RetryPolicy::default(), Some(overall), "t", |_| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        assert!(matches!(
            r,
            Err(ConnectorError::DeadlineExceeded { attempts: 0, .. })
        ));
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn backoff_grows_is_capped_and_deterministic() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            ..RetryPolicy::default()
        };
        let b2 = p.backoff_for("op", 2);
        let b5 = p.backoff_for("op", 5);
        assert!(b2 >= Duration::from_micros(500) && b2 <= Duration::from_millis(2));
        assert!(b5 <= Duration::from_millis(8));
        assert!(b5 >= b2);
        assert_eq!(p.backoff_for("op", 3), p.backoff_for("op", 3));
        // Different ops jitter differently (with overwhelming likelihood).
        assert_ne!(p.backoff_for("alpha", 4), p.backoff_for("beta", 4));
    }
}
