//! S2V: saving DataFrames into the database with exactly-once semantics
//! (paper Sec. 3.2).
//!
//! The engine's tasks are stateless and cannot talk to each other, so
//! the protocol uses tables *in the database* as a durable log:
//!
//! * a **staging table** with the target's schema,
//! * a **task status table** (one pre-created row per task: id, rows
//!   loaded/rejected, done flag),
//! * a **last committer table** (the leader-election slot),
//! * a permanent **final status table** recording every job's outcome —
//!   consultable even after a total engine failure.
//!
//! Each task walks the five phases of the paper's Fig. 5:
//!
//! 1. bulk-load its partition into the staging table and set its
//!    status-row `done` flag, *in one transaction*, aborting if the
//!    flag is already set (a duplicate attempt saved it first);
//! 2. read the status table; if any task is not done, terminate;
//! 3. race to write its id into the empty last-committer table;
//! 4. read it back; losers terminate;
//! 5. the single winner verifies the rejected-row tolerance and commits
//!    the staging table into the target, flipping the final status to
//!    finished — again conditionally, so a speculative duplicate of the
//!    committer cannot commit twice.
//!
//! In overwrite mode the final commit is the atomic swap of staging
//! into target (charged to the cost model as a constant-time rename);
//! in append mode it copies the staging rows (the slower path the
//! paper's Sec. 5 discusses).
//!
//! Every database touchpoint — the driver's setup/wrap-up and each
//! phase — runs on a retrying, failing-over connection
//! ([`crate::retry::RetryConn`]). The phases were already idempotent
//! against *task* restarts (each re-checks durable state); the same
//! property makes them safe to retry against *connection* failures,
//! including the Sec. 2.2.2 hazard of a commit whose acknowledgement
//! is lost: the retry re-reads the done flag / committer slot / final
//! status and discovers the commit landed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use avrolite::{AvroSchema, Codec, Writer};
use common::Value;
use mppdb::catalog::{Segmentation, TableDef};
use mppdb::{Cluster, CopyOptions, CopySource, DbError, DbResult, QuerySpec, Session};
use netsim::record::{NetClass, NodeRef};
use sparklet::{DataFrame, SaveMode, SparkContext, SparkError};

use obs::names;

use crate::error::{ConnectorError, ConnectorResult};
use crate::health::{tracker_for, Deadline, HealthTracker};
use crate::options::ConnectorOptions;
use crate::retry::{RetryConn, RetryPolicy};

/// Outcome of a successful save.
#[derive(Debug, Clone, PartialEq)]
pub struct S2vReport {
    pub job_name: String,
    pub rows_loaded: u64,
    pub rows_rejected: u64,
    /// Task id that won the final-commit race.
    pub committer_task: u64,
    /// Per-task samples of rejected rows — "a sample of the rejected
    /// rows is provided" (Sec. 3.2): `(task, first rejection reason)`.
    pub rejected_samples: Vec<(u64, String)>,
    /// Scheduler job id this save ran as (0 if no tasks ran); keys into
    /// [`sparklet::SparkContext::job_stats`] and the data collector's
    /// `job` event column via [`sparklet::job_label`].
    pub engine_job_id: u64,
    /// Cumulative microseconds spent in each of the five Fig. 5 phases,
    /// summed across every task attempt of this job.
    pub phase_us: [u64; 5],
    /// The save's `s2v.job` span tree in the global collector
    /// ([`obs::TraceId`] 0 when tracing was disabled).
    pub trace: obs::TraceId,
}

impl S2vReport {
    /// Render the save's span tree and critical path from the global
    /// collector (empty when tracing was disabled or the trace was
    /// evicted).
    pub fn profile(&self) -> String {
        obs::trace::render(&obs::global().trace_spans(self.trace))
    }
}

/// Lock-free accumulator the task closures write their phase timings
/// into; the driver folds it into the [`S2vReport`].
#[derive(Default)]
struct PhaseAcc {
    engine_job_id: AtomicU64,
    phase_us: [AtomicU64; 5],
}

impl PhaseAcc {
    fn record(&self, phase: usize, dur: std::time::Duration) {
        self.phase_us[phase - 1].fetch_add(dur.as_micros() as u64, Ordering::Relaxed);
    }

    fn snapshot_us(&self) -> [u64; 5] {
        [0, 1, 2, 3, 4].map(|i| self.phase_us[i].load(Ordering::Relaxed))
    }
}

/// Job-name uniquifier for auto-derived names.
static JOB_SEQ: AtomicU64 = AtomicU64::new(1);

/// Per-task terminal outcome (driver-side bookkeeping only; the durable
/// record is in the database tables).
#[derive(Debug, Clone, PartialEq)]
enum TaskEnd {
    /// Finished its phases without being the committer.
    Done,
    /// Won the race and committed.
    Committed { loaded: u64, rejected: u64 },
    /// Won the race but the tolerance check failed; the job fails.
    ToleranceExceeded { loaded: u64, rejected: u64 },
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

struct JobTables {
    staging: String,
    status: String,
    committer: String,
}

/// The permanent record of all S2V jobs (paper: "this table is always
/// available; users can consult this table any time").
pub const FINAL_STATUS_TABLE: &str = "s2v_job_final_status";

/// Save `df` into `opts.table` with exactly-once semantics — the old
/// S2V-only entry point, superseded by the unified [`SaveRequest`]
/// surface (which also covers `method=dfs` and streaming ingest).
///
/// [`SaveRequest`]: crate::SaveRequest
#[deprecated(
    since = "0.2.0",
    note = "use connector::SaveRequest::new(..).submit(); this S2V-only \
            entry point bypasses the unified ingest dispatch"
)]
pub fn save_to_db(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    df: &DataFrame,
    opts: &ConnectorOptions,
    mode: SaveMode,
) -> ConnectorResult<S2vReport> {
    run(ctx, cluster, df, opts, mode)
}

/// Save `df` into `opts.table` with exactly-once semantics.
///
/// The whole save runs as one `s2v.job` trace: the driver's setup,
/// finalize, and teardown steps, every task attempt (`sched.task`),
/// every Fig. 5 phase attempt, and every connection retry get spans,
/// and [`S2vReport::profile`] renders the assembled tree.
pub(crate) fn run(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    df: &DataFrame,
    opts: &ConnectorOptions,
    mode: SaveMode,
) -> ConnectorResult<S2vReport> {
    let trace = obs::global().trace_start("s2v.job");
    let result = save_to_db_traced(ctx, cluster, df, opts, mode, trace);
    obs::global().span_finish(trace, |s| match &result {
        Ok(r) => {
            s.rows = r.rows_loaded;
            s.detail = r.job_name.clone();
        }
        Err(e) => {
            s.failed = true;
            s.detail = e.to_string();
        }
    });
    result
}

fn save_to_db_traced(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    df: &DataFrame,
    opts: &ConnectorOptions,
    mode: SaveMode,
    trace: obs::TraceCtx,
) -> ConnectorResult<S2vReport> {
    let save_started = Instant::now();
    let target = sanitize(&opts.table);
    let job_name = opts
        .job_name
        .clone()
        .map(|j| sanitize(&j))
        .unwrap_or_else(|| format!("s2v_{}_{}", target, JOB_SEQ.fetch_add(1, Ordering::AcqRel)));

    // ----- setup phase (driver) --------------------------------------
    // The overall wall-clock budget starts here and flows through every
    // driver and task phase. Writes are never hedged — only steered and
    // retried — so exactly-once never depends on the committer race.
    let deadline = opts.deadline.map(Deadline::within);
    let tracker = tracker_for(cluster);
    let host = opts.host_on(cluster)?;
    let mut driver = RetryConn::new(Arc::clone(cluster), host, opts.retry.clone())
        .with_deadline(deadline)
        .with_health(Arc::clone(&tracker));
    if !opts.failover {
        driver = driver.pinned();
    }
    let exists = cluster.has_table(&target);
    match mode {
        SaveMode::ErrorIfExists if exists => {
            return Err(ConnectorError::Usage(format!(
                "table {target} already exists (mode=ErrorIfExists)"
            )))
        }
        SaveMode::Ignore if exists => {
            return Ok(S2vReport {
                job_name,
                rows_loaded: 0,
                rows_rejected: 0,
                committer_task: 0,
                rejected_samples: Vec::new(),
                engine_job_id: 0,
                phase_us: [0; 5],
                trace: trace.trace,
            })
        }
        _ => {}
    }
    if exists {
        let def = cluster
            .table_def(&target)
            .map_err(|e| ConnectorError::db(names::S2V_SETUP, e))?;
        if !def.schema.compatible_with(df.schema()) {
            return Err(ConnectorError::Usage(format!(
                "DataFrame schema {} incompatible with target table {}",
                df.schema(),
                def.schema
            )));
        }
    } else {
        cluster
            .create_table(
                TableDef::new(&target, df.schema().clone(), Segmentation::ByHash(vec![]))
                    .map_err(|e| ConnectorError::db(names::S2V_SETUP, e))?,
            )
            .map_err(|e| ConnectorError::db(names::S2V_SETUP, e))?;
    }

    // Decide the parallelism (a coalesce when reducing, per Sec. 3.2).
    let current_parts = df.num_partitions()?;
    let df = match opts.num_partitions {
        Some(n) if n < current_parts => df.coalesce(n)?,
        Some(n) if n > current_parts => df.repartition(n)?,
        _ => df.clone(),
    };
    let partitions = df.num_partitions()?;

    // Create the protocol tables.
    let tables = JobTables {
        staging: format!("{job_name}_staging"),
        status: format!("{job_name}_status"),
        committer: format!("{job_name}_committer"),
    };
    let target_def = cluster
        .table_def(&target)
        .map_err(|e| ConnectorError::db(names::S2V_SETUP, e))?;

    // Sec. 5 future-work optimization: pre-hash the DataFrame to the
    // target's segmentation so partition `p` holds exactly the rows
    // node `p % N` owns — its task then connects there and the bulk
    // load induces zero database-internal shuffle.
    let df = if opts.prehash && target_def.is_segmented() {
        prehash_dataframe(ctx, cluster, &df, &target_def, partitions)?
    } else {
        df
    };
    if !cluster.has_table(&tables.staging) {
        cluster
            .create_table(
                TableDef::new(
                    &tables.staging,
                    target_def.schema.clone(),
                    target_def.segmentation.clone(),
                )
                .map_err(|e| ConnectorError::db(names::S2V_SETUP, e))?
                .temp(),
            )
            .map_err(|e| ConnectorError::db(names::S2V_SETUP, e))?;
    }
    // The setup DDL/DML is guarded by existence checks, so a retry after
    // a commit-then-lost-ack replays as a no-op instead of "table
    // exists" / duplicate status rows.
    let setup_span = obs::global().span_start(names::S2V_SETUP, trace);
    driver.set_trace(setup_span);
    driver.run(names::S2V_SETUP, |session| {
        let db = |e: DbError| ConnectorError::db(names::S2V_SETUP, e);
        if !session.cluster().has_table(&tables.status) {
            session
                .execute(&format!(
                    "CREATE TEMP TABLE {} (task_id INT NOT NULL, rows_loaded INT, \
                     rows_rejected INT, done BOOLEAN, reject_sample VARCHAR) \
                     UNSEGMENTED ALL NODES",
                    tables.status
                ))
                .map_err(db)?;
        }
        if !session.cluster().has_table(&tables.committer) {
            session
                .execute(&format!(
                    "CREATE TEMP TABLE {} (task_id INT) UNSEGMENTED ALL NODES",
                    tables.committer
                ))
                .map_err(db)?;
        }
        session
            .execute(&format!(
                "CREATE TABLE IF NOT EXISTS {FINAL_STATUS_TABLE} \
                 (job_name VARCHAR NOT NULL, failed_pct FLOAT, status VARCHAR) \
                 UNSEGMENTED ALL NODES"
            ))
            .map_err(db)?;
        // One status row per task (done=false) and one in-progress final
        // status row, in one transaction, only if a previous attempt
        // didn't already write them.
        session.begin().map_err(db)?;
        let seeded = session
            .execute(&format!("SELECT COUNT(*) FROM {}", tables.status))
            .map_err(db)?
            .rows()
            .map_err(db)?
            .rows[0]
            .get(0)
            .as_i64()?;
        if seeded == 0 && partitions > 0 {
            let values: Vec<String> = (0..partitions)
                .map(|p| format!("({p}, 0, 0, FALSE, '')"))
                .collect();
            session
                .execute(&format!(
                    "INSERT INTO {} VALUES {}",
                    tables.status,
                    values.join(", ")
                ))
                .map_err(db)?;
        }
        let registered = session
            .execute(&format!(
                "SELECT COUNT(*) FROM {FINAL_STATUS_TABLE} WHERE job_name = '{job_name}'"
            ))
            .map_err(db)?
            .rows()
            .map_err(db)?
            .rows[0]
            .get(0)
            .as_i64()?;
        if registered == 0 {
            session
                .execute(&format!(
                    "INSERT INTO {FINAL_STATUS_TABLE} VALUES ('{job_name}', 0.0, 'in_progress')"
                ))
                .map_err(db)?;
        }
        session.commit().map_err(db)?;
        Ok(())
    })?;
    obs::global().span_finish(setup_span, |s| {
        s.node = Some(host as u64);
        s.detail = format!("protocol tables for {job_name}");
    });
    cluster
        .recorder()
        .setup(None, NodeRef::Db(host), "s2v_setup_tables");

    // Node addresses are looked up once so tasks spread connections.
    let up_nodes = cluster.up_nodes();
    if up_nodes.is_empty() {
        return Err(ConnectorError::NoLiveNodes);
    }

    // ----- the job ----------------------------------------------------
    let rdd = df.rdd()?;
    let schema = df.schema().clone();
    let avro_schema = AvroSchema::from_schema(&target, &schema);
    let tolerance = opts.failed_rows_percent_tolerance;
    let copy_direct = opts.copy_direct;
    let failover = opts.failover;
    let retry = opts.retry.clone();
    let cluster_for_tasks = Arc::clone(cluster);
    let tables_ref = &tables;
    let job_ref = job_name.as_str();
    let target_ref = target.as_str();
    let up_nodes_ref = &up_nodes;
    let avro_ref = &avro_schema;
    let retry_ref = &retry;

    let pool_ref = opts.resource_pool.as_deref();
    let acc = PhaseAcc::default();
    let acc_ref = &acc;
    let tracker_ref = &tracker;
    let outcomes = ctx.run_job_traced(&rdd, trace, move |tc, rows| {
        acc_ref.engine_job_id.store(tc.job_id, Ordering::Release);
        run_task_phases(
            &cluster_for_tasks,
            tc,
            rows,
            avro_ref,
            tables_ref,
            job_ref,
            target_ref,
            up_nodes_ref,
            tolerance,
            copy_direct,
            mode,
            partitions,
            pool_ref,
            retry_ref,
            failover,
            deadline,
            tracker_ref,
            acc_ref,
        )
        .map_err(SparkError::from)
    })?;

    // ----- driver wrap-up ---------------------------------------------
    let mut committed: Option<(u64, u64, u64)> = None;
    for (task, outcome) in outcomes.iter().enumerate() {
        match outcome {
            TaskEnd::Committed { loaded, rejected } => {
                committed = Some((task as u64, *loaded, *rejected));
            }
            TaskEnd::ToleranceExceeded { loaded, rejected } => {
                return Err(ConnectorError::Tolerance {
                    job: job_name.clone(),
                    loaded: *loaded,
                    rejected: *rejected,
                    tolerance,
                });
            }
            TaskEnd::Done => {}
        }
    }
    // When the committer's attempt was killed *after* phase 5 committed
    // (the post-commit failure of Sec. 2.2.2), its retry sees "finished"
    // and reports Done — recover the outcome from the durable final
    // status table, which is the ground truth.
    let finalize_span = obs::global().span_start(names::S2V_FINALIZE, trace);
    driver.set_trace(finalize_span);
    let (committer_task, rows_loaded, rows_rejected) = match committed {
        Some(c) => c,
        None => driver.run(names::S2V_FINALIZE, |session| {
            let db = |e: DbError| ConnectorError::db(names::S2V_FINALIZE, e);
            let status = session
                .execute(&format!(
                    "SELECT status FROM {FINAL_STATUS_TABLE} WHERE job_name = '{job_name}'"
                ))
                .map_err(db)?
                .rows()
                .map_err(db)?;
            let finished = status
                .rows
                .first()
                .map(|r| r.get(0) == &Value::Varchar("finished".into()))
                .unwrap_or(false);
            if !finished {
                return Err(ConnectorError::Protocol(format!(
                    "S2V job {job_name}: no task committed (job incomplete)"
                )));
            }
            let totals = session
                .execute(&format!(
                    "SELECT SUM(rows_loaded), SUM(rows_rejected) FROM {}",
                    tables.status
                ))
                .map_err(db)?
                .rows()
                .map_err(db)?;
            let winner = session
                .execute(&format!("SELECT task_id FROM {} LIMIT 1", tables.committer))
                .map_err(db)?
                .rows()
                .map_err(db)?;
            Ok((
                winner.rows[0].get(0).as_i64()? as u64,
                totals.rows[0].get(0).as_i64()? as u64,
                totals.rows[0].get(1).as_i64()? as u64,
            ))
        })?,
    };

    // Harvest the rejected-row samples before the temp tables go away.
    let rejected_samples = driver.run(names::S2V_FINALIZE, |session| {
        let sample_rows = session
            .execute(&format!(
                "SELECT task_id, reject_sample FROM {} WHERE rows_rejected > 0 \
                 ORDER BY task_id",
                tables.status
            ))
            .map_err(|e| ConnectorError::db(names::S2V_FINALIZE, e))?
            .rows()
            .map_err(|e| ConnectorError::db(names::S2V_FINALIZE, e))?;
        Ok(sample_rows
            .rows
            .iter()
            .filter_map(|r| {
                Some((
                    r.get(0).as_i64().ok()? as u64,
                    r.get(1).as_str().ok()?.to_string(),
                ))
            })
            .collect::<Vec<(u64, String)>>())
    })?;
    obs::global().span_finish(finalize_span, |s| {
        s.node = Some(host as u64);
        s.detail = format!("committer task {committer_task}");
    });

    // Temp protocol tables are deleted on success; the final status
    // table is permanent.
    let teardown_span = obs::global().span_start("s2v.teardown", trace);
    for t in [&tables.staging, &tables.status, &tables.committer] {
        cluster
            .drop_table(t)
            .map_err(|e| ConnectorError::db("s2v.teardown", e))?;
    }
    obs::global().span_finish(teardown_span, |s| {
        s.node = Some(host as u64);
        s.detail = "dropped protocol tables".to_string();
    });
    cluster
        .recorder()
        .setup(None, NodeRef::Db(host), "s2v_teardown_tables");

    obs::global().add("s2v.jobs", 1);
    obs::global().add("s2v.rows_loaded", rows_loaded);
    obs::global().add("s2v.rows_rejected", rows_rejected);
    obs::global().record_time("s2v.save_us", save_started.elapsed());

    Ok(S2vReport {
        job_name,
        rows_loaded,
        rows_rejected,
        committer_task,
        rejected_samples,
        engine_job_id: acc.engine_job_id.load(Ordering::Acquire),
        phase_us: acc.snapshot_us(),
        trace: trace.trace,
    })
}

/// Shuffle the DataFrame so partition `p` holds exactly the rows owned
/// by database node `p % N` under the target's segmentation — the
/// paper's Sec. 5 pre-hashing. The engine-side shuffle it costs is
/// recorded (ring pattern over the compute NICs); the database-internal
/// shuffle it saves simply never happens.
fn prehash_dataframe(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    df: &DataFrame,
    def: &TableDef,
    partitions: usize,
) -> ConnectorResult<DataFrame> {
    let map = cluster.segment_map();
    let members = map.members();
    let n = members.len();
    if partitions < n {
        return Err(ConnectorError::Usage(format!(
            "prehash requires numPartitions >= the {n} database nodes"
        )));
    }
    // Owner-aligned connections need up_nodes == members exactly: a
    // down member breaks a bucket's home connection, and an extra live
    // non-member (a mid-rebalance staging node) shifts the
    // partition -> node mapping the tasks use.
    if cluster.up_nodes() != members {
        return Err(ConnectorError::Protocol(
            "prehash requires every member node up (owner-aligned connections)".into(),
        ));
    }
    let rows = df.collect()?;
    let shuffled_bytes: u64 = rows.iter().map(|r| r.wire_size() as u64).sum();

    let mut buckets: Vec<Vec<common::Row>> = vec![Vec::new(); partitions];
    let mut cursor = vec![0usize; n];
    for row in rows {
        // Hash exactly what the insert path will hash: the coerced row.
        let coerced: Vec<Value> = row
            .values()
            .iter()
            .zip(def.schema.fields())
            .map(|(v, f)| v.clone().coerce(f.dtype).unwrap_or(Value::Null))
            .collect();
        let owner = map.owner_of_hash(common::hash::hash_row_columns(
            &common::Row::new(coerced),
            &def.seg_columns,
        ));
        // Node ids stay stable across membership changes, so the owner
        // id can exceed the member count; bucket math runs on the
        // owner's *member index*, which matches the round-robin
        // partition -> node assignment the tasks connect with.
        let idx = members
            .binary_search(&owner)
            // fabriclint: allow(panic-hygiene): owner_of_hash only returns segment owners, all members
            .expect("segment owner is a member");
        // Buckets for this owner are idx, idx+n, idx+2n, ...
        let per_owner = (partitions - idx).div_ceil(n);
        let bucket = idx + cursor[idx] * n;
        cursor[idx] = (cursor[idx] + 1) % per_owner;
        buckets[bucket].push(row);
    }

    // Charge the engine-side shuffle: ~(1-1/C) of the bytes cross the
    // compute cluster's links, pipelined with the rest of setup.
    let compute = ctx.conf().nodes;
    if compute > 1 {
        let per_link = shuffled_bytes * (compute as u64 - 1) / (compute as u64 * compute as u64);
        for i in 0..compute {
            cluster.recorder().transfer(
                None,
                NodeRef::Compute(i),
                NodeRef::Compute((i + 1) % compute),
                netsim::record::NetClass::DbInternal,
                per_link,
                0,
            );
        }
    }

    Ok(DataFrame::from_partitions(
        ctx.clone(),
        df.schema().clone(),
        buckets,
    )?)
}

/// The five phases of one task (Fig. 5). Runs once per attempt; every
/// phase re-checks durable state so reruns, duplicates, and
/// connection-level retries are harmless. Each phase runs on a
/// [`RetryConn`]: a transient failure drops the session (aborting the
/// phase's open transaction) and the retry reconnects, preferring the
/// task's node but failing over to its buddies.
#[allow(clippy::too_many_arguments)]
fn run_task_phases(
    cluster: &Arc<Cluster>,
    tc: &sparklet::TaskContext,
    rows: Vec<common::Row>,
    avro_schema: &AvroSchema,
    tables: &JobTables,
    job_name: &str,
    target: &str,
    up_nodes: &[usize],
    tolerance: f64,
    copy_direct: bool,
    mode: SaveMode,
    partitions: usize,
    resource_pool: Option<&str>,
    retry: &RetryPolicy,
    failover: bool,
    deadline: Option<Deadline>,
    tracker: &Arc<HealthTracker>,
    acc: &PhaseAcc,
) -> ConnectorResult<TaskEnd> {
    let p = tc.partition;
    let preferred = up_nodes[p % up_nodes.len()];
    // The deadline is checked before every phase attempt (inside the
    // retry loop), so an expired budget fails the next phase boundary
    // instead of grinding through the remaining protocol steps.
    let mut conn = RetryConn::new(Arc::clone(cluster), preferred, retry.clone())
        .with_pool(resource_pool.map(str::to_string))
        .with_task_tag(Some(p as u64))
        .with_deadline(deadline)
        .with_health(Arc::clone(tracker))
        .with_trace(tc.trace);
    if !failover {
        conn = conn.pinned();
    }
    cluster
        .recorder()
        .setup(Some(p as u64), NodeRef::Db(preferred), "s2v_connect");

    // One S2vPhase event (+ span finish + timer + report accumulation)
    // per phase exit; `detail` says how the phase ended so the event
    // log (and span tree) reads as the Fig. 5 walk of each attempt.
    let mark = |span: obs::TraceCtx,
                phase: usize,
                node: usize,
                started: Instant,
                failed: bool,
                detail: String| {
        let dur = started.elapsed();
        obs::global().span_finish(span, |s| {
            s.task = Some(p as u64);
            s.attempt = tc.attempt;
            s.node = Some(node as u64);
            s.failed = failed;
            s.detail = detail.clone();
        });
        obs::global().emit(obs::EventKind::S2vPhase, |e| {
            e.job = Some(job_name.to_string());
            e.task = Some(p as u64);
            e.node = Some(node as u64);
            e.dur_us = dur.as_micros() as u64;
            e.detail = detail;
        });
        obs::global().record_time(names::S2V_PHASE_TIMERS[phase - 1], dur);
        acc.record(phase, dur);
    };

    // ----- Phase 1: save into staging + conditional done flag --------
    conn.run("s2v.phase1", |session| {
        let db = |e: DbError| ConnectorError::db("s2v.phase1", e);
        let span = obs::global().span_start("s2v.phase1", tc.trace);
        session.set_trace(span);
        let started = Instant::now();
        let node = session.node();
        session.begin().map_err(db)?;
        match phase1_save(
            cluster,
            session,
            tc,
            &rows,
            avro_schema,
            tables,
            node,
            copy_direct,
        ) {
            Ok(true) => {
                session.commit().map_err(db)?;
                mark(
                    span,
                    1,
                    node,
                    started,
                    false,
                    format!("phase 1 saved partition {p}"),
                );
                Ok(())
            }
            Ok(false) => {
                // A duplicate attempt already saved this partition;
                // discard our staged copy.
                session.rollback().map_err(db)?;
                mark(
                    span,
                    1,
                    node,
                    started,
                    false,
                    format!("phase 1 duplicate of {p}, rolled back"),
                );
                Ok(())
            }
            Err(e) => {
                let e = db(e);
                mark(span, 1, node, started, true, format!("phase 1 failed: {e}"));
                Err(e)
            }
        }
    })?;

    // ----- Phase 2: are all tasks done? -------------------------------
    let not_done = conn.run("s2v.phase2", |session| {
        let db = |e: DbError| ConnectorError::db("s2v.phase2", e);
        let span = obs::global().span_start("s2v.phase2", tc.trace);
        let started = Instant::now();
        let node = session.node();
        let not_done = session
            .execute(&format!(
                "SELECT COUNT(*) FROM {} WHERE done = FALSE",
                tables.status
            ))
            .map_err(db)?
            .rows()
            .map_err(db)?
            .rows[0]
            .get(0)
            .as_i64()?;
        let detail = if not_done > 0 {
            format!("phase 2: {not_done} tasks pending, terminating")
        } else {
            "phase 2: all tasks done".to_string()
        };
        mark(span, 2, node, started, false, detail);
        Ok(not_done)
    })?;
    if not_done > 0 {
        return Ok(TaskEnd::Done);
    }
    debug_assert!(partitions > 0);

    // ----- Phase 3: race to become the last committer -----------------
    conn.run("s2v.phase3", |session| {
        let db = |e: DbError| ConnectorError::db("s2v.phase3", e);
        let span = obs::global().span_start("s2v.phase3", tc.trace);
        let started = Instant::now();
        let node = session.node();
        session.begin().map_err(db)?;
        let committer_count = session
            .execute(&format!("SELECT COUNT(*) FROM {}", tables.committer))
            .map_err(db)?
            .rows()
            .map_err(db)?
            .rows[0]
            .get(0)
            .as_i64()?;
        if committer_count == 0 {
            session
                .execute(&format!("INSERT INTO {} VALUES ({p})", tables.committer))
                .map_err(db)?;
            session.commit().map_err(db)?;
            mark(
                span,
                3,
                node,
                started,
                false,
                format!("phase 3: task {p} claimed the committer slot"),
            );
        } else {
            session.rollback().map_err(db)?;
            mark(
                span,
                3,
                node,
                started,
                false,
                "phase 3: committer slot taken".to_string(),
            );
        }
        Ok(())
    })?;

    // ----- Phase 4: did we win? ---------------------------------------
    let winner = conn.run("s2v.phase4", |session| {
        let db = |e: DbError| ConnectorError::db("s2v.phase4", e);
        let span = obs::global().span_start("s2v.phase4", tc.trace);
        let started = Instant::now();
        let node = session.node();
        let winner = session
            .execute(&format!("SELECT task_id FROM {} LIMIT 1", tables.committer))
            .map_err(db)?
            .rows()
            .map_err(db)?
            .rows[0]
            .get(0)
            .as_i64()?;
        let detail = if winner != p as i64 {
            format!("phase 4: task {winner} won, terminating")
        } else {
            format!("phase 4: task {p} is the committer")
        };
        mark(span, 4, node, started, false, detail);
        Ok(winner)
    })?;
    if winner != p as i64 {
        return Ok(TaskEnd::Done);
    }

    // ----- Phase 5: tolerance check + final atomic commit -------------
    conn.run("s2v.phase5", |session| {
        let db = |e: DbError| ConnectorError::db("s2v.phase5", e);
        let span = obs::global().span_start("s2v.phase5", tc.trace);
        session.set_trace(span);
        let started = Instant::now();
        let node = session.node();
        session.begin().map_err(db)?;
        let totals = session
            .execute(&format!(
                "SELECT SUM(rows_loaded), SUM(rows_rejected) FROM {}",
                tables.status
            ))
            .map_err(db)?
            .rows()
            .map_err(db)?;
        let loaded = totals.rows[0].get(0).as_i64()? as u64;
        let rejected = totals.rows[0].get(1).as_i64()? as u64;
        let attempted = loaded + rejected;
        let failed_pct = if attempted == 0 {
            0.0
        } else {
            rejected as f64 / attempted as f64
        };

        if failed_pct > tolerance {
            session
                .execute(&format!(
                    "UPDATE {FINAL_STATUS_TABLE} SET failed_pct = {failed_pct}, \
                     status = 'failed_tolerance' WHERE job_name = '{job_name}'"
                ))
                .map_err(db)?;
            session.commit().map_err(db)?;
            mark(
                span,
                5,
                node,
                started,
                true,
                format!("phase 5: tolerance exceeded ({rejected} rejected)"),
            );
            return Ok(TaskEnd::ToleranceExceeded { loaded, rejected });
        }

        // Conditional: only commit if the job is not already finished (a
        // speculative duplicate of the committer — or our own earlier
        // attempt whose commit ack was lost — may have beaten us here).
        let status = session
            .execute(&format!(
                "SELECT status FROM {FINAL_STATUS_TABLE} WHERE job_name = '{job_name}'"
            ))
            .map_err(db)?
            .rows()
            .map_err(db)?;
        let current = status.rows[0].get(0).as_str()?.to_string();
        if current == "finished" {
            session.rollback().map_err(db)?;
            mark(
                span,
                5,
                node,
                started,
                false,
                "phase 5: already finished, terminating".to_string(),
            );
            return Ok(TaskEnd::Done);
        }

        // Commit staging into target. Overwrite is the atomic swap (a
        // constant-time rename in the paper; realized here as a
        // transactional replace with the physical row copy muted in the
        // cost log and charged as a rename); append copies for real —
        // the slower path Sec. 5 discusses.
        match mode {
            SaveMode::Append => {
                let staging_rows = session
                    .query(&QuerySpec::scan(&tables.staging))
                    .map_err(db)?;
                cluster.recorder().work(
                    Some(p as u64),
                    NodeRef::Db(node),
                    "s2v_append_copy",
                    staging_rows.rows.len() as u64,
                    staging_rows.wire_bytes(),
                );
                session.insert(target, staging_rows.rows).map_err(db)?;
            }
            _ => {
                cluster
                    .recorder()
                    .setup(Some(p as u64), NodeRef::Db(node), "s2v_atomic_rename");
                let _mute = cluster.recorder().mute();
                let staging_rows = session
                    .query(&QuerySpec::scan(&tables.staging))
                    .map_err(db)?;
                session
                    .execute(&format!("DELETE FROM {target}"))
                    .map_err(db)?;
                session.insert(target, staging_rows.rows).map_err(db)?;
            }
        }
        session
            .execute(&format!(
                "UPDATE {FINAL_STATUS_TABLE} SET failed_pct = {failed_pct}, \
                 status = 'finished' WHERE job_name = '{job_name}'"
            ))
            .map_err(db)?;
        session.commit().map_err(db)?;
        // The exactly-once witness: this exact detail string appears once
        // per job no matter how many attempts, retries, or speculative
        // duplicates ran — tests/exactly_once.rs asserts on it. (A lost
        // commit ack can suppress it entirely; then the durable final
        // status table is the record.)
        mark(
            span,
            5,
            node,
            started,
            false,
            format!("phase 5 final commit by task {p}, {loaded} loaded"),
        );
        obs::global().add("s2v.final_commits", 1);
        Ok(TaskEnd::Committed { loaded, rejected })
    })
}

/// Phase 1 body (inside an open transaction): encode, ship, COPY, and
/// conditionally flip the done flag. Returns whether the transaction
/// should commit. Takes the rows by reference because the enclosing
/// retry loop may run it more than once.
#[allow(clippy::too_many_arguments)]
fn phase1_save(
    cluster: &Arc<Cluster>,
    session: &mut Session,
    tc: &sparklet::TaskContext,
    rows: &[common::Row],
    avro_schema: &AvroSchema,
    tables: &JobTables,
    node: usize,
    copy_direct: bool,
) -> DbResult<bool> {
    let p = tc.partition;
    let row_count = rows.len() as u64;

    // Encode the partition in the Avro binary format (Sec. 3.2.2).
    let mut writer = Writer::new(avro_schema.clone(), Codec::Rle);
    let mut encode_errors = 0u64;
    for row in rows {
        // Rows that cannot be encoded count as rejected.
        if writer.write_row(row).is_err() {
            encode_errors += 1;
        }
    }
    let payload = writer.finish();
    cluster.recorder().work(
        Some(p as u64),
        NodeRef::Compute(tc.executor_node),
        "avro_encode",
        row_count,
        payload.len() as u64,
    );
    cluster.recorder().transfer(
        Some(p as u64),
        NodeRef::Compute(tc.executor_node),
        NodeRef::Db(node),
        NetClass::External,
        payload.len() as u64,
        row_count,
    );

    // Bulk-load into staging; local rejections are tallied, the global
    // tolerance is enforced by the last committer in phase 5.
    let copy = session.copy(
        &tables.staging,
        CopySource::Avro(payload),
        CopyOptions {
            direct: copy_direct,
            rejected_max: u64::MAX,
        },
    )?;
    let loaded = copy.loaded;
    let rejected = copy.rejected + encode_errors;
    let sample = copy
        .rejected_sample
        .first()
        .map(|(line, reason)| format!("line {line}: {reason}"))
        .unwrap_or_default()
        .replace('\'', "''");

    // Conditional flip of the done flag (the duplicate-save guard).
    let done = session
        .execute(&format!(
            "SELECT done FROM {} WHERE task_id = {p}",
            tables.status
        ))?
        .rows()?;
    if done.rows.is_empty() {
        return Err(DbError::Execution(format!(
            "status row for task {p} missing"
        )));
    }
    if done.rows[0].get(0) == &Value::Boolean(true) {
        return Ok(false);
    }
    session.execute(&format!(
        "UPDATE {} SET done = TRUE, rows_loaded = {loaded}, rows_rejected = {rejected}, \
         reject_sample = '{sample}' WHERE task_id = {p}",
        tables.status
    ))?;
    Ok(true)
}
