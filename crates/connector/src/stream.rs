//! Streaming micro-batch S2V: continuous ingest as a sequence of
//! small, exactly-once COPY jobs.
//!
//! A [`StreamWriter`] buffers rows and flushes a micro-batch whenever
//! either bound from [`IngestMode::Stream`] is hit: `batch_rows`
//! buffered rows (checked on [`append_rows`]) or a buffer older than
//! `flush_ms` (checked on [`poll`]). Every flush is a complete 5-phase
//! S2V job ([`s2v`]) — staging table, task status, committer election,
//! conditional final commit — so each micro-batch individually carries
//! the bulk path's exactly-once guarantee.
//!
//! **Exactly-once across batches** comes from deterministic job names:
//! batch `k` of a writer with base name `b` runs as job `b_mb000k`.
//! The S2V final-status table is keyed by job name and phase 5 commits
//! *conditionally* on the job not being finished, so replaying any
//! prefix of a stream — the recovery story after a crashed driver —
//! re-runs the same job names and every already-committed batch
//! resolves to "already finished": rolled back, no duplicate rows.
//! A crash *between* batches loses nothing (every prior batch fully
//! committed) and a crash *during* a batch leaves that job unfinished
//! (only staging/protocol state, target untouched) for the replay to
//! complete.
//!
//! After each committed batch the writer runs one tuple-mover pass
//! ([`Cluster::mover_pass`], unless `mover.enabled=false`), draining
//! the WOS the trickle load grows and compacting the small ROS
//! containers it creates — the difference `BENCH_stream` measures.
//!
//! [`append_rows`]: StreamWriter::append_rows
//! [`poll`]: StreamWriter::poll
//! [`IngestMode::Stream`]: crate::options::IngestMode::Stream
//! [`s2v`]: crate::s2v

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{Row, Schema};
use mppdb::Cluster;
use sparklet::{DataFrame, SaveMode, SparkContext};

use crate::error::{ConnectorError, ConnectorResult};
use crate::options::{ConnectorOptions, IngestMode, WriteMethod};
use crate::{s2v, SaveReport};

/// Distinguishes concurrent anonymous stream writers; an explicit
/// `job_name` (required for crash-replay recovery) bypasses it.
static STREAM_SEQ: AtomicU64 = AtomicU64::new(1);

/// A handle for continuous ingest into one table. Create with
/// [`StreamWriter::open`], feed with [`StreamWriter::append_rows`],
/// tick with [`StreamWriter::poll`], and close with
/// [`StreamWriter::finish`] to flush the tail and get the aggregate
/// [`SaveReport`].
pub struct StreamWriter {
    ctx: SparkContext,
    cluster: Arc<Cluster>,
    schema: Schema,
    opts: ConnectorOptions,
    /// Mode for batch 0; later batches always append.
    first_mode: SaveMode,
    /// Deterministic job-name prefix: batch `k` runs as `{base}_mb{k:05}`.
    base: String,
    batch_rows: usize,
    flush_age: Duration,
    buf: Vec<Row>,
    /// When the oldest buffered row arrived (drives `flush_ms`).
    buf_since: Option<Instant>,
    /// Ignore-mode short circuit: the target existed at open, so the
    /// whole stream is a no-op.
    ignored: bool,
    // ----- aggregate totals for the final report ---------------------
    batches: u64,
    rows_loaded: u64,
    rows_rejected: u64,
    rejected_samples: Vec<(u64, String)>,
    phase_us: [u64; 5],
    committer_task: Option<u64>,
    engine_job_id: u64,
    trace: obs::TraceId,
}

impl StreamWriter {
    /// Open a stream into `opts.table`, whose rows must match `schema`.
    ///
    /// `opts.ingest` must be [`IngestMode::Stream`] (use
    /// `builder.stream(..)` or the `stream.*` string keys) and
    /// `opts.method` must be the COPY path. `mode` applies to the first
    /// micro-batch exactly as it would to a bulk save: `ErrorIfExists`
    /// fails here if the target exists, `Ignore` turns the whole stream
    /// into a no-op, `Overwrite` truncates once; every later batch
    /// appends.
    pub fn open(
        ctx: &SparkContext,
        cluster: &Arc<Cluster>,
        schema: Schema,
        opts: &ConnectorOptions,
        mode: SaveMode,
    ) -> ConnectorResult<StreamWriter> {
        let IngestMode::Stream {
            batch_rows,
            flush_ms,
        } = opts.ingest
        else {
            return Err(ConnectorError::Usage(
                "StreamWriter::open needs stream ingest mode: set \
                 stream.batch_rows / stream.flush_ms (or builder.stream(..))"
                    .into(),
            ));
        };
        if opts.method == WriteMethod::Dfs {
            return Err(ConnectorError::Usage(
                "streaming ingest requires method=copy: each micro-batch is an \
                 exactly-once COPY job, which the two-stage DFS path cannot provide"
                    .into(),
            ));
        }
        let exists = cluster.has_table(&opts.table);
        let mut ignored = false;
        match mode {
            SaveMode::ErrorIfExists if exists => {
                return Err(ConnectorError::Usage(format!(
                    "table {} already exists (mode=ErrorIfExists)",
                    opts.table
                )))
            }
            SaveMode::Ignore if exists => ignored = true,
            _ => {}
        }
        let base = opts.job_name.clone().unwrap_or_else(|| {
            format!(
                "stream_{}_{}",
                opts.table,
                STREAM_SEQ.fetch_add(1, Ordering::AcqRel)
            )
        });
        Ok(StreamWriter {
            ctx: ctx.clone(),
            cluster: Arc::clone(cluster),
            schema,
            opts: opts.clone(),
            first_mode: mode,
            base,
            batch_rows,
            flush_age: Duration::from_millis(flush_ms),
            buf: Vec::new(),
            buf_since: None,
            ignored,
            batches: 0,
            rows_loaded: 0,
            rows_rejected: 0,
            rejected_samples: Vec::new(),
            phase_us: [0; 5],
            committer_task: None,
            engine_job_id: 0,
            trace: obs::TraceId(0),
        })
    }

    /// The job-name prefix micro-batches run under. Reopening a writer
    /// with the same explicit `job_name` after a crash replays the same
    /// job names, which is what makes recovery exactly-once.
    pub fn job_base(&self) -> &str {
        &self.base
    }

    /// Micro-batches committed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Rows currently buffered (not yet flushed).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Buffer rows, flushing a micro-batch for every `batch_rows` rows
    /// now available. Returns the number of batches flushed.
    pub fn append_rows(&mut self, rows: Vec<Row>) -> ConnectorResult<u64> {
        if self.ignored {
            return Ok(0);
        }
        if self.buf.is_empty() && !rows.is_empty() {
            self.buf_since = Some(Instant::now());
        }
        self.buf.extend(rows);
        let mut flushed = 0;
        while self.buf.len() >= self.batch_rows {
            let batch: Vec<Row> = self.buf.drain(..self.batch_rows).collect();
            self.flush_batch(batch, false)?;
            flushed += 1;
        }
        if self.buf.is_empty() {
            self.buf_since = None;
        } else if flushed > 0 {
            // The remainder started aging when it arrived; keep the
            // existing stamp only if nothing was flushed around it.
            self.buf_since = Some(Instant::now());
        }
        Ok(flushed)
    }

    /// Flush the buffer if it has rows older than `flush_ms` — the
    /// age-based bound that keeps a slow trickle from sitting invisible
    /// in the writer forever. Call this from the ingest loop's timer.
    /// Returns true when a batch was flushed.
    pub fn poll(&mut self) -> ConnectorResult<bool> {
        if self.ignored || self.buf.is_empty() {
            return Ok(false);
        }
        let old_enough = self
            .buf_since
            .is_some_and(|since| since.elapsed() >= self.flush_age);
        if !old_enough {
            return Ok(false);
        }
        let batch = std::mem::take(&mut self.buf);
        self.buf_since = None;
        self.flush_batch(batch, true)?;
        Ok(true)
    }

    /// Flush whatever is buffered and return the aggregate report for
    /// the whole stream: summed rows/phases, `batches` flushed, the
    /// base job name.
    pub fn finish(mut self) -> ConnectorResult<SaveReport> {
        if !self.ignored && !self.buf.is_empty() {
            let batch = std::mem::take(&mut self.buf);
            self.flush_batch(batch, false)?;
        }
        Ok(SaveReport {
            method: WriteMethod::Copy,
            job_name: self.base,
            rows_loaded: self.rows_loaded,
            rows_rejected: self.rows_rejected,
            committer_task: self.committer_task,
            rejected_samples: self.rejected_samples,
            engine_job_id: self.engine_job_id,
            phase_us: self.phase_us,
            part_files: 0,
            staged_bytes: 0,
            batches: self.batches,
            trace: self.trace,
        })
    }

    /// Run one micro-batch as a full exactly-once S2V job.
    fn flush_batch(&mut self, rows: Vec<Row>, aged: bool) -> ConnectorResult<()> {
        let started = Instant::now();
        let parts = self
            .opts
            .num_partitions
            .unwrap_or(4)
            .clamp(1, rows.len().max(1));
        let df = self
            .ctx
            .create_dataframe(rows, self.schema.clone(), parts)?;
        let mut bopts = self.opts.clone();
        bopts.ingest = IngestMode::Bulk;
        // Deterministic per-batch job name: the replay key.
        bopts.job_name = Some(format!("{}_mb{:05}", self.base, self.batches));
        let mode = if self.batches == 0 {
            self.first_mode
        } else {
            SaveMode::Append
        };
        let report = s2v::run(&self.ctx, &self.cluster, &df, &bopts, mode)?;
        obs::global().incr("stream.batches");
        obs::global().add("stream.rows", report.rows_loaded);
        obs::global().record_time("stream.batch_us", started.elapsed());
        if aged {
            obs::global().incr("stream.age_flushes");
        }
        self.batches += 1;
        self.rows_loaded += report.rows_loaded;
        self.rows_rejected += report.rows_rejected;
        self.rejected_samples.extend(report.rejected_samples);
        for (total, phase) in self.phase_us.iter_mut().zip(report.phase_us) {
            *total += phase;
        }
        self.committer_task = Some(report.committer_task);
        self.engine_job_id = report.engine_job_id;
        self.trace = report.trace;
        // Background maintenance rides the ingest cadence: drain the
        // WOS this batch grew and compact the small container it left.
        if self.opts.mover_enabled {
            self.cluster.mover_pass();
        }
        Ok(())
    }
}

/// Save a whole DataFrame through the streaming path: chop it into
/// `batch_rows` micro-batches and run each as an exactly-once COPY job.
/// What `SaveRequest::submit` dispatches to for stream-mode options —
/// the batch-at-rest counterpart of driving a [`StreamWriter`] by hand.
pub(crate) fn save_stream(
    ctx: &SparkContext,
    cluster: &Arc<Cluster>,
    df: &DataFrame,
    opts: &ConnectorOptions,
    mode: SaveMode,
    batch_rows: usize,
) -> ConnectorResult<SaveReport> {
    let mut writer = StreamWriter::open(ctx, cluster, df.schema().clone(), opts, mode)?;
    let rows = df.collect()?;
    for chunk in rows.chunks(batch_rows.max(1)) {
        writer.append_rows(chunk.to_vec())?;
    }
    writer.finish()
}
