//! The two-stage transfer alternative (paper Sec. 5 and the
//! Spark-Redshift connector of Sec. 6): stage the data in a shared DFS
//! first, then move it into the other system in a second step.
//!
//! * **Save**: engine tasks write one columnar part-file per partition
//!   into the DFS; the driver then loads every part into the target
//!   table inside a single database transaction ("bookended by a BEGIN
//!   and END"), which is what gives the approach its exactly-once
//!   semantics.
//! * **Load**: each database node exports its local segment (pinned to
//!   one epoch) as a part-file; the engine reads one partition per
//!   file.
//!
//! Trade-offs, as the paper states them: the landing zone decouples the
//! systems, but every byte is written and read one extra time and the
//! DFS must hold a full copy of the dataset. Our stage 2 is the most
//! conservative reading of the Redshift description — one transactional
//! sequence of loads through a single session — so the measured penalty
//! is an upper bound; engines that fan the final load out across nodes
//! recover some of it. `cargo run -p bench --bin ablation_two_stage`
//! quantifies this against the direct connector.

use std::sync::Arc;

use common::Row;
use dfslite::{colfile, DfsClusterSim};
use mppdb::catalog::{Segmentation, TableDef};
use mppdb::{Cluster, CopyOptions, CopySource, QuerySpec};
use netsim::record::NodeRef;
use sparklet::rdd::PartitionSource;
use sparklet::{DataFrame, Rdd, SparkContext, SparkError, SparkResult};

use crate::error::ConnectorError;
use crate::retry::{with_retry, RetryPolicy};

/// Configuration for a two-stage transfer.
#[derive(Debug, Clone)]
pub struct TwoStageConfig {
    /// DFS directory used as the landing zone.
    pub staging_path: String,
    /// Partition count for the staged files (defaults to the source's).
    pub partitions: Option<usize>,
    /// Database node the driver's bulk load connects through.
    pub host: usize,
    /// Remove the staged files after a successful transfer.
    pub cleanup: bool,
}

impl TwoStageConfig {
    pub fn new(staging_path: impl Into<String>) -> TwoStageConfig {
        TwoStageConfig {
            staging_path: staging_path.into(),
            partitions: None,
            host: 0,
            cleanup: true,
        }
    }
}

/// Outcome of a two-stage save.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageReport {
    pub rows: u64,
    pub part_files: usize,
    pub staged_bytes: u64,
}

fn prefix(path: &str) -> String {
    format!("{}/", path.trim_end_matches('/'))
}

/// Save a DataFrame into `table` via the DFS landing zone — the old
/// DFS-only entry point, superseded by the unified [`SaveRequest`]
/// surface (`method=dfs` selects this path).
///
/// [`SaveRequest`]: crate::SaveRequest
#[deprecated(
    since = "0.2.0",
    note = "use connector::SaveRequest::new(..).with_dfs(..).submit() with \
            method=dfs; this bypasses the unified ingest dispatch"
)]
pub fn save_via_dfs(
    ctx: &SparkContext,
    db: &Arc<Cluster>,
    dfs: &Arc<DfsClusterSim>,
    df: &DataFrame,
    table: &str,
    config: &TwoStageConfig,
) -> SparkResult<TwoStageReport> {
    run_via_dfs(ctx, db, dfs, df, table, config)
}

/// Save a DataFrame into `table` via the DFS landing zone.
pub(crate) fn run_via_dfs(
    ctx: &SparkContext,
    db: &Arc<Cluster>,
    dfs: &Arc<DfsClusterSim>,
    df: &DataFrame,
    table: &str,
    config: &TwoStageConfig,
) -> SparkResult<TwoStageReport> {
    let dir = prefix(&config.staging_path);
    // A half-finished previous attempt may have left files: clear them.
    for f in dfs.list(&dir) {
        dfs.delete(&f)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
    }

    // ----- stage 1: engine tasks write part-files -----------------------
    let df = match config.partitions {
        Some(n) => df.repartition(n)?,
        None => df.clone(),
    };
    let schema = df.schema().clone();
    let rdd = df.rdd()?;
    let dir_for_tasks = dir.clone();
    let dfs_for_tasks = Arc::clone(dfs);
    let schema_for_tasks = schema.clone();
    ctx.run_job(&rdd, move |tc, rows: Vec<Row>| {
        let bytes = colfile::write(&schema_for_tasks, &rows, colfile::DEFAULT_ROW_GROUP);
        let file = format!("{dir_for_tasks}part-{:05}", tc.partition);
        let writer = NodeRef::Compute(tc.executor_node);
        match dfs_for_tasks.create(&file, &bytes, writer, Some(tc.partition as u64)) {
            Ok(()) => Ok(()),
            // A retried task replaces its own partial file.
            Err(dfslite::DfsError::FileExists(_)) => dfs_for_tasks
                .delete(&file)
                .and_then(|_| {
                    dfs_for_tasks.create(&file, &bytes, writer, Some(tc.partition as u64))
                })
                .map_err(|e| SparkError::DataSource(e.to_string())),
            Err(e) => Err(SparkError::DataSource(e.to_string())),
        }
    })?;

    // ----- stage 2: one transactional bulk load ------------------------
    if !db.has_table(table) {
        db.create_table(
            TableDef::new(table, schema.clone(), Segmentation::ByHash(vec![]))
                .map_err(|e| SparkError::DataSource(e.to_string()))?,
        )
        .map_err(|e| SparkError::DataSource(e.to_string()))?;
    }
    let files = dfs.list(&dir);
    // Connecting retries transient refusals; the transactional load
    // itself is deliberately single-attempt — without protocol tables to
    // consult, a retry after a commit-then-lost-ack would load twice.
    let mut session = with_retry(&RetryPolicy::default(), "two_stage.connect", |_| {
        db.connect(config.host)
            .map_err(|e| ConnectorError::db("two_stage.connect", e))
    })
    .map_err(SparkError::from)?;
    session
        .begin()
        .map_err(|e| SparkError::DataSource(e.to_string()))?;
    let mut rows_loaded = 0u64;
    let mut staged_bytes = 0u64;
    let result: SparkResult<()> = (|| {
        for file in &files {
            let bytes = dfs
                .read(file, NodeRef::Db(config.host), None)
                .map_err(|e| SparkError::DataSource(e.to_string()))?;
            staged_bytes += bytes.len() as u64;
            let (_, rows) =
                colfile::read_all(&bytes).map_err(|e| SparkError::DataSource(e.to_string()))?;
            let copy = session
                .copy(table, CopySource::Rows(rows), CopyOptions::default())
                .map_err(|e| SparkError::DataSource(e.to_string()))?;
            rows_loaded += copy.loaded;
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            session
                .commit()
                .map_err(|e| SparkError::DataSource(e.to_string()))?;
        }
        Err(e) => {
            let _ = session.rollback();
            return Err(e);
        }
    }

    if config.cleanup {
        for f in &files {
            let _ = dfs.delete(f);
        }
    }
    Ok(TwoStageReport {
        rows: rows_loaded,
        part_files: files.len(),
        staged_bytes,
    })
}

/// Partition source reading staged part-files (one per partition).
struct StagedFiles {
    dfs: Arc<DfsClusterSim>,
    files: Vec<String>,
    compute_nodes: usize,
}

impl PartitionSource<Row> for StagedFiles {
    fn num_partitions(&self) -> usize {
        self.files.len()
    }

    fn compute(&self, partition: usize) -> SparkResult<Vec<Row>> {
        let reader = NodeRef::Compute(partition % self.compute_nodes);
        let bytes = self
            .dfs
            .read(&self.files[partition], reader, Some(partition as u64))
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        let (_, rows) =
            colfile::read_all(&bytes).map_err(|e| SparkError::DataSource(e.to_string()))?;
        Ok(rows)
    }
}

/// Load `table` into a DataFrame via the DFS landing zone: each
/// database node exports its local segment at one pinned epoch
/// (UNLOAD-style), then the engine reads the files.
pub fn load_via_dfs(
    ctx: &SparkContext,
    db: &Arc<Cluster>,
    dfs: &Arc<DfsClusterSim>,
    table: &str,
    config: &TwoStageConfig,
) -> SparkResult<DataFrame> {
    let dir = prefix(&config.staging_path);
    for f in dfs.list(&dir) {
        dfs.delete(&f)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
    }
    let def = db
        .table_def(table)
        .map_err(|e| SparkError::DataSource(e.to_string()))?;
    let epoch = db.current_epoch();

    // Stage 1: every node exports its segment, consistently.
    let map = db.segment_map();
    for node in db.up_nodes() {
        let mut session = db
            .connect(node)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        let mut spec = QuerySpec::scan(&def.name).at_epoch(epoch);
        if def.is_segmented() {
            spec.hash_range = Some(map.segment_range(node));
        }
        let result = session
            .query(&spec)
            .map_err(|e| SparkError::DataSource(e.to_string()))?;
        let bytes = colfile::write(&def.schema, &result.rows, colfile::DEFAULT_ROW_GROUP);
        dfs.create(
            &format!("{dir}part-{node:05}"),
            &bytes,
            NodeRef::Db(node),
            None,
        )
        .map_err(|e| SparkError::DataSource(e.to_string()))?;
        if !def.is_segmented() {
            // Replicated tables export once.
            break;
        }
    }

    // Stage 2: the engine reads the staged files.
    let source = StagedFiles {
        dfs: Arc::clone(dfs),
        files: dfs.list(&dir),
        compute_nodes: ctx.conf().nodes,
    };
    let rdd = Rdd::from_source(ctx.clone(), Arc::new(source));
    Ok(DataFrame::from_row_rdd(rdd, def.schema))
}
