//! V2S: loading database tables into the compute engine (paper Sec. 3.1).
//!
//! Each engine task formulates a unique query for a non-overlapping
//! subset of the table, and the union of all queries is exactly the
//! table:
//!
//! * **Segmented tables** use the hash ring (Sec. 3.1.2): the segment
//!   boundaries come from the system catalog, each partition is
//!   assigned one or more contiguous hash ranges, and — the key
//!   locality property — every range is requested through a connection
//!   to *the node that owns it*, so no data shuffles between database
//!   nodes.
//! * **Views and unsegmented tables** get *synthetic* ranges (Sec.
//!   3.1.1): row-order windows over the relation's stable output.
//!
//! All queries are pinned to the epoch captured when the relation was
//! opened, so concurrent commits and task retries cannot produce an
//! inconsistent view.
//!
//! Because every V2S query is an idempotent snapshot read, this is the
//! one place hedging is safe: when a piece's primary node runs past the
//! observed P99 (a grey failure), a buddy-node attempt launches and the
//! first result wins. Piece placement consults the per-cluster
//! [`HealthTracker`], so pieces steer away from nodes whose circuit
//! breakers are open before timeouts ever fire.

use std::sync::Arc;
use std::time::{Duration, Instant};

use common::agg::{self, AggRequest, GroupedAccs};
use common::expr::Expr;
use common::{Row, Schema};
use mppdb::segmentation::{HashRange, SegmentMap};
use mppdb::{Cluster, QuerySpec};
use netsim::record::{NetClass, NodeRef};
use obs::names;
use sparklet::rdd::PartitionSource;
use sparklet::{Rdd, ScanRelation, SparkContext, SparkError, SparkResult};

use crate::error::{ConnectorError, ConnectorResult};
use crate::health::{hedged_read, tracker_for, BreakerState, Deadline, HealthTracker};
use crate::options::ConnectorOptions;
use crate::retry::{with_retry_deadline, RetryPolicy};

/// How a relation's rows are divided among partitions.
#[derive(Debug, Clone)]
enum RelationKind {
    /// Hash-segmented table: locality-aware hash ranges.
    Segmented,
    /// View or unsegmented table: synthetic row ranges.
    RowOrdered,
}

/// A loaded database relation (the V2S read side).
pub struct DbRelation {
    cluster: Arc<Cluster>,
    table: String,
    schema: Schema,
    kind: RelationKind,
    /// Epoch pinned at open time — the paper's "same epoch (e.g., last
    /// epoch)" shared by every task's query.
    epoch: u64,
    /// Segment map pinned with the epoch: the version authoritative at
    /// `epoch`. Hash-range plans, locality routing, and buddy failover
    /// all resolve through it, and every piece query asserts its
    /// version — so if the cluster rebalances mid-load, epoch-pinned
    /// pieces keep reading the old owners (which still hold every
    /// pre-flip row) instead of silently racing the new map.
    map: Arc<SegmentMap>,
    num_partitions: usize,
    /// Whether `numPartitions` was set explicitly. When it was not, the
    /// planner sizes scan pieces from the estimated post-pushdown
    /// cardinality instead of the node count.
    explicit_partitions: bool,
    /// Disable zone-map data skipping node-side (`stats_skipping=off`).
    no_skip: bool,
    /// Ship per-piece partial aggregates instead of rows for `agg`
    /// (`agg_pushdown=on`).
    agg_pushdown: bool,
    host: usize,
    resource_pool: Option<String>,
    retry: RetryPolicy,
    failover: bool,
    tracker: Arc<HealthTracker>,
    /// Overall wall-clock budget set at open time; flows into every
    /// catalog query and piece retry loop.
    deadline: Option<Deadline>,
    hedge: bool,
    hedge_delay: Option<Duration>,
    /// The load's `v2s.load` root span: every catalog probe, piece
    /// attempt, and hedge parents under it. Closed when the relation is
    /// dropped.
    trace: obs::TraceCtx,
}

/// One partition's work: queries to issue, each against a specific node.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    pub pieces: Vec<(usize, RangeSpec)>,
}

/// One query's restriction: a hash range (segmented tables), a
/// synthetic row window (views/unsegmented tables), or the whole
/// relation (unsegmented aggregate pushdown, where partial aggregates
/// do not compose with row windows).
#[derive(Debug, Clone)]
pub enum RangeSpec {
    Hash(HashRange),
    Rows(u64, u64),
    Full,
}

impl DbRelation {
    /// Open a relation: resolve the table or view, pin the epoch, and
    /// pick the partition count.
    pub fn open(cluster: Arc<Cluster>, opts: &ConnectorOptions) -> ConnectorResult<DbRelation> {
        let host = opts.host_on(&cluster)?;
        let epoch = cluster.current_epoch();
        let map = cluster.segment_map_at(epoch);
        let num_partitions = opts.num_partitions.unwrap_or(cluster.node_count());
        let tracker = tracker_for(&cluster);
        let deadline = opts.deadline.map(Deadline::within);
        let trace = obs::global().trace_start("v2s.load");
        if let Ok(def) = cluster.table_def(&opts.table) {
            let kind = if def.is_segmented() {
                RelationKind::Segmented
            } else {
                RelationKind::RowOrdered
            };
            return Ok(DbRelation {
                cluster,
                table: def.name.clone(),
                schema: def.schema,
                kind,
                epoch,
                map,
                num_partitions,
                explicit_partitions: opts.num_partitions.is_some(),
                no_skip: !opts.stats_skipping,
                agg_pushdown: opts.agg_pushdown,
                host,
                resource_pool: opts.resource_pool.clone(),
                retry: opts.retry.clone(),
                failover: opts.failover,
                tracker,
                deadline,
                hedge: opts.hedge,
                hedge_delay: opts.hedge_delay,
                trace,
            });
        }
        // A view: discover the schema by executing it with LIMIT 1. The
        // probe is an idempotent catalog read, so it gets the same
        // health steering and hedging as data pieces.
        let candidates = catalog_candidates(&cluster, host, opts.failover);
        let spec = QuerySpec::scan(&opts.table).with_limit(1).at_epoch(epoch);
        let open_span = obs::global().span_start(names::V2S_OPEN, trace);
        let probe = with_retry_deadline(&opts.retry, deadline, names::V2S_OPEN, |attempt| {
            let delay = if opts.hedge {
                tracker.hedge_delay(opts.hedge_delay)
            } else {
                None
            };
            run_steered(
                &tracker,
                &cluster,
                delay,
                names::V2S_OPEN,
                &candidates,
                attempt,
                open_span,
                catalog_exec(&cluster, names::V2S_OPEN, spec.clone(), open_span),
            )
        });
        obs::global().span_finish(open_span, |s| {
            s.failed = probe.is_err();
            s.detail = format!("probe view {}", opts.table);
        });
        let probe = probe?;
        Ok(DbRelation {
            cluster: Arc::clone(&cluster),
            table: opts.table.clone(),
            schema: probe.schema,
            kind: RelationKind::RowOrdered,
            epoch,
            map,
            num_partitions,
            explicit_partitions: opts.num_partitions.is_some(),
            no_skip: !opts.stats_skipping,
            agg_pushdown: opts.agg_pushdown,
            host,
            resource_pool: opts.resource_pool.clone(),
            retry: opts.retry.clone(),
            failover: opts.failover,
            tracker,
            deadline,
            hedge: opts.hedge,
            hedge_delay: opts.hedge_delay,
            trace,
        })
    }

    /// The epoch every partition query is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The load's trace in the global collector.
    pub fn trace_id(&self) -> obs::TraceId {
        self.trace.trace
    }

    /// Render the load's span tree and critical path so far. The
    /// `v2s.load` root stays open until the relation drops, so a live
    /// relation shows it `UNCLOSED` — everything underneath is real.
    pub fn profile(&self) -> String {
        obs::trace::render(&obs::global().trace_spans(self.trace.trace))
    }

    /// Pick the partition count for a scan. An explicit `numPartitions`
    /// always wins; otherwise tables are sized from the zone-map
    /// estimate of the post-pushdown cardinality — enough pieces to keep
    /// every piece under a target row budget, but never fewer than one
    /// per node and never an unbounded fan-out. Views (no table stats)
    /// keep the node-count default.
    fn planned_partitions(&self, filters: &[Expr]) -> usize {
        const TARGET_ROWS_PER_PIECE: u64 = 250_000;
        if self.explicit_partitions {
            return self.num_partitions;
        }
        let predicate = and_filters(filters);
        match mppdb::estimate_scan_rows(&self.cluster, &self.table, predicate.as_ref()) {
            Ok(est) => {
                let nodes = self.cluster.node_count().max(1);
                ((est / TARGET_ROWS_PER_PIECE) as usize).clamp(nodes, nodes * 4)
            }
            // Views have no table stats; keep the default.
            Err(_) => self.num_partitions,
        }
    }

    /// Build the per-partition plans.
    fn plan(&self, partitions: usize) -> ConnectorResult<Vec<PartitionPlan>> {
        match &self.kind {
            RelationKind::Segmented => Ok(plan_hash_partitions(&self.map, partitions)),
            RelationKind::RowOrdered => {
                // Synthetic ranges need the relation's current size at
                // the pinned epoch.
                let candidates = catalog_candidates(&self.cluster, self.host, self.failover);
                let spec = QuerySpec::scan(&self.table).at_epoch(self.epoch).count();
                let plan_span = obs::global().span_start(names::V2S_PLAN, self.trace);
                let total =
                    with_retry_deadline(&self.retry, self.deadline, names::V2S_PLAN, |attempt| {
                        let delay = if self.hedge {
                            self.tracker.hedge_delay(self.hedge_delay)
                        } else {
                            None
                        };
                        run_steered(
                            &self.tracker,
                            &self.cluster,
                            delay,
                            names::V2S_PLAN,
                            &candidates,
                            attempt,
                            plan_span,
                            catalog_exec(&self.cluster, names::V2S_PLAN, spec.clone(), plan_span),
                        )
                    });
                obs::global().span_finish(plan_span, |s| {
                    s.failed = total.is_err();
                    if let Ok(t) = &total {
                        s.rows = t.count;
                    }
                    s.detail = format!("count {}", self.table);
                });
                let total = total?;
                let up = self.cluster.up_nodes();
                if up.is_empty() {
                    return Err(ConnectorError::NoLiveNodes);
                }
                Ok(plan_row_partitions(total.count, partitions, &up))
            }
        }
    }
}

impl Drop for DbRelation {
    fn drop(&mut self) {
        // The relation's lifetime is the load: closing the root here
        // stamps the `v2s.load` duration and feeds its histogram.
        obs::global().span_finish(self.trace, |s| {
            s.detail = format!("load {}", self.table);
        });
    }
}

/// AND a filter list into one predicate.
fn and_filters(filters: &[Expr]) -> Option<Expr> {
    let mut iter = filters.iter().cloned();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, f| acc.and(f)))
}

/// Candidate order for catalog/status queries: the configured host
/// first, then (under failover) every other node.
fn catalog_candidates(cluster: &Cluster, host: usize, failover: bool) -> Vec<usize> {
    let mut order = vec![host];
    if failover {
        for n in 0..cluster.node_count() {
            if n != host {
                order.push(n);
            }
        }
    }
    order
}

/// The exec closure for a catalog/status query: connect to the given
/// node and run the spec. Owned clones only, so hedge attempts can run
/// it on detached threads.
fn catalog_exec(
    cluster: &Arc<Cluster>,
    op: &'static str,
    spec: QuerySpec,
    trace: obs::TraceCtx,
) -> Arc<dyn Fn(usize) -> ConnectorResult<mppdb::QueryResult> + Send + Sync> {
    let cluster = Arc::clone(cluster);
    Arc::new(move |node| {
        let mut session = cluster
            .connect(node)
            .map_err(|e| ConnectorError::db(op, e))?;
        session.set_trace(trace);
        session.query(&spec).map_err(|e| ConnectorError::db(op, e))
    })
}

/// One health-steered attempt of an idempotent read, with an optional
/// hedge.
///
/// `candidates` is the locality-preferred order. Dead nodes are
/// dropped, the rest are stably re-ranked by breaker state (so healthy
/// nodes keep their locality order), and the lead rotates with the
/// attempt number so a sick node cannot monopolize retries. The first
/// node whose breaker admits the call becomes the primary; if every
/// breaker rejects, the head runs anyway — a retry must never strand
/// itself. When a hedge delay is set and a distinct non-open buddy
/// exists, the buddy launches once the primary overruns the delay and
/// the first result wins.
///
/// Every outcome feeds the tracker: successes update the EWMA and close
/// breakers, transient failures trip them. Fatal errors are *not*
/// counted against the node — a syntax error says nothing about node
/// health.
#[allow(clippy::too_many_arguments)]
fn run_steered<T: Send + 'static>(
    tracker: &Arc<HealthTracker>,
    cluster: &Cluster,
    hedge_delay: Option<Duration>,
    op: &'static str,
    candidates: &[usize],
    attempt: u32,
    trace: obs::TraceCtx,
    exec: Arc<dyn Fn(usize) -> ConnectorResult<T> + Send + Sync>,
) -> ConnectorResult<T> {
    let mut order: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&n| cluster.is_node_up(n))
        .collect();
    if order.is_empty() {
        return Err(ConnectorError::NoLiveNodes);
    }
    tracker.reorder(&mut order);
    let lead = (attempt as usize - 1) % order.len();
    order.rotate_left(lead);
    let primary = order
        .iter()
        .copied()
        .find(|&n| tracker.acquire(n))
        .unwrap_or(order[0]);
    let buddy = order
        .iter()
        .copied()
        .find(|&n| n != primary && tracker.state(n) != BreakerState::Open);
    let run: Arc<dyn Fn(usize) -> ConnectorResult<T> + Send + Sync> = {
        let tracker = Arc::clone(tracker);
        Arc::new(move |n: usize| {
            let started = Instant::now();
            match exec(n) {
                Ok(v) => {
                    tracker.record_success(n, started.elapsed());
                    Ok(v)
                }
                Err(e) => {
                    if e.is_transient() {
                        tracker.record_failure(n);
                    }
                    Err(e)
                }
            }
        })
    };
    match (hedge_delay, buddy) {
        (Some(delay), Some(buddy)) => hedged_read(op, delay, primary, buddy, trace, run),
        _ => run(primary),
    }
}

/// Assign hash ranges to partitions per the paper's Fig. 4: with fewer
/// partitions than segments each partition takes a contiguous run of
/// whole segments; with more, each segment is split into equal
/// subranges. Every range is paired with its owning node.
///
/// The returned plan list is the source of truth for partition count:
/// [`HashRange::split`] yields `min(parts, width)` pieces, so a
/// degenerate (narrower-than-parts) segment contributes fewer plans
/// than its share and the Fig. 4(b) total can fall short of
/// `partitions`. Callers must size per-partition state from the
/// returned `Vec` (as [`V2sSource::num_partitions`] does), never from
/// the requested count.
pub fn plan_hash_partitions(map: &SegmentMap, partitions: usize) -> Vec<PartitionPlan> {
    let segs = map.segments();
    let segments = segs.len();
    let mut plans = Vec::with_capacity(partitions);
    if partitions <= segments {
        // Fig. 4(a): contiguous groups of whole segments.
        for p in 0..partitions {
            let lo = segments * p / partitions;
            let hi = segments * (p + 1) / partitions;
            let pieces = (lo..hi)
                .map(|s| (segs[s].owner, RangeSpec::Hash(segs[s].range)))
                .collect();
            plans.push(PartitionPlan { pieces });
        }
    } else {
        // Fig. 4(b): split each segment into per-segment shares.
        let base = partitions / segments;
        let extra = partitions % segments;
        for (s, seg) in segs.iter().enumerate() {
            let parts = base + usize::from(s < extra);
            for sub in seg.range.split(parts) {
                plans.push(PartitionPlan {
                    pieces: vec![(seg.owner, RangeSpec::Hash(sub))],
                });
            }
        }
    }
    plans
}

/// Synthetic row-range assignment for views/unsegmented tables, with
/// connections spread round-robin over the live nodes.
pub fn plan_row_partitions(
    total_rows: u64,
    partitions: usize,
    up_nodes: &[usize],
) -> Vec<PartitionPlan> {
    assert!(!up_nodes.is_empty(), "no live database nodes");
    (0..partitions)
        .map(|p| {
            let lo = total_rows * p as u64 / partitions as u64;
            let hi = total_rows * (p as u64 + 1) / partitions as u64;
            PartitionPlan {
                pieces: vec![(up_nodes[p % up_nodes.len()], RangeSpec::Rows(lo, hi))],
            }
        })
        .collect()
}

/// The RDD partition source: each partition issues its planned queries
/// through its own connection(s) and pulls the results.
struct V2sSource {
    cluster: Arc<Cluster>,
    relation_table: String,
    epoch: u64,
    /// The relation's pinned map (see [`DbRelation::map`]): failover
    /// candidates and the per-spec version assertion come from here.
    map: Arc<SegmentMap>,
    plans: Vec<PartitionPlan>,
    projection: Option<Vec<String>>,
    filters: Vec<Expr>,
    no_skip: bool,
    compute_nodes: usize,
    resource_pool: Option<String>,
    retry: RetryPolicy,
    failover: bool,
    tracker: Arc<HealthTracker>,
    deadline: Option<Deadline>,
    hedge: bool,
    hedge_delay: Option<Duration>,
    /// The relation's `v2s.load` root: piece attempts parent here.
    trace: obs::TraceCtx,
}

/// Everything one piece execution needs, owned, so hedge attempts can
/// run on detached threads.
struct PieceCtx {
    cluster: Arc<Cluster>,
    relation_table: String,
    resource_pool: Option<String>,
    compute_nodes: usize,
    partition: usize,
    /// The piece's locality-preferred owner, for failover accounting.
    preferred: usize,
    spec: QuerySpec,
    /// The map version the piece currently asserts. Starts at the
    /// plan's pinned version; a `StaleSegmentMap` rejection refreshes
    /// it (see [`V2sSource::run_piece`]) so the next attempt carries
    /// the version the engine holds authoritative at the pinned epoch.
    map_version: std::sync::atomic::AtomicU64,
}

/// Execute one piece query against `connect_node` — the hot body shared
/// by the primary and any hedge attempt.
fn exec_piece(
    ctx: &PieceCtx,
    connect_node: usize,
    trace: obs::TraceCtx,
) -> ConnectorResult<mppdb::QueryResult> {
    let mut session = ctx
        .cluster
        .connect(connect_node)
        .map_err(|e| ConnectorError::db(names::V2S_CONNECT, e))?;
    session.set_task_tag(Some(ctx.partition as u64));
    session.set_trace(trace);
    if let Some(pool) = &ctx.resource_pool {
        session
            .set_resource_pool(pool)
            .map_err(|e| ConnectorError::db(names::V2S_CONNECT, e))?;
    }
    ctx.cluster.recorder().setup(
        Some(ctx.partition as u64),
        NodeRef::Db(connect_node),
        "v2s_connect",
    );
    let piece_started = Instant::now();
    let mut spec = ctx.spec.clone();
    if spec.map_version.is_some() {
        spec.map_version = Some(ctx.map_version.load(std::sync::atomic::Ordering::Acquire));
    }
    let spec = &spec;
    // Batched read: the scan stays columnar end to end; rows are
    // only materialized at the Spark partition boundary (compute).
    let result = session
        .query_batched(spec)
        .map_err(|e| ConnectorError::db("v2s.query", e))?;
    // The result set crosses the system boundary to the executor.
    let executor = ctx.partition % ctx.compute_nodes;
    // Result sets cross the boundary in the client protocol's
    // text encoding (what a JDBC result set actually ships).
    let (bytes, rows) = if spec.count_only {
        (8, 1)
    } else {
        (result.text_wire_bytes(), result.num_rows() as u64)
    };
    ctx.cluster.recorder().transfer(
        Some(ctx.partition as u64),
        NodeRef::Db(connect_node),
        NodeRef::Compute(executor),
        NetClass::External,
        bytes,
        rows,
    );
    let pushdown = format!(
        "{}{}{}",
        if spec.count_only {
            "count"
        } else if spec.aggregate.is_some() {
            "aggregate"
        } else {
            "scan"
        },
        if spec.projection.is_some() {
            ", projected"
        } else {
            ""
        },
        if spec.predicate.is_some() {
            ", filtered"
        } else {
            ""
        },
    );
    obs::global().emit(obs::EventKind::V2sPiece, |e| {
        e.task = Some(ctx.partition as u64);
        e.node = Some(connect_node as u64);
        e.rows = rows;
        e.bytes = bytes;
        e.dur_us = piece_started.elapsed().as_micros() as u64;
        e.detail = format!(
            "{} from {} ({pushdown}{})",
            match (spec.hash_range, spec.row_range) {
                (Some(_), _) => "hash range",
                (_, Some(_)) => "row range",
                _ => "full scan",
            },
            ctx.relation_table,
            if connect_node == ctx.preferred {
                ""
            } else {
                ", failover"
            },
        );
    });
    if connect_node != ctx.preferred {
        obs::global().add("failover.reads", 1);
    }
    obs::global().add("v2s.pieces", 1);
    obs::global().add("v2s.rows", rows);
    obs::global().add("v2s.bytes", bytes);
    obs::global().record_histo("v2s.piece_bytes", bytes);
    obs::global().record_time("v2s.piece_us", piece_started.elapsed());
    Ok(result)
}

impl V2sSource {
    /// Failover preference order for a piece whose data lives on `node`:
    /// the owner first (locality), then its k-safety buddies (they hold
    /// replicas of exactly this range), then everyone else (the engine
    /// fans the scan out internally if it must).
    fn candidates(&self, node: usize) -> Vec<usize> {
        let mut order = vec![node];
        if self.failover {
            let k = self.cluster.config().k_safety;
            for b in self.map.buddies(node, k) {
                if !order.contains(&b) {
                    order.push(b);
                }
            }
            for n in 0..self.cluster.node_count() {
                if !order.contains(&n) {
                    order.push(n);
                }
            }
        }
        order
    }

    fn run_piece(
        &self,
        partition: usize,
        node: usize,
        spec: &QuerySpec,
    ) -> ConnectorResult<mppdb::QueryResult> {
        let candidates = self.candidates(node);
        let ctx = Arc::new(PieceCtx {
            cluster: Arc::clone(&self.cluster),
            relation_table: self.relation_table.clone(),
            resource_pool: self.resource_pool.clone(),
            compute_nodes: self.compute_nodes,
            partition,
            preferred: node,
            spec: spec.clone(),
            map_version: std::sync::atomic::AtomicU64::new(spec.map_version.unwrap_or(0)),
        });
        with_retry_deadline(&self.retry, self.deadline, names::V2S_PIECE, |attempt| {
            let delay = if self.hedge {
                self.tracker.hedge_delay(self.hedge_delay)
            } else {
                None
            };
            let ctx = Arc::clone(&ctx);
            let span = obs::global().span_start(names::V2S_PIECE, self.trace);
            let result = run_steered(
                &self.tracker,
                &self.cluster,
                delay,
                names::V2S_PIECE,
                &candidates,
                attempt,
                span,
                Arc::new({
                    let ctx = Arc::clone(&ctx);
                    move |n| exec_piece(&ctx, n, span)
                }),
            );
            // The engine rejected the plan's map version: the cluster
            // rebalanced under the client. Adopt the version it holds
            // authoritative (StaleSegmentMap is transient, so the retry
            // loop re-runs the piece with the refreshed assertion —
            // the epoch pin keeps the ranges themselves valid).
            if let Err(ConnectorError::Db {
                source: mppdb::DbError::StaleSegmentMap { current, .. },
                ..
            }) = &result
            {
                ctx.map_version
                    .store(*current, std::sync::atomic::Ordering::Release);
                obs::global().incr("v2s.map_refresh");
            }
            obs::global().span_finish(span, |s| {
                s.task = Some(partition as u64);
                s.attempt = attempt;
                s.node = Some(node as u64);
                s.failed = result.is_err();
                s.detail = format!("{} piece {partition}", self.relation_table);
            });
            result
        })
    }
}

impl PartitionSource<Row> for V2sSource {
    fn num_partitions(&self) -> usize {
        self.plans.len()
    }

    fn compute(&self, partition: usize) -> SparkResult<Vec<Row>> {
        let _ = self.epoch; // pinned inside each spec
        let mut rows = Vec::new();
        for (node, range) in &self.plans[partition].pieces {
            let spec = build_piece_spec(
                &self.relation_table,
                self.epoch,
                self.map.version(),
                range,
                self.projection.as_deref(),
                &self.filters,
                false,
                self.no_skip,
            );
            rows.extend(
                self.run_piece(partition, *node, &spec)
                    .map_err(SparkError::from)?
                    .into_rows(),
            );
        }
        Ok(rows)
    }
}

#[allow(clippy::too_many_arguments)]
fn build_piece_spec(
    table: &str,
    epoch: u64,
    map_version: u64,
    range: &RangeSpec,
    projection: Option<&[String]>,
    filters: &[Expr],
    count_only: bool,
    no_skip: bool,
) -> QuerySpec {
    let mut spec = QuerySpec::scan(table).at_epoch(epoch);
    match range {
        // Hash ranges only mean something relative to a specific map
        // version, so those pieces assert it; row windows and full
        // scans are map-independent.
        RangeSpec::Hash(r) => {
            spec.hash_range = Some(*r);
            spec.map_version = Some(map_version);
        }
        RangeSpec::Rows(lo, hi) => spec.row_range = Some((*lo, *hi)),
        RangeSpec::Full => {}
    }
    spec.projection = projection.map(|p| p.to_vec());
    spec.predicate = and_filters(filters);
    spec.count_only = count_only;
    spec.no_skip = no_skip;
    spec
}

impl ScanRelation for DbRelation {
    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn scan(
        &self,
        ctx: &SparkContext,
        projection: Option<&[String]>,
        filters: &[Expr],
    ) -> SparkResult<Rdd<Row>> {
        let plans = self
            .plan(self.planned_partitions(filters))
            .map_err(SparkError::from)?;
        let source = V2sSource {
            cluster: Arc::clone(&self.cluster),
            relation_table: self.table.clone(),
            epoch: self.epoch,
            map: Arc::clone(&self.map),
            plans,
            projection: projection.map(|p| p.to_vec()),
            filters: filters.to_vec(),
            no_skip: self.no_skip,
            compute_nodes: ctx.conf().nodes,
            resource_pool: self.resource_pool.clone(),
            retry: self.retry.clone(),
            failover: self.failover,
            tracker: Arc::clone(&self.tracker),
            deadline: self.deadline,
            hedge: self.hedge,
            hedge_delay: self.hedge_delay,
            trace: self.trace,
        };
        Ok(Rdd::from_source(ctx.clone(), Arc::new(source)))
    }

    /// Count pushdown: every partition ships back an 8-byte count
    /// instead of rows.
    fn count(&self, ctx: &SparkContext, filters: &[Expr]) -> SparkResult<u64> {
        let plans = self
            .plan(self.planned_partitions(filters))
            .map_err(SparkError::from)?;
        let source = V2sSource {
            cluster: Arc::clone(&self.cluster),
            relation_table: self.table.clone(),
            epoch: self.epoch,
            map: Arc::clone(&self.map),
            plans,
            projection: None,
            filters: filters.to_vec(),
            no_skip: self.no_skip,
            compute_nodes: ctx.conf().nodes,
            resource_pool: self.resource_pool.clone(),
            retry: self.retry.clone(),
            failover: self.failover,
            tracker: Arc::clone(&self.tracker),
            deadline: self.deadline,
            hedge: self.hedge,
            hedge_delay: self.hedge_delay,
            trace: self.trace,
        };
        let counts = ctx.run_partitions_traced(source.num_partitions(), self.trace, |tc| {
            let mut total = 0u64;
            for (node, range) in &source.plans[tc.partition].pieces {
                let spec = build_piece_spec(
                    &source.relation_table,
                    source.epoch,
                    source.map.version(),
                    range,
                    None,
                    &source.filters,
                    true,
                    source.no_skip,
                );
                total += source
                    .run_piece(tc.partition, *node, &spec)
                    .map_err(SparkError::from)?
                    .count;
            }
            Ok(total)
        })?;
        Ok(counts.into_iter().sum())
    }

    /// Aggregate pushdown: every piece ships back partial accumulator
    /// states (a handful of rows) instead of its matching rows, and the
    /// driver merges each piece's partials exactly once. Retried or
    /// hedged piece attempts cannot double-count — a piece's partials
    /// enter the merge only after its retry loop returns its single
    /// success, so `agg.pushdown.partials_merged` equals the piece
    /// count even when nodes die mid-read.
    fn aggregate(
        &self,
        ctx: &SparkContext,
        filters: &[Expr],
        request: &AggRequest,
    ) -> SparkResult<(Schema, Vec<Row>)> {
        // Views have no node-side aggregate path, and `agg_pushdown=off`
        // forces the materialize-then-aggregate baseline for ablations.
        let is_table = self.cluster.table_def(&self.table).is_ok();
        if !self.agg_pushdown || !is_table {
            let rows = self.scan(ctx, None, filters)?.collect()?;
            return agg::aggregate_rows(&self.schema, &rows, request).map_err(SparkError::from);
        }
        let plans = match self.kind {
            RelationKind::Segmented => {
                // Partials are tiny, so one piece per segment is enough
                // parallelism unless the user asked for more.
                let partitions = if self.explicit_partitions {
                    self.num_partitions
                } else {
                    self.cluster.node_count()
                };
                plan_hash_partitions(&self.map, partitions)
            }
            RelationKind::RowOrdered => {
                // Partial aggregates do not compose with row windows:
                // an unsegmented table runs as one whole-relation piece.
                let up = self.cluster.up_nodes();
                if up.is_empty() {
                    return Err(SparkError::from(ConnectorError::NoLiveNodes));
                }
                vec![PartitionPlan {
                    pieces: vec![(up[0], RangeSpec::Full)],
                }]
            }
        };
        let source = V2sSource {
            cluster: Arc::clone(&self.cluster),
            relation_table: self.table.clone(),
            epoch: self.epoch,
            map: Arc::clone(&self.map),
            plans,
            projection: None,
            filters: filters.to_vec(),
            no_skip: self.no_skip,
            compute_nodes: ctx.conf().nodes,
            resource_pool: self.resource_pool.clone(),
            retry: self.retry.clone(),
            failover: self.failover,
            tracker: Arc::clone(&self.tracker),
            deadline: self.deadline,
            hedge: self.hedge,
            hedge_delay: self.hedge_delay,
            trace: self.trace,
        };
        let request_owned = request.clone();
        let partials: Vec<Vec<Vec<Row>>> =
            ctx.run_partitions_traced(source.num_partitions(), self.trace, |tc| {
                let mut per_piece = Vec::new();
                for (node, range) in &source.plans[tc.partition].pieces {
                    let spec = build_piece_spec(
                        &source.relation_table,
                        source.epoch,
                        source.map.version(),
                        range,
                        None,
                        &source.filters,
                        false,
                        source.no_skip,
                    )
                    .aggregate(request_owned.clone())
                    .partial_aggregates();
                    per_piece.push(
                        source
                            .run_piece(tc.partition, *node, &spec)
                            .map_err(SparkError::from)?
                            .into_rows(),
                    );
                }
                Ok(per_piece)
            })?;
        let key_width = request.group_by.len();
        let mut accs = GroupedAccs::new(request.calls.iter().map(|c| c.func).collect());
        for per_piece in partials {
            for piece_rows in per_piece {
                for row in &piece_rows {
                    accs.absorb_partial_row(row, key_width)
                        .map_err(SparkError::from)?;
                }
                obs::global().add("agg.pushdown.partials_merged", 1);
            }
        }
        if key_width == 0 {
            accs.ensure_global_group();
        }
        let schema = request
            .output_schema(&self.schema)
            .map_err(SparkError::from)?;
        Ok((schema, accs.finalize_rows()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_partitions_take_whole_segments() {
        let map = SegmentMap::new(4);
        let plans = plan_hash_partitions(&map, 2);
        assert_eq!(plans.len(), 2);
        // Fig. 4(a): each partition requests 2 whole segments.
        assert_eq!(plans[0].pieces.len(), 2);
        assert_eq!(plans[1].pieces.len(), 2);
        // Locality: each piece targets the segment's owner.
        for plan in &plans {
            for (node, range) in &plan.pieces {
                let RangeSpec::Hash(r) = range else { panic!() };
                assert_eq!(*r, map.segment_range(*node));
            }
        }
    }

    #[test]
    fn more_partitions_split_segments() {
        let map = SegmentMap::new(4);
        let plans = plan_hash_partitions(&map, 8);
        assert_eq!(plans.len(), 8);
        // Fig. 4(b): each partition gets half a segment, all local.
        for plan in &plans {
            assert_eq!(plan.pieces.len(), 1);
            let (node, RangeSpec::Hash(r)) = &plan.pieces[0] else {
                panic!()
            };
            assert!(map.segment_range(*node).intersect(r).is_some());
            let owner_lo = map.owner_of_hash(r.start);
            assert_eq!(owner_lo, *node, "range is local to its node");
        }
    }

    #[test]
    fn hash_plans_tile_the_ring_exactly() {
        for (segments, partitions) in [(4, 1), (4, 3), (4, 4), (4, 7), (4, 32), (3, 8), (8, 256)] {
            let map = SegmentMap::new(segments);
            let plans = plan_hash_partitions(&map, partitions);
            let mut ranges: Vec<HashRange> = plans
                .iter()
                .flat_map(|p| {
                    p.pieces.iter().map(|(_, r)| match r {
                        RangeSpec::Hash(h) => *h,
                        _ => panic!("hash plan expected"),
                    })
                })
                .collect();
            ranges.sort_by_key(|r| r.start);
            assert_eq!(ranges[0].start, 0, "{segments}:{partitions}");
            assert_eq!(ranges.last().unwrap().end, None);
            for w in ranges.windows(2) {
                assert_eq!(
                    w[0].end,
                    Some(w[1].start),
                    "gap/overlap at {segments}:{partitions}"
                );
            }
        }
    }

    #[test]
    fn row_plans_cover_all_rows() {
        let plans = plan_row_partitions(100, 7, &[0, 1, 2, 3]);
        assert_eq!(plans.len(), 7);
        let mut covered = 0u64;
        for plan in &plans {
            let (_, RangeSpec::Rows(lo, hi)) = &plan.pieces[0] else {
                panic!()
            };
            covered += hi - lo;
        }
        assert_eq!(covered, 100);
        // Nodes round-robin.
        let nodes: Vec<usize> = plans.iter().map(|p| p.pieces[0].0).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1, 2]);
    }

    #[test]
    fn stale_map_version_refreshes_and_retries() {
        use common::{row, DataType};
        use mppdb::{ClusterConfig, Segmentation, TableDef};

        let cluster = Arc::new(Cluster::new(ClusterConfig::default()));
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Float64)]);
        cluster
            .create_table(
                TableDef::new("stale", schema, Segmentation::ByHash(vec!["id".into()])).unwrap(),
            )
            .unwrap();
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, 0.5f64]).collect();
        cluster.connect(0).unwrap().insert("stale", rows).unwrap();

        let epoch = cluster.current_epoch();
        let map = cluster.segment_map_at(epoch);
        let owner = map.segments()[0].owner;
        let range = map.segments()[0].range;
        let source = V2sSource {
            cluster: Arc::clone(&cluster),
            relation_table: "stale".into(),
            epoch,
            map: Arc::clone(&map),
            plans: vec![PartitionPlan {
                pieces: vec![(owner, RangeSpec::Hash(range))],
            }],
            projection: None,
            filters: Vec::new(),
            no_skip: false,
            compute_nodes: 2,
            resource_pool: None,
            retry: RetryPolicy::default(),
            failover: false,
            tracker: Arc::new(HealthTracker::new(cluster.node_count())),
            deadline: None,
            hedge: false,
            hedge_delay: None,
            trace: obs::TraceCtx::NONE,
        };
        // A spec asserting a version the engine never published: the
        // first attempt is rejected with `StaleSegmentMap`, the piece
        // adopts the engine's authoritative version, and the retry
        // succeeds against the same epoch-pinned ranges.
        let mut spec = build_piece_spec(
            "stale",
            epoch,
            99,
            &RangeSpec::Hash(range),
            None,
            &[],
            false,
            false,
        );
        assert_eq!(spec.map_version, Some(99));
        let before = obs::global().snapshot();
        let result = source.run_piece(0, owner, &spec).unwrap();
        assert!(result.num_rows() > 0);
        let delta = obs::global().snapshot().counters_since(&before);
        assert!(delta.get("v2s.map_refresh").copied().unwrap_or(0) >= 1);
        // The correct version passes on the first attempt — no refresh.
        spec.map_version = Some(map.version());
        let before = obs::global().snapshot();
        source.run_piece(0, owner, &spec).unwrap();
        let delta = obs::global().snapshot().counters_since(&before);
        assert_eq!(delta.get("v2s.map_refresh").copied().unwrap_or(0), 0);
    }

    #[test]
    fn and_filters_combines() {
        assert!(and_filters(&[]).is_none());
        let one = and_filters(&[Expr::col("a").gt(Expr::lit(1i64))]).unwrap();
        assert_eq!(one.to_sql(), "(a > 1)");
        let two = and_filters(&[
            Expr::col("a").gt(Expr::lit(1i64)),
            Expr::col("b").lt(Expr::lit(2i64)),
        ])
        .unwrap();
        assert_eq!(two.to_sql(), "((a > 1) AND (b < 2))");
    }
}
