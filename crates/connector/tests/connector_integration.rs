//! End-to-end connector tests: the paper's correctness claims.

use std::sync::Arc;

use common::{row, DataType, Expr, Row, Schema, Value};
use connector::{DefaultSource, ModelDeployment, DEFAULT_SOURCE};
use mppdb::{Cluster, ClusterConfig, QuerySpec};
use netsim::record::NetClass;
use sparklet::{FailureMode, Options, SaveMode, SparkConf, SparkContext};

fn setup() -> (SparkContext, Arc<Cluster>) {
    let cluster = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 8,
        cores_per_node: 4,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, Arc::clone(&cluster));
    (ctx, cluster)
}

fn d1_schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Int64),
        ("a", DataType::Float64),
        ("b", DataType::Float64),
    ])
}

fn d1_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| row![i as i64, i as f64 / 7.0, (i * i) as f64 / 13.0])
        .collect()
}

fn save_options(table: &str, partitions: usize) -> Options {
    Options::new()
        .with("host", 0)
        .with("table", table)
        .with("numPartitions", partitions)
}

#[test]
fn s2v_then_v2s_round_trip() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(500), d1_schema(), 10).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("roundtrip", 16))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    // Exactly once: the row count in the database matches.
    let mut session = cluster.connect(0).unwrap();
    let count = session
        .query(&QuerySpec::scan("roundtrip").count())
        .unwrap()
        .count;
    assert_eq!(count, 500);

    // Load it back through V2S and compare contents.
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("host", 1)
        .option("table", "roundtrip")
        .option("numPartitions", 32)
        .load()
        .unwrap();
    assert_eq!(loaded.count().unwrap(), 500);
    let mut rows = loaded.collect().unwrap();
    rows.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(rows, d1_rows(500));
}

#[test]
fn v2s_pushdown_filters_and_projections() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(300), d1_schema(), 8).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("pushme", 8))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    cluster.recorder().clear();
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "pushme")
        .option("numPartitions", 8)
        .load()
        .unwrap();
    let filtered = loaded
        .filter(Expr::col("id").lt(Expr::lit(30i64)))
        .unwrap()
        .select(&["id", "a"])
        .unwrap();
    let rows = filtered.collect().unwrap();
    assert_eq!(rows.len(), 30);
    assert!(rows.iter().all(|r| r.len() == 2));

    // Pushdown means only the filtered, projected bytes crossed the
    // boundary: far less than the full table.
    let external = cluster.recorder().total_bytes(NetClass::External);
    let full_size: u64 = d1_rows(300).iter().map(|r| r.wire_size() as u64).sum();
    assert!(
        external < full_size / 3,
        "pushdown shipped {external} bytes of a {full_size}-byte table"
    );

    // Count pushdown ships only counts.
    cluster.recorder().clear();
    let n = loaded
        .filter(Expr::col("id").lt(Expr::lit(30i64)))
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 30);
    let external = cluster.recorder().total_bytes(NetClass::External);
    assert!(external <= 8 * 8, "count pushdown shipped {external} bytes");
}

#[test]
fn v2s_induces_no_internal_shuffle() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(400), d1_schema(), 8).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("local", 8))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    cluster.recorder().clear();
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "local")
        .option("numPartitions", 16)
        .load()
        .unwrap();
    assert_eq!(loaded.collect().unwrap().len(), 400);
    // The locality-aware hash-range queries only touch node-local
    // segments: zero internal traffic (the paper's Sec. 3.1.2 claim).
    assert_eq!(cluster.recorder().total_bytes(NetClass::DbInternal), 0);
}

#[test]
fn v2s_snapshot_isolated_from_concurrent_commits() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(100), d1_schema(), 4).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("snap", 8))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    // Open the relation (pins the epoch)...
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "snap")
        .option("numPartitions", 8)
        .load()
        .unwrap();
    // ...then mutate the table before the scan actually runs.
    let mut session = cluster.connect(2).unwrap();
    session.execute("DELETE FROM snap WHERE id < 50").unwrap();
    session
        .execute("INSERT INTO snap VALUES (1000, 0.0, 0.0)")
        .unwrap();

    // The load still sees the pinned snapshot: all 100 original rows.
    let rows = loaded.collect().unwrap();
    assert_eq!(rows.len(), 100);
    assert!(rows.iter().all(|r| r.get(0).as_i64().unwrap() < 1000));
    // A fresh relation sees the new state.
    let fresh = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "snap")
        .load()
        .unwrap();
    assert_eq!(fresh.count().unwrap(), 51);
}

#[test]
fn v2s_task_retries_do_not_change_the_result() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(200), d1_schema(), 4).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("retry_read", 8))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let _ = cluster;

    ctx.failures().fail_task(0, 1, FailureMode::BeforeWork);
    ctx.failures().fail_task(3, 1, FailureMode::AfterWork);
    ctx.failures().speculate(5, 1);
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "retry_read")
        .option("numPartitions", 8)
        .load()
        .unwrap();
    let mut rows = loaded.collect().unwrap();
    ctx.failures().clear();
    rows.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(rows, d1_rows(200));
}

#[test]
fn s2v_exactly_once_under_task_failures_and_speculation() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(600), d1_schema(), 12).unwrap();

    // Partition 2 dies before work; partition 7 does all its work and
    // then dies (the paper's post-commit failure); partitions 1 and 11
    // run speculative duplicates.
    ctx.failures().fail_task(2, 1, FailureMode::BeforeWork);
    ctx.failures().fail_task(7, 1, FailureMode::AfterWork);
    ctx.failures().speculate(1, 1);
    ctx.failures().speculate(11, 2);

    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("exactly_once", 12))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    ctx.failures().clear();

    let mut session = cluster.connect(0).unwrap();
    let result = session.query(&QuerySpec::scan("exactly_once")).unwrap();
    assert_eq!(result.rows.len(), 600, "no lost and no duplicated rows");
    let mut ids: Vec<i64> = result
        .rows
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 600, "every id exactly once");
}

#[test]
fn s2v_total_engine_failure_leaves_target_untouched() {
    let (ctx, cluster) = setup();

    // Seed the target with known data.
    let df = ctx.create_dataframe(d1_rows(50), d1_schema(), 4).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("crash_target", 4))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    // Now a bigger save that dies mid-job. More partitions than worker
    // threads guarantees some tasks never run, so the staging table can
    // never be promoted.
    let df2 = ctx.create_dataframe(d1_rows(400), d1_schema(), 32).unwrap();
    ctx.failures().kill_job_after(3);
    let err = df2
        .write()
        .format(DEFAULT_SOURCE)
        .options(save_options("crash_target", 32).with("job_name", "doomed"))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap_err();
    ctx.failures().clear();
    assert!(err.to_string().contains("killed"), "{err}");

    // The target still holds exactly the old data (no partial load).
    let mut session = cluster.connect(1).unwrap();
    let count = session
        .query(&QuerySpec::scan("crash_target").count())
        .unwrap()
        .count;
    assert_eq!(count, 50);

    // The permanent final-status table records the unfinished job.
    let status = session
        .execute("SELECT status FROM s2v_job_final_status WHERE job_name = 'doomed'")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(status.rows.len(), 1);
    assert_eq!(status.rows[0].get(0), &Value::Varchar("in_progress".into()));
}

#[test]
fn s2v_append_mode_accumulates() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(100), d1_schema(), 4).unwrap();
    for _ in 0..3 {
        df.write()
            .format(DEFAULT_SOURCE)
            .options(save_options("appender", 4))
            .mode(SaveMode::Append)
            .save()
            .unwrap();
    }
    let mut session = cluster.connect(0).unwrap();
    let count = session
        .query(&QuerySpec::scan("appender").count())
        .unwrap()
        .count;
    assert_eq!(count, 300);
}

#[test]
fn s2v_overwrite_replaces_atomically() {
    let (ctx, cluster) = setup();
    let df1 = ctx.create_dataframe(d1_rows(100), d1_schema(), 4).unwrap();
    df1.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("swap", 4))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let df2 = ctx
        .create_dataframe(
            (1000..1040)
                .map(|i| row![i as i64, 0.0f64, 0.0f64])
                .collect(),
            d1_schema(),
            4,
        )
        .unwrap();
    df2.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("swap", 4))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let mut session = cluster.connect(0).unwrap();
    let result = session.query(&QuerySpec::scan("swap")).unwrap();
    assert_eq!(result.rows.len(), 40);
    assert!(result
        .rows
        .iter()
        .all(|r| r.get(0).as_i64().unwrap() >= 1000));
}

#[test]
fn s2v_save_mode_semantics() {
    let (ctx, _cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(10), d1_schema(), 2).unwrap();
    // First write with ErrorIfExists works.
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("modal", 2))
        .mode(SaveMode::ErrorIfExists)
        .save()
        .unwrap();
    // Second fails.
    assert!(df
        .write()
        .format(DEFAULT_SOURCE)
        .options(save_options("modal", 2))
        .mode(SaveMode::ErrorIfExists)
        .save()
        .is_err());
    // Ignore silently does nothing.
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("modal", 2))
        .mode(SaveMode::Ignore)
        .save()
        .unwrap();
}

#[test]
fn s2v_rejected_rows_tolerance() {
    let (ctx, cluster) = setup();
    // A schema whose NOT NULL column the data sometimes violates.
    {
        let mut s = cluster.connect(0).unwrap();
        s.execute("CREATE TABLE strict (id INT NOT NULL, x FLOAT)")
            .unwrap();
    }
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let rows: Vec<Row> = (0..100)
        .map(|i| {
            if i % 10 == 0 {
                Row::new(vec![Value::Null, Value::Float64(0.0)])
            } else {
                row![i as i64, i as f64]
            }
        })
        .collect();
    let df = ctx
        .create_dataframe(rows.clone(), schema.clone(), 5)
        .unwrap();

    // Zero tolerance: the job fails, the target is not polluted.
    let err = df
        .write()
        .format(DEFAULT_SOURCE)
        .options(save_options("strict", 5))
        .mode(SaveMode::Append)
        .save()
        .unwrap_err();
    assert!(err.to_string().contains("tolerance"), "{err}");
    let mut session = cluster.connect(0).unwrap();
    assert_eq!(
        session
            .query(&QuerySpec::scan("strict").count())
            .unwrap()
            .count,
        0
    );

    // 15% tolerance: the good rows land.
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("strict", 5).with("failed_rows_percent_tolerance", 0.15))
        .mode(SaveMode::Append)
        .save()
        .unwrap();
    assert_eq!(
        session
            .query(&QuerySpec::scan("strict").count())
            .unwrap()
            .count,
        90
    );
}

#[test]
fn v2s_loads_views_with_synthetic_ranges() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(120), d1_schema(), 4).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("base_table", 4))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    {
        let mut s = cluster.connect(0).unwrap();
        // A view with an aggregation — the pushdown the Data Source API
        // itself cannot express (Sec. 3.1.1).
        s.execute(
            "CREATE VIEW sums AS SELECT id % 10 AS bucket, SUM(a) AS total \
             FROM base_table GROUP BY id % 10",
        )
        .unwrap();
    }
    let view_df = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "sums")
        .option("numPartitions", 6)
        .load()
        .unwrap();
    let rows = view_df.collect().unwrap();
    assert_eq!(rows.len(), 10);
    assert_eq!(view_df.count().unwrap(), 10);
}

#[test]
fn md_full_analytics_pipeline() {
    use sparklet::mllib::{LabeledPoint, LinearRegression};
    use sparklet::pmml_export::linear_to_pmml;

    let (ctx, cluster) = setup();

    // Data lives in the database.
    {
        let mut s = cluster.connect(0).unwrap();
        s.execute("CREATE TABLE points (x1 FLOAT, x2 FLOAT, y FLOAT)")
            .unwrap();
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                let x1 = i as f64 / 10.0;
                let x2 = (i % 17) as f64;
                row![x1, x2, 2.0 * x1 - x2 + 5.0]
            })
            .collect();
        s.insert("points", rows).unwrap();
    }

    // V2S: load into the engine and train with MLlib.
    let df = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "points")
        .option("numPartitions", 8)
        .load()
        .unwrap();
    let training = df.rdd().unwrap().map(|r: Row| {
        LabeledPoint::new(
            r.get(2).as_f64().unwrap(),
            vec![r.get(0).as_f64().unwrap(), r.get(1).as_f64().unwrap()],
        )
    });
    let model = LinearRegression::default().fit(&training).unwrap();
    assert!((model.intercept - 5.0).abs() < 1e-6);

    // MD: export to PMML, deploy, score in-database via SQL.
    let doc = linear_to_pmml(
        &model,
        "regression",
        Some(&["x1".to_string(), "x2".to_string()]),
        "y",
    );
    let md = ModelDeployment::new(Arc::clone(&cluster)).unwrap();
    md.deploy_pmml_model(&doc, false).unwrap();

    let models = md.list_models().unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].name, "regression");
    assert_eq!(models[0].model_type, "regression");
    assert_eq!(models[0].num_features, 2);

    let round_trip = md.get_pmml("regression").unwrap();
    assert_eq!(round_trip, doc);

    let mut s = cluster.connect(1).unwrap();
    let predictions = s
        .execute(
            "SELECT y, PMMLPredict(x1, x2 USING PARAMETERS model_name='regression') \
             FROM points",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(predictions.rows.len(), 200);
    for row in &predictions.rows {
        let actual = row.get(0).as_f64().unwrap();
        let predicted = row.get(1).as_f64().unwrap();
        assert!((actual - predicted).abs() < 1e-6, "{actual} vs {predicted}");
    }

    // Unknown models error; duplicate deployment guarded.
    assert!(s
        .execute("SELECT PMMLPredict(x1 USING PARAMETERS model_name='nope') FROM points")
        .is_err());
    assert!(md.deploy_pmml_model(&doc, false).is_err());
    md.deploy_pmml_model(&doc, true).unwrap();
    md.drop_model("regression").unwrap();
    assert!(md.get_pmml("regression").is_err());
}

#[test]
fn s2v_random_failures_stress() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(300), d1_schema(), 10).unwrap();
    // Every attempt has a 25% chance of dying after its side effects.
    ctx.failures()
        .random_failures(0.25, 1234, FailureMode::AfterWork);
    let result = df
        .write()
        .format(DEFAULT_SOURCE)
        .options(save_options("stress", 10))
        .mode(SaveMode::Overwrite)
        .save();
    ctx.failures().clear();
    match result {
        Ok(()) => {
            let mut session = cluster.connect(0).unwrap();
            assert_eq!(
                session
                    .query(&QuerySpec::scan("stress").count())
                    .unwrap()
                    .count,
                300
            );
        }
        Err(e) => {
            // Retry budget exhausted is legal; the target must be clean.
            assert!(
                e.to_string().contains("failed") || e.to_string().contains("attempts"),
                "{e}"
            );
            if cluster.has_table("stress") {
                let mut session = cluster.connect(0).unwrap();
                let count = session
                    .query(&QuerySpec::scan("stress").count())
                    .unwrap()
                    .count;
                assert_eq!(count, 0, "failed job must not partially load");
            }
        }
    }
}

#[test]
fn s2v_prehash_eliminates_database_internal_shuffle() {
    use netsim::record::{EventKind, NodeRef};

    let (ctx, cluster) = setup();
    let df = ctx
        .create_dataframe(d1_rows(4_000), d1_schema(), 8)
        .unwrap();

    let db_shuffle = |events: &[netsim::record::Event]| -> u64 {
        events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Transfer {
                    src: NodeRef::Db(_),
                    dst: NodeRef::Db(_),
                    class: NetClass::DbInternal,
                    bytes,
                    ..
                } => Some(*bytes),
                _ => None,
            })
            .sum()
    };

    // Standard save: ~3/4 of the staged rows shuffle to their owners.
    cluster.recorder().clear();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("standard_save", 16))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let standard = db_shuffle(&cluster.recorder().drain());
    assert!(standard > 0, "standard save must shuffle internally");

    // Pre-hashed save: tasks connect to the owning node; the bulk load
    // is entirely node-local (Sec. 5).
    cluster.recorder().clear();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("prehash_save", 16).with("prehash", true))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let events = cluster.recorder().drain();
    let prehashed = db_shuffle(&events);
    // Only the tiny unsegmented protocol-table writes remain.
    assert!(
        prehashed < standard / 10,
        "prehash shuffle {prehashed} vs standard {standard}"
    );

    // And the data is still exactly once, content-identical.
    let mut session = cluster.connect(0).unwrap();
    let mut a = session
        .query(&QuerySpec::scan("standard_save"))
        .unwrap()
        .rows;
    let mut b = session
        .query(&QuerySpec::scan("prehash_save"))
        .unwrap()
        .rows;
    a.sort_by_key(|r| r.get(0).as_i64().unwrap());
    b.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(a, b);
}

#[test]
fn s2v_prehash_survives_failures_too() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(400), d1_schema(), 8).unwrap();
    ctx.failures().fail_task(2, 1, FailureMode::AfterWork);
    ctx.failures().speculate(5, 1);
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("prehash_faulty", 8).with("prehash", true))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    ctx.failures().clear();
    let mut session = cluster.connect(1).unwrap();
    assert_eq!(
        session
            .query(&QuerySpec::scan("prehash_faulty").count())
            .unwrap()
            .count,
        400
    );
}

#[test]
fn s2v_prehash_argument_validation() {
    let (ctx, cluster) = setup();
    let df = ctx.create_dataframe(d1_rows(50), d1_schema(), 2).unwrap();
    // Fewer partitions than database nodes cannot align owner-wise.
    let err = df
        .write()
        .format(DEFAULT_SOURCE)
        .options(save_options("prehash_bad", 2).with("prehash", true))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap_err();
    assert!(err.to_string().contains("prehash"), "{err}");
    // A down node breaks owner alignment.
    cluster.set_node_down(3);
    let err = df
        .write()
        .format(DEFAULT_SOURCE)
        .options(save_options("prehash_bad2", 8).with("prehash", true))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap_err();
    assert!(err.to_string().contains("prehash"), "{err}");
    cluster.set_node_up(3);
}

#[test]
fn connector_sessions_respect_a_dedicated_resource_pool() {
    // The paper isolates data movement in its own resource pool (Sec.
    // 4.1). A pool with bounded concurrency caps how many connector
    // queries run at once, and the high-water mark proves the sessions
    // actually joined it.
    let (ctx, cluster) = setup();
    cluster.create_resource_pool(mppdb::resource::ResourcePool::new(
        "data_movement",
        16 << 30,
        3,
    ));
    let df = ctx.create_dataframe(d1_rows(400), d1_schema(), 8).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("pooled", 8).with("resource_pool", "data_movement"))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "pooled")
        .option("numPartitions", 16)
        .option("resource_pool", "data_movement")
        .load()
        .unwrap();
    assert_eq!(loaded.count().unwrap(), 400);
    assert_eq!(loaded.collect().unwrap().len(), 400);

    let pool = cluster.resource_pool("data_movement").unwrap();
    assert!(pool.high_water_mark() >= 1, "sessions joined the pool");
    assert!(
        pool.high_water_mark() <= 3,
        "admission bound held: {}",
        pool.high_water_mark()
    );
    assert_eq!(pool.active(), 0, "all admissions released");

    // An unknown pool is rejected up front.
    let err = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "pooled")
        .option("resource_pool", "nope")
        .load()
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(err.to_string().contains("resource pool"), "{err}");
}

#[test]
fn md_serves_external_pmml_producers() {
    // Sec. 3.3: deployment "can also serve other PMML producers such as
    // SAS or Distributed R". A hand-authored PMML document (not from
    // our ML library) deploys and scores identically.
    let (_ctx, cluster) = setup();
    let xml = r#"<?xml version="1.0" encoding="UTF-8"?>
<PMML version="4.1" xmlns="http://www.dmg.org/PMML-4_1">
  <Header description="external producer"><Application name="SAS-like"/></Header>
  <DataDictionary numberOfFields="3">
    <DataField name="age" optype="continuous" dataType="double"/>
    <DataField name="income" optype="continuous" dataType="double"/>
    <DataField name="risk" optype="continuous" dataType="double"/>
  </DataDictionary>
  <RegressionModel modelName="external_risk" functionName="regression" normalizationMethod="none">
    <MiningSchema>
      <MiningField name="age" usageType="active"/>
      <MiningField name="income" usageType="active"/>
      <MiningField name="risk" usageType="predicted"/>
    </MiningSchema>
    <RegressionTable intercept="0.5">
      <NumericPredictor name="age" coefficient="0.02"/>
      <NumericPredictor name="income" coefficient="-0.001"/>
    </RegressionTable>
  </RegressionModel>
</PMML>"#;
    let doc = pmml::PmmlDocument::from_xml(xml).unwrap();
    assert_eq!(doc.application, "SAS-like");

    let md = ModelDeployment::new(Arc::clone(&cluster)).unwrap();
    md.deploy_pmml_model(&doc, false).unwrap();

    let mut s = cluster.connect(0).unwrap();
    s.execute("CREATE TABLE customers (age FLOAT, income FLOAT)")
        .unwrap();
    s.execute("INSERT INTO customers VALUES (40.0, 500.0), (20.0, 100.0)")
        .unwrap();
    let r = s
        .execute(
            "SELECT PMMLPredict(age, income USING PARAMETERS \
             model_name='external_risk') FROM customers ORDER BY 1 DESC",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert!((r.rows[0].get(0).as_f64().unwrap() - (0.5 + 0.8 - 0.5)).abs() < 1e-12);
    assert!((r.rows[1].get(0).as_f64().unwrap() - (0.5 + 0.4 - 0.1)).abs() < 1e-12);
}

#[test]
fn v2s_fails_over_to_buddy_replicas_under_k_safety() {
    let cluster = Cluster::new(ClusterConfig {
        k_safety: 1,
        ..ClusterConfig::default()
    });
    let ctx = SparkContext::new(SparkConf {
        nodes: 8,
        cores_per_node: 4,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, Arc::clone(&cluster));

    let df = ctx.create_dataframe(d1_rows(500), d1_schema(), 8).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(save_options("ksafe", 8))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    // Down a node; its segment's hash ranges are served by the buddy.
    cluster.set_node_down(1);
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", "ksafe")
        .option("numPartitions", 16)
        .load()
        .unwrap();
    let mut rows = loaded.collect().unwrap();
    rows.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(rows, d1_rows(500), "buddy replicas serve the full snapshot");
    cluster.set_node_up(1);
}

#[test]
fn s2v_report_carries_rejected_row_samples() {
    let (ctx, cluster) = setup();
    {
        let mut s = cluster.connect(0).unwrap();
        s.execute("CREATE TABLE picky (id INT NOT NULL, x FLOAT)")
            .unwrap();
    }
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let rows: Vec<Row> = (0..60)
        .map(|i| {
            if i % 20 == 0 {
                Row::new(vec![Value::Null, Value::Float64(i as f64)])
            } else {
                row![i as i64, i as f64]
            }
        })
        .collect();
    let df = ctx.create_dataframe(rows, schema, 3).unwrap();

    let opts = connector::ConnectorOptions::for_table("picky")
        .with_partitions(3)
        .with_tolerance(0.2);
    let report = connector::SaveRequest::new(&ctx, &cluster, &df, &opts)
        .mode(SaveMode::Append)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, 57);
    assert_eq!(report.rows_rejected, 3);
    // Each of the three partitions rejected one row and reports a
    // sample explaining why (the NOT NULL violation).
    assert_eq!(report.rejected_samples.len(), 3);
    for (task, reason) in &report.rejected_samples {
        assert!(*task < 3);
        assert!(reason.contains("NULL"), "sample: {reason}");
    }
}
