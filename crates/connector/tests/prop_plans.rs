//! Property tests over the V2S partition planner: for any cluster size
//! and parallelism the planned ranges tile the hash ring exactly once
//! and every range targets the node that owns it (the paper's locality
//! and exactly-once-coverage invariants).

use connector::v2s::{plan_hash_partitions, plan_row_partitions, RangeSpec};
use mppdb::segmentation::SegmentMap;
use proptest::prelude::*;

proptest! {
    #[test]
    fn hash_plans_tile_exactly_and_stay_local(
        nodes in 1usize..12,
        partitions in 1usize..300,
    ) {
        let map = SegmentMap::new(nodes);
        let plans = plan_hash_partitions(&map, partitions);
        prop_assert!(!plans.is_empty());
        prop_assert!(plans.len() <= partitions);

        let mut ranges = Vec::new();
        for plan in &plans {
            prop_assert!(!plan.pieces.is_empty(), "a partition with no work");
            for (node, spec) in &plan.pieces {
                let RangeSpec::Hash(range) = spec else {
                    prop_assert!(false, "hash plan produced a row range");
                    unreachable!()
                };
                // Locality: the whole range lies in the node's segment.
                let seg = map.segment_range(*node);
                prop_assert!(seg.intersect(range).is_some());
                prop_assert!(range.start >= seg.start);
                match (range.end, seg.end) {
                    (None, None) => {}
                    (Some(re), Some(se)) => prop_assert!(re <= se),
                    (Some(_), None) => {}
                    (None, Some(_)) => prop_assert!(false, "range escapes segment"),
                }
                ranges.push(*range);
            }
        }
        // Coverage: sorted ranges tile [0, 2^64) without gap or overlap.
        ranges.sort_by_key(|r| r.start);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, None);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, Some(w[1].start));
        }
    }

    #[test]
    fn row_plans_cover_without_overlap(
        total in 0u64..100_000,
        partitions in 1usize..64,
        nodes in 1usize..8,
    ) {
        let up: Vec<usize> = (0..nodes).collect();
        let plans = plan_row_partitions(total, partitions, &up);
        prop_assert_eq!(plans.len(), partitions);
        let mut covered = 0u64;
        let mut prev_end = 0u64;
        for plan in &plans {
            let (node, RangeSpec::Rows(lo, hi)) = &plan.pieces[0] else {
                prop_assert!(false, "row plan produced a hash range");
                unreachable!()
            };
            prop_assert!(*node < nodes);
            prop_assert!(lo <= hi);
            prop_assert_eq!(*lo, prev_end, "gap or overlap in row windows");
            prev_end = *hi;
            covered += hi - lo;
        }
        prop_assert_eq!(covered, total);
        prop_assert_eq!(prev_end, total);
    }
}
