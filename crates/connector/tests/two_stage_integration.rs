//! Two-stage (DFS landing zone) transfer tests — the Sec. 5 / Redshift
//! alternative, driven through the unified [`SaveRequest`] surface
//! with `method=dfs` (the deprecated `save_via_dfs` shim delegates to
//! the same path and is covered by the connector's own unit tests).

use std::sync::Arc;

use common::{row, DataType, Row, Schema};
use connector::{load_via_dfs, ConnectorOptions, SaveRequest, TwoStageConfig, WriteMethod};
use dfslite::{DfsClusterSim, DfsConfig};
use mppdb::{Cluster, ClusterConfig, QuerySpec};
use sparklet::{FailureMode, SparkConf, SparkContext};

fn setup() -> (SparkContext, Arc<Cluster>, Arc<DfsClusterSim>) {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 8,
        cores_per_node: 4,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    let dfs = DfsClusterSim::new(DfsConfig {
        nodes: 4,
        block_size: 1 << 16,
        replication: 3,
    });
    (ctx, db, dfs)
}

fn dfs_options(table: &str, staging: &str) -> ConnectorOptions {
    ConnectorOptions::builder(table)
        .method(WriteMethod::Dfs)
        .staging_path(staging)
        .build()
        .unwrap()
}

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)])
}

fn rows(n: usize) -> Vec<Row> {
    (0..n).map(|i| row![i as i64, i as f64 / 3.0]).collect()
}

#[test]
fn two_stage_save_round_trip() {
    let (ctx, db, dfs) = setup();
    let df = ctx.create_dataframe(rows(600), schema(), 6).unwrap();
    let opts = dfs_options("landed", "/staging/landed");
    let report = SaveRequest::new(&ctx, &db, &df, &opts)
        .with_dfs(&dfs)
        .submit()
        .unwrap();
    assert_eq!(report.method, WriteMethod::Dfs);
    assert_eq!(report.rows_loaded, 600);
    assert_eq!(report.part_files, 6);
    assert!(report.staged_bytes > 0);
    // The landing zone was cleaned up.
    assert!(dfs.list("/staging/landed/").is_empty());

    let mut session = db.connect(0).unwrap();
    let mut loaded = session.query(&QuerySpec::scan("landed")).unwrap().rows;
    loaded.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(loaded, rows(600));
}

#[test]
fn two_stage_save_is_atomic_under_stage1_retries() {
    let (ctx, db, dfs) = setup();
    let df = ctx.create_dataframe(rows(300), schema(), 6).unwrap();
    // A task that writes its file and then dies is retried and replaces
    // its own file — no duplicates reach the database.
    ctx.failures().fail_task(2, 1, FailureMode::AfterWork);
    let opts = dfs_options("retried", "/staging/retried");
    let report = SaveRequest::new(&ctx, &db, &df, &opts)
        .with_dfs(&dfs)
        .submit()
        .unwrap();
    ctx.failures().clear();
    assert_eq!(report.rows_loaded, 300);
    let mut session = db.connect(1).unwrap();
    assert_eq!(
        session
            .query(&QuerySpec::scan("retried").count())
            .unwrap()
            .count,
        300
    );
}

#[test]
fn two_stage_save_killed_mid_stage1_leaves_target_absent() {
    let (ctx, db, dfs) = setup();
    let df = ctx.create_dataframe(rows(400), schema(), 32).unwrap();
    ctx.failures().kill_job_after(3);
    let opts = dfs_options("never_landed", "/staging/never");
    let err = SaveRequest::new(&ctx, &db, &df, &opts)
        .with_dfs(&dfs)
        .submit()
        .unwrap_err();
    ctx.failures().clear();
    assert!(err.to_string().contains("killed"), "{err}");
    // Stage 2 never ran: the table was never created/loaded. Staged
    // leftovers may exist (the decoupling trade-off), but the database
    // is clean.
    assert!(!db.has_table("never_landed"));
}

#[test]
fn two_stage_load_exports_a_consistent_snapshot() {
    let (ctx, db, dfs) = setup();
    {
        let mut s = db.connect(0).unwrap();
        s.execute("CREATE TABLE src (id INT, x FLOAT)").unwrap();
        s.insert("src", rows(500)).unwrap();
    }
    let df = load_via_dfs(&ctx, &db, &dfs, "src", &TwoStageConfig::new("/staging/out")).unwrap();
    assert_eq!(df.num_partitions().unwrap(), 4, "one export per node");
    let mut loaded = df.collect().unwrap();
    loaded.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(loaded, rows(500));

    // A mutation after the export does not affect re-reads of the
    // already-staged files.
    {
        let mut s = db.connect(2).unwrap();
        s.execute("DELETE FROM src WHERE id < 100").unwrap();
    }
    assert_eq!(df.count().unwrap(), 500, "staged copy is a stable snapshot");
}

#[test]
fn two_stage_round_trips_unsegmented_tables() {
    let (ctx, db, dfs) = setup();
    {
        let mut s = db.connect(0).unwrap();
        s.execute("CREATE TABLE dim (id INT, x FLOAT) UNSEGMENTED ALL NODES")
            .unwrap();
        s.insert("dim", rows(120)).unwrap();
    }
    let df = load_via_dfs(&ctx, &db, &dfs, "dim", &TwoStageConfig::new("/staging/dim")).unwrap();
    assert_eq!(
        df.num_partitions().unwrap(),
        1,
        "replicated table exports once"
    );
    assert_eq!(df.count().unwrap(), 120);
}
