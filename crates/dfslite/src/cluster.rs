//! Namenode + datanodes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use netsim::record::{NetClass, NodeRef, Recorder};
use parking_lot::RwLock;

/// DFS configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    pub nodes: usize,
    /// Block size in bytes (the paper's default: 64 MB).
    pub block_size: usize,
    /// Replication factor (the paper's default: 3).
    pub replication: usize,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig {
            nodes: 4,
            block_size: 64 << 20,
            replication: 3,
        }
    }
}

/// DFS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    NoSuchFile(String),
    FileExists(String),
    BlockOutOfRange { path: String, block: usize },
    Corrupt(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            DfsError::FileExists(p) => write!(f, "file exists: {p}"),
            DfsError::BlockOutOfRange { path, block } => {
                write!(f, "block {block} out of range for {path}")
            }
            DfsError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
        }
    }
}

impl std::error::Error for DfsError {}

#[derive(Debug, Clone)]
struct BlockMeta {
    /// Datanode indices holding a replica; the first is primary.
    locations: Vec<usize>,
    len: usize,
}

#[derive(Debug, Default)]
struct NameNode {
    /// path → per-block metadata, in block order.
    files: BTreeMap<String, Vec<BlockMeta>>,
}

#[derive(Debug, Default)]
struct DataNode {
    /// (path, block index) → bytes.
    blocks: BTreeMap<(String, usize), Arc<Vec<u8>>>,
}

/// The DFS cluster.
pub struct DfsClusterSim {
    config: DfsConfig,
    namenode: RwLock<NameNode>,
    datanodes: Vec<RwLock<DataNode>>,
    recorder: Arc<Recorder>,
    /// Round-robin cursor for block placement.
    place_cursor: parking_lot::Mutex<usize>,
}

impl DfsClusterSim {
    pub fn new(config: DfsConfig) -> Arc<DfsClusterSim> {
        Self::with_recorder(config, Recorder::new())
    }

    /// Share a recorder with the compute engine so the benchmark
    /// harness sees one unified transfer log.
    pub fn with_recorder(config: DfsConfig, recorder: Arc<Recorder>) -> Arc<DfsClusterSim> {
        assert!(config.nodes > 0, "DFS needs at least one datanode");
        assert!(config.block_size > 0, "block size must be positive");
        let datanodes = (0..config.nodes)
            .map(|_| RwLock::new(DataNode::default()))
            .collect();
        Arc::new(DfsClusterSim {
            config,
            namenode: RwLock::new(NameNode::default()),
            datanodes,
            recorder,
            place_cursor: parking_lot::Mutex::new(0),
        })
    }

    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Create a file from `writer`'s bytes. `writer` is the recorded
    /// source endpoint (e.g. a compute node writing a partition file).
    pub fn create(
        &self,
        path: &str,
        data: &[u8],
        writer: NodeRef,
        task: Option<u64>,
    ) -> Result<(), DfsError> {
        {
            let namenode = self.namenode.read();
            if namenode.files.contains_key(path) {
                return Err(DfsError::FileExists(path.to_string()));
            }
        }
        let replication = self.config.replication.min(self.config.nodes);
        let mut metas = Vec::new();
        let block_count = data.len().div_ceil(self.config.block_size).max(1);
        for b in 0..block_count {
            let lo = b * self.config.block_size;
            let hi = (lo + self.config.block_size).min(data.len());
            let bytes = Arc::new(data[lo..hi].to_vec());
            let primary = {
                let mut cursor = self.place_cursor.lock();
                let p = *cursor % self.config.nodes;
                *cursor += 1;
                p
            };
            let locations: Vec<usize> = (0..replication)
                .map(|r| (primary + r) % self.config.nodes)
                .collect();
            for (r, &node) in locations.iter().enumerate() {
                if r == 0 {
                    // The primary copy crosses the system boundary.
                    self.recorder.transfer(
                        task,
                        writer,
                        NodeRef::Dfs(node),
                        NetClass::External,
                        bytes.len() as u64,
                        0,
                    );
                } else {
                    // Replication hops ride the DFS cluster's internal
                    // network, pipelined from the primary.
                    self.recorder.transfer(
                        task,
                        NodeRef::Dfs(primary),
                        NodeRef::Dfs(node),
                        NetClass::DbInternal,
                        bytes.len() as u64,
                        0,
                    );
                }
                self.datanodes[node]
                    .write()
                    .blocks
                    .insert((path.to_string(), b), Arc::clone(&bytes));
            }
            metas.push(BlockMeta {
                locations,
                len: bytes.len(),
            });
        }
        self.namenode.write().files.insert(path.to_string(), metas);
        Ok(())
    }

    /// Number of blocks of a file (drives Spark's default partition
    /// count for DFS reads, Sec. 4.7.2).
    pub fn block_count(&self, path: &str) -> Result<usize, DfsError> {
        self.namenode
            .read()
            .files
            .get(path)
            .map(Vec::len)
            .ok_or_else(|| DfsError::NoSuchFile(path.to_string()))
    }

    /// Read one block, attributing the transfer to `reader`.
    pub fn read_block(
        &self,
        path: &str,
        block: usize,
        reader: NodeRef,
        task: Option<u64>,
    ) -> Result<Arc<Vec<u8>>, DfsError> {
        let meta = {
            let namenode = self.namenode.read();
            let blocks = namenode
                .files
                .get(path)
                .ok_or_else(|| DfsError::NoSuchFile(path.to_string()))?;
            blocks
                .get(block)
                .ok_or_else(|| DfsError::BlockOutOfRange {
                    path: path.to_string(),
                    block,
                })?
                .clone()
        };
        // Serve from the primary replica.
        let node = meta.locations[0];
        let bytes = self.datanodes[node]
            .read()
            .blocks
            .get(&(path.to_string(), block))
            .cloned()
            .ok_or_else(|| {
                DfsError::Corrupt(format!("{path} block {block} missing on node {node}"))
            })?;
        self.recorder.transfer(
            task,
            NodeRef::Dfs(node),
            reader,
            NetClass::External,
            meta.len as u64,
            0,
        );
        Ok(bytes)
    }

    /// Read a whole file.
    pub fn read(
        &self,
        path: &str,
        reader: NodeRef,
        task: Option<u64>,
    ) -> Result<Vec<u8>, DfsError> {
        let blocks = self.block_count(path)?;
        let mut out = Vec::new();
        for b in 0..blocks {
            out.extend_from_slice(&self.read_block(path, b, reader, task)?);
        }
        Ok(out)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.namenode.read().files.contains_key(path)
    }

    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        let metas = self
            .namenode
            .write()
            .files
            .remove(path)
            .ok_or_else(|| DfsError::NoSuchFile(path.to_string()))?;
        for (b, meta) in metas.iter().enumerate() {
            for &node in &meta.locations {
                self.datanodes[node]
                    .write()
                    .blocks
                    .remove(&(path.to_string(), b));
            }
        }
        Ok(())
    }

    /// Paths under a prefix, sorted (used to enumerate part files).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.namenode
            .read()
            .files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    pub fn file_len(&self, path: &str) -> Result<usize, DfsError> {
        self.namenode
            .read()
            .files
            .get(path)
            .map(|blocks| blocks.iter().map(|b| b.len).sum())
            .ok_or_else(|| DfsError::NoSuchFile(path.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dfs() -> Arc<DfsClusterSim> {
        DfsClusterSim::new(DfsConfig {
            nodes: 4,
            block_size: 10,
            replication: 3,
        })
    }

    #[test]
    fn create_read_round_trip() {
        let dfs = small_dfs();
        let data: Vec<u8> = (0..35).collect();
        dfs.create("/d/f", &data, NodeRef::Client, None).unwrap();
        assert_eq!(dfs.block_count("/d/f").unwrap(), 4);
        assert_eq!(dfs.file_len("/d/f").unwrap(), 35);
        assert_eq!(dfs.read("/d/f", NodeRef::Client, None).unwrap(), data);
    }

    #[test]
    fn blocks_replicated_three_times() {
        let dfs = small_dfs();
        dfs.create("/f", &[1u8; 25], NodeRef::Client, None).unwrap();
        let held: usize = dfs.datanodes.iter().map(|dn| dn.read().blocks.len()).sum();
        assert_eq!(held, 3 * 3, "3 blocks × 3 replicas");
    }

    #[test]
    fn duplicate_create_rejected() {
        let dfs = small_dfs();
        dfs.create("/f", &[0u8; 5], NodeRef::Client, None).unwrap();
        assert_eq!(
            dfs.create("/f", &[0u8; 5], NodeRef::Client, None),
            Err(DfsError::FileExists("/f".into()))
        );
    }

    #[test]
    fn delete_removes_all_replicas() {
        let dfs = small_dfs();
        dfs.create("/f", &[0u8; 25], NodeRef::Client, None).unwrap();
        dfs.delete("/f").unwrap();
        assert!(!dfs.exists("/f"));
        let held: usize = dfs.datanodes.iter().map(|dn| dn.read().blocks.len()).sum();
        assert_eq!(held, 0);
        assert!(dfs.read("/f", NodeRef::Client, None).is_err());
    }

    #[test]
    fn list_by_prefix() {
        let dfs = small_dfs();
        dfs.create("/out/part-0", &[1], NodeRef::Client, None)
            .unwrap();
        dfs.create("/out/part-1", &[2], NodeRef::Client, None)
            .unwrap();
        dfs.create("/other", &[3], NodeRef::Client, None).unwrap();
        assert_eq!(dfs.list("/out/"), vec!["/out/part-0", "/out/part-1"]);
    }

    #[test]
    fn empty_file_has_one_block() {
        let dfs = small_dfs();
        dfs.create("/empty", &[], NodeRef::Client, None).unwrap();
        assert_eq!(dfs.block_count("/empty").unwrap(), 1);
        assert_eq!(
            dfs.read("/empty", NodeRef::Client, None).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn transfers_recorded_per_replica_and_read() {
        let dfs = small_dfs();
        dfs.recorder().clear();
        dfs.create("/f", &[0u8; 20], NodeRef::Compute(1), None)
            .unwrap();
        // 2 blocks: 1 external ingest + 2 internal replication hops each.
        assert_eq!(dfs.recorder().len(), 6);
        assert_eq!(dfs.recorder().total_bytes(NetClass::External), 20);
        assert_eq!(dfs.recorder().total_bytes(NetClass::DbInternal), 40);
        dfs.read("/f", NodeRef::Compute(2), None).unwrap();
        assert_eq!(dfs.recorder().len(), 8);
        assert_eq!(dfs.recorder().total_bytes(NetClass::External), 40);
    }
}
// (extended tests)
#[cfg(test)]
mod placement_tests {
    use super::*;

    #[test]
    fn block_placement_round_robins_primaries() {
        let dfs = DfsClusterSim::new(DfsConfig {
            nodes: 4,
            block_size: 4,
            replication: 1,
        });
        dfs.create("/f", &[0u8; 16], NodeRef::Client, None).unwrap();
        // 4 blocks, replication 1: each datanode holds exactly one.
        let counts: Vec<usize> = dfs
            .datanodes
            .iter()
            .map(|dn| dn.read().blocks.len())
            .collect();
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn replication_capped_at_node_count() {
        let dfs = DfsClusterSim::new(DfsConfig {
            nodes: 2,
            block_size: 64,
            replication: 3,
        });
        dfs.create("/f", &[1u8; 10], NodeRef::Client, None).unwrap();
        let held: usize = dfs.datanodes.iter().map(|dn| dn.read().blocks.len()).sum();
        assert_eq!(held, 2, "replication clamps to the node count");
    }

    #[test]
    fn read_block_out_of_range() {
        let dfs = DfsClusterSim::new(DfsConfig::default());
        dfs.create("/f", &[1u8; 10], NodeRef::Client, None).unwrap();
        assert!(matches!(
            dfs.read_block("/f", 5, NodeRef::Client, None),
            Err(DfsError::BlockOutOfRange { block: 5, .. })
        ));
        assert!(matches!(
            dfs.read_block("/nope", 0, NodeRef::Client, None),
            Err(DfsError::NoSuchFile(_))
        ));
    }
}
