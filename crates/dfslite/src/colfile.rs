//! A columnar (parquet-like) file format with row groups.
//!
//! The paper's Fig. 12 baseline reads and writes Spark DataFrames "for
//! parquet files using DataFrames". This format captures the relevant
//! structure: a header magic, consecutive row groups each storing its
//! columns contiguously, and a footer with the schema and row-group
//! offsets so readers can fetch row groups independently.
//!
//! Layout:
//! ```text
//! [magic "COL1"]
//! [row group 0][row group 1]...
//! [footer: schema + row-group (offset, len, rows) table]
//! [footer length: u32 LE][magic "COL1"]
//! ```

use common::{DataType, Field, Row, Schema, Value};

use crate::cluster::DfsError;

const MAGIC: &[u8; 4] = b"COL1";
/// Default rows per row group.
pub const DEFAULT_ROW_GROUP: usize = 4096;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], pos: usize) -> Result<u32, DfsError> {
    data.get(pos..pos + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        .ok_or_else(|| DfsError::Corrupt("truncated u32".into()))
}

fn get_u64(data: &[u8], pos: usize) -> Result<u64, DfsError> {
    data.get(pos..pos + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .ok_or_else(|| DfsError::Corrupt("truncated u64".into()))
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Boolean => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Varchar => 3,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType, DfsError> {
    Ok(match tag {
        0 => DataType::Boolean,
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Varchar,
        other => return Err(DfsError::Corrupt(format!("bad dtype tag {other}"))),
    })
}

/// Serialize rows under `schema` into the columnar format.
pub fn write(schema: &Schema, rows: &[Row], rows_per_group: usize) -> Vec<u8> {
    assert!(rows_per_group > 0);
    let mut out = Vec::with_capacity(rows.len() * 16 + 256);
    out.extend_from_slice(MAGIC);

    let mut groups: Vec<(u64, u64, u64)> = Vec::new(); // (offset, len, rows)
    for chunk in rows.chunks(rows_per_group).filter(|c| !c.is_empty()) {
        let offset = out.len() as u64;
        // Column-major within the group.
        for (c, _field) in schema.fields().iter().enumerate() {
            for row in chunk {
                encode_value(&mut out, row.get(c));
            }
        }
        groups.push((offset, out.len() as u64 - offset, chunk.len() as u64));
    }

    // Footer.
    let footer_start = out.len();
    put_u32(&mut out, schema.len() as u32);
    for field in schema.fields() {
        out.push(dtype_tag(field.dtype));
        out.push(u8::from(field.nullable));
        put_u32(&mut out, field.name.len() as u32);
        out.extend_from_slice(field.name.as_bytes());
    }
    put_u32(&mut out, groups.len() as u32);
    for (offset, len, count) in &groups {
        put_u64(&mut out, *offset);
        put_u64(&mut out, *len);
        put_u64(&mut out, *count);
    }
    let footer_len = (out.len() - footer_start) as u32;
    put_u32(&mut out, footer_len);
    out.extend_from_slice(MAGIC);
    out
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Boolean(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int64(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float64(f) => {
            out.push(1);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Varchar(s) => {
            out.push(1);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn decode_value(data: &[u8], pos: &mut usize, dtype: DataType) -> Result<Value, DfsError> {
    let flag = *data
        .get(*pos)
        .ok_or_else(|| DfsError::Corrupt("truncated null flag".into()))?;
    *pos += 1;
    if flag == 0 {
        return Ok(Value::Null);
    }
    Ok(match dtype {
        DataType::Boolean => {
            let b = *data
                .get(*pos)
                .ok_or_else(|| DfsError::Corrupt("truncated bool".into()))?;
            *pos += 1;
            Value::Boolean(b != 0)
        }
        DataType::Int64 => {
            let v = get_u64(data, *pos)? as i64;
            *pos += 8;
            Value::Int64(v)
        }
        DataType::Float64 => {
            let v = f64::from_bits(get_u64(data, *pos)?);
            *pos += 8;
            Value::Float64(v)
        }
        DataType::Varchar => {
            let len = get_u32(data, *pos)? as usize;
            *pos += 4;
            let bytes = data
                .get(*pos..*pos + len)
                .ok_or_else(|| DfsError::Corrupt("truncated string".into()))?;
            *pos += len;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| DfsError::Corrupt(format!("bad utf8: {e}")))?;
            Value::Varchar(s.to_string())
        }
    })
}

/// Parsed footer: schema plus row-group table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColFileMeta {
    pub schema: Schema,
    /// `(offset, byte length, row count)` per row group.
    pub groups: Vec<(u64, u64, u64)>,
}

/// Parse the footer of a columnar file.
pub fn read_meta(data: &[u8]) -> Result<ColFileMeta, DfsError> {
    if data.len() < 12 || &data[..4] != MAGIC || &data[data.len() - 4..] != MAGIC {
        return Err(DfsError::Corrupt("bad colfile magic".into()));
    }
    let footer_len = get_u32(data, data.len() - 8)? as usize;
    let mut pos = data
        .len()
        .checked_sub(8 + footer_len)
        .ok_or_else(|| DfsError::Corrupt("bad footer length".into()))?;

    let column_count = get_u32(data, pos)? as usize;
    pos += 4;
    let mut fields = Vec::with_capacity(column_count);
    for _ in 0..column_count {
        let dtype = tag_dtype(
            *data
                .get(pos)
                .ok_or_else(|| DfsError::Corrupt("truncated field".into()))?,
        )?;
        let nullable = data.get(pos + 1) == Some(&1);
        pos += 2;
        let name_len = get_u32(data, pos)? as usize;
        pos += 4;
        let name = std::str::from_utf8(
            data.get(pos..pos + name_len)
                .ok_or_else(|| DfsError::Corrupt("truncated field name".into()))?,
        )
        .map_err(|e| DfsError::Corrupt(format!("bad field name: {e}")))?;
        pos += name_len;
        fields.push(Field {
            name: name.to_string(),
            dtype,
            nullable,
        });
    }
    let group_count = get_u32(data, pos)? as usize;
    pos += 4;
    let mut groups = Vec::with_capacity(group_count);
    for _ in 0..group_count {
        let offset = get_u64(data, pos)?;
        let len = get_u64(data, pos + 8)?;
        let rows = get_u64(data, pos + 16)?;
        pos += 24;
        groups.push((offset, len, rows));
    }
    Ok(ColFileMeta {
        schema: Schema::new(fields),
        groups,
    })
}

/// Decode one row group (by index) into rows.
pub fn read_group(data: &[u8], meta: &ColFileMeta, group: usize) -> Result<Vec<Row>, DfsError> {
    let (offset, len, rows) = *meta
        .groups
        .get(group)
        .ok_or_else(|| DfsError::Corrupt(format!("no row group {group}")))?;
    let end = (offset + len) as usize;
    if end > data.len() {
        return Err(DfsError::Corrupt("row group overruns file".into()));
    }
    let mut pos = offset as usize;
    let rows = rows as usize;
    let cols = meta.schema.len();
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(cols);
    for field in meta.schema.fields() {
        let mut column = Vec::with_capacity(rows);
        for _ in 0..rows {
            column.push(decode_value(data, &mut pos, field.dtype)?);
        }
        columns.push(column);
    }
    if pos != end {
        return Err(DfsError::Corrupt(format!(
            "row group {group} has {} unread bytes",
            end - pos
        )));
    }
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        out.push(Row::new(columns.iter().map(|c| c[r].clone()).collect()));
    }
    Ok(out)
}

/// Decode all rows of a file.
pub fn read_all(data: &[u8]) -> Result<(Schema, Vec<Row>), DfsError> {
    let meta = read_meta(data)?;
    let mut rows = Vec::new();
    for g in 0..meta.groups.len() {
        rows.extend(read_group(data, &meta, g)?);
    }
    Ok((meta.schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("x", DataType::Float64),
            ("ok", DataType::Boolean),
            ("s", DataType::Varchar),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    Row::new(vec![Value::Null, Value::Null, Value::Null, Value::Null])
                } else {
                    row![i as i64, i as f64 / 4.0, i % 2 == 0, format!("str{i}")]
                }
            })
            .collect()
    }

    #[test]
    fn round_trip_single_group() {
        let data = write(&schema(), &rows(10), DEFAULT_ROW_GROUP);
        let (s, r) = read_all(&data).unwrap();
        assert_eq!(s, schema());
        assert_eq!(r, rows(10));
    }

    #[test]
    fn round_trip_many_groups_with_random_access() {
        let all = rows(25);
        let data = write(&schema(), &all, 10);
        let meta = read_meta(&data).unwrap();
        assert_eq!(meta.groups.len(), 3);
        assert_eq!(meta.groups.iter().map(|g| g.2).sum::<u64>(), 25);
        let g1 = read_group(&data, &meta, 1).unwrap();
        assert_eq!(g1, all[10..20].to_vec());
        let g2 = read_group(&data, &meta, 2).unwrap();
        assert_eq!(g2, all[20..].to_vec());
    }

    #[test]
    fn empty_file_round_trip() {
        let data = write(&schema(), &[], 16);
        let (s, r) = read_all(&data).unwrap();
        assert_eq!(s, schema());
        assert!(r.is_empty());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut data = write(&schema(), &rows(3), 16);
        data[0] = b'X';
        assert!(read_meta(&data).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let data = write(&schema(), &rows(3), 16);
        assert!(read_meta(&data[..data.len() - 5]).is_err());
    }

    #[test]
    fn out_of_range_group_rejected() {
        let data = write(&schema(), &rows(3), 16);
        let meta = read_meta(&data).unwrap();
        assert!(read_group(&data, &meta, 1).is_err());
    }
}
