//! An HDFS-like distributed file system (the comparison substrate of
//! paper Sec. 4.7.2 and the origin of all experimental data, Sec. 4.1).
//!
//! Files are split into fixed-size blocks (64 MB by default, the
//! paper's HDFS configuration), each replicated onto `replication`
//! datanodes (default 3×). A namenode tracks file → block → location
//! metadata. There are no transactions and no update-in-place — exactly
//! the property the paper contrasts against the database ("since HDFS
//! is not a database and HDFS files are not updated in place, there are
//! no issues that can cause an inconsistent view of the data").
//!
//! [`colfile`] adds a columnar (parquet-like) file format with row
//! groups, used by the compute engine's native DFS read/write baseline.

pub mod cluster;
pub mod colfile;

pub use cluster::{DfsClusterSim, DfsConfig, DfsError};
