//! Name-keyed inter-procedural call graph over the extracted IRs.
//!
//! Resolution is deliberately conservative: a qualified call
//! `Type::name(..)` resolves to that impl's fn when one exists; a
//! method call `.name(..)` or free call `name(..)` resolves to every
//! workspace fn with that bare name. Collisions merge — the analysis
//! over-approximates what a call might do, which is the safe direction
//! for the dynamic-⊆-static gate (extra static edges are only
//! coverage findings).

use std::collections::{HashMap, HashSet};

use crate::cfg::{Ev, FnIr};

#[derive(Debug, Default)]
pub struct CallGraph {
    /// bare name → fn indices.
    pub by_name: HashMap<String, Vec<usize>>,
    /// `Type::name` → fn indices.
    pub by_qual: HashMap<String, Vec<usize>>,
    /// fn index → declared parameter count (self excluded).
    arity: Vec<usize>,
}

impl CallGraph {
    pub fn build(irs: &[FnIr]) -> CallGraph {
        let mut cg = CallGraph::default();
        for (idx, ir) in irs.iter().enumerate() {
            cg.by_name.entry(ir.name.clone()).or_default().push(idx);
            if let Some(q) = &ir.qual_name {
                cg.by_qual.entry(q.clone()).or_default().push(idx);
            }
            cg.arity.push(ir.params.len());
        }
        cg
    }

    /// Candidate callees of a Call event from `ir`.
    ///
    /// Resolution is *strict*: qualified calls (`Type::name`) resolve
    /// exactly; unqualified calls resolve only when the bare name is
    /// unambiguous in the workspace and not a common std container /
    /// iterator method (a `.insert(` is almost always `HashMap::insert`,
    /// not whichever workspace fn happens to share the name). Strict
    /// resolution under-approximates — soundness for the dynamic-⊆-
    /// static gate is recovered empirically: the per-suite subgraph
    /// tests fail loudly if a witnessed edge becomes underivable.
    pub fn resolve(&self, _ir: &FnIr, ev: &Ev) -> Vec<usize> {
        let Ev::Call {
            name,
            qual,
            method,
            arity,
            ..
        } = ev
        else {
            return Vec::new();
        };
        if let Some(q) = qual {
            let key = format!("{}::{}", q, name);
            if let Some(ids) = self.by_qual.get(&key) {
                return ids.clone();
            }
            // Unknown type (std etc.): a qualified call to a name no
            // workspace impl defines resolves to nothing rather than
            // every same-named fn.
            return Vec::new();
        }
        if *method {
            if STD_METHOD_NAMES.contains(&name.as_str()) {
                return Vec::new();
            }
            // Untyped method call: union every same-named workspace
            // method (`self.mover.log(..)` could be any `fn log`) —
            // over-approximation is safe (extra lock edges are only
            // coverage findings), and losing the real callee broke the
            // dynamic-⊆-static gate. Candidates are narrowed by call
            // arity when possible: `store.commit(txn, epoch)` is not
            // the zero-arg `Session::commit`. Fallback to the full
            // union when nothing matches, since closure-param commas
            // can inflate the counted arity.
            let ids = self.by_name.get(name).cloned().unwrap_or_default();
            let matching: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&i| self.arity[i] == *arity)
                .collect();
            return if matching.is_empty() { ids } else { matching };
        }
        match self.by_name.get(name) {
            Some(ids) if ids.len() == 1 => ids.clone(),
            _ => Vec::new(),
        }
    }
}

/// Method names that belong to std containers/iterators/primitives in
/// virtually every call site; bare-name resolution to a workspace fn
/// would be a collision, so strict resolution skips them.
const STD_METHOD_NAMES: &[&str] = &[
    "insert",
    "get",
    "get_mut",
    "remove",
    "push",
    "pop",
    "len",
    "iter",
    "iter_mut",
    "into_iter",
    "collect",
    "filter",
    "filter_map",
    "map",
    "entry",
    "contains",
    "contains_key",
    "clone",
    "next",
    "count",
    "new",
    "take",
    "extend",
    "retain",
    "clear",
    "drain",
    "replace",
    "load",
    "store",
    "swap",
    "join",
    "min",
    "max",
    "rev",
    "sum",
    "zip",
    "chain",
    "find",
    "any",
    "all",
    "fold",
    "last",
    "first",
    "split",
    "trim",
    "parse",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "and_then",
    "or_else",
    "is_empty",
    "is_some",
    "is_none",
    "as_ref",
    "as_mut",
    "as_str",
    "to_vec",
    "keys",
    "values",
    "values_mut",
    "sort",
    "sort_by",
    "sort_by_key",
    "dedup",
    "truncate",
    "resize",
    "windows",
    "chunks",
    "enumerate",
    "skip",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "position",
    "rposition",
    "starts_with",
    "ends_with",
    "get_or_insert_with",
    "or_insert_with",
    "or_default",
    "to_owned",
    "abs",
    "is_dir",
    "is_file",
    "exists",
    "read",
    "write",
    "flush",
    "fmt",
    "cmp",
    "eq",
    "hash",
];

/// Transitive may-block / may-emit summaries.
#[derive(Debug, Default, Clone)]
pub struct FlowSummary {
    pub blocks: bool,
    /// The call chain that reaches the blocking base (for messages):
    /// name of the direct callee that blocks.
    pub blocks_via: Option<String>,
    pub emits: bool,
}

/// Base operations that can sleep or park the calling thread.
pub fn default_blocking_fns() -> Vec<String> {
    [
        "sleep",
        "recv",
        "recv_timeout",
        "park",
        "wait",
        "wait_until",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

/// Fixpoint: a fn blocks if it calls a blocking base fn or a fn whose
/// summary blocks; emits likewise (obs::global() or an emit method).
pub fn flow_summaries(
    irs: &[FnIr],
    cg: &CallGraph,
    blocking_fns: &[String],
    emit_methods: &[&str],
) -> Vec<FlowSummary> {
    let blocking: HashSet<&str> = blocking_fns.iter().map(String::as_str).collect();
    let mut sums: Vec<FlowSummary> = irs
        .iter()
        .map(|ir| {
            let mut s = FlowSummary {
                emits: ir.emits_directly,
                ..FlowSummary::default()
            };
            for ev in &ir.events {
                if let Ev::Call { name, .. } = ev {
                    if blocking.contains(name.as_str()) {
                        s.blocks = true;
                        s.blocks_via = Some(name.clone());
                    }
                    if emit_methods.contains(&name.as_str()) {
                        s.emits = true;
                    }
                }
            }
            s
        })
        .collect();
    loop {
        let mut changed = false;
        for (idx, ir) in irs.iter().enumerate() {
            if sums[idx].blocks && sums[idx].emits {
                continue;
            }
            for ev in &ir.events {
                if !matches!(ev, Ev::Call { .. }) {
                    continue;
                }
                for callee in cg.resolve(ir, ev) {
                    if callee == idx {
                        continue;
                    }
                    if sums[callee].blocks && !sums[idx].blocks {
                        sums[idx].blocks = true;
                        if let Ev::Call { name, .. } = ev {
                            sums[idx].blocks_via = Some(name.clone());
                        }
                        changed = true;
                    }
                    if sums[callee].emits && !sums[idx].emits {
                        sums[idx].emits = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// `fn name(..) -> &Mutex<..>` aliases: map the fn's bare name to the
/// lock-binding names its body mentions, so `self.node(i).lock()`
/// resolves through `fn node(..) -> &Mutex<NodeHealth>`.
pub fn lock_returning_fns(irs: &[FnIr]) -> HashMap<String, Vec<String>> {
    let mut out: HashMap<String, Vec<String>> = HashMap::new();
    for ir in irs {
        let returns_lock = ir.ret_ty.iter().any(|t| t == "Mutex" || t == "RwLock")
            && !ir.ret_ty.iter().any(|t| t.contains("Guard"));
        if !returns_lock {
            continue;
        }
        // Every body ident except the fn's own params; the lock
        // registry filters to actual lock names at resolution time.
        let params: HashSet<&str> = ir.params.iter().map(|p| p.name.as_str()).collect();
        let mut names: Vec<String> = ir
            .body_idents
            .iter()
            .filter(|i| !params.contains(i.as_str()))
            .cloned()
            .collect();
        names.sort();
        out.entry(ir.name.clone()).or_default().extend(names);
    }
    out
}
