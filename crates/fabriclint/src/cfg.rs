//! Per-function IR extraction for the flow-sensitive passes.
//!
//! Built directly on the token stream from [`crate::lexer`] — no syn.
//! For every `fn` we record a linear event stream: lock acquisitions
//! (`.lock()` / `.read()` / `.write()` with an inferable receiver),
//! explicit `drop(..)` calls, call sites, statement ends, and block
//! closes. Guard lifetimes are replayed over that stream by the lock
//! pass: a let-bound guard dies at its block's close or an explicit
//! `drop`; an unbound (temporary) guard dies at the next `;` at its
//! brace depth or at block close, whichever comes first. That models
//! Rust's real drop order closely enough for edge derivation while
//! erring toward *longer* static lifetimes (over-approximation adds
//! never-witnessed edges, which are only coverage findings; dropping a
//! guard too early could hide a witnessed edge and fail the gate).
//!
//! Closures are inlined into the enclosing function's stream — their
//! bodies run on the same thread under the same guards — with one
//! exception: a closure passed to a call named `spawn` runs detached
//! on another thread, so its body becomes a separate synthetic
//! function and contributes no nested-guard edges to the spawner.

use crate::lexer::{Lexed, Tok, TokKind};

/// Which lock method an acquisition used; doubles as the class-kind
/// filter during resolution (`.lock()` only matches Mutex classes,
/// `.read()`/`.write()` only RwLock classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    Lock,
    Read,
    Write,
}

impl AcqKind {
    pub fn method(self) -> &'static str {
        match self {
            AcqKind::Lock => "lock",
            AcqKind::Read => "read",
            AcqKind::Write => "write",
        }
    }
}

/// One event in a function's linear stream.
#[derive(Debug, Clone)]
pub enum Ev {
    /// `recv.lock()` / `recv.read()` / `recv.write()`.
    Acquire {
        recv: String,
        kind: AcqKind,
        line: u32,
        /// `let g = recv.lock();` binds the guard to `g`; `None` is a
        /// temporary (or a binding through nested braces, treated as
        /// a temporary — see module docs).
        binding: Option<String>,
        /// Brace depth at the acquisition (fn body = 1).
        depth: u32,
    },
    /// `drop(name)` / `mem::drop(name)` — releases a bound guard. A
    /// drop nested deeper than the guard's binding is conditional
    /// (some branch keeps the guard); replays revive the guard when
    /// the enclosing block closes.
    Drop { name: String, depth: u32 },
    /// `;` at brace depth `depth` — temporaries at depth >= this die.
    Stmt { depth: u32 },
    /// `}` closing brace depth `depth` — guards at depth >= this die.
    Close { depth: u32 },
    /// A call site (free or method). `args` holds every identifier
    /// inside the call's parens — the condvar-wait exclusion and the
    /// ctx-propagation pass read them.
    Call {
        name: String,
        /// `Type::name(..)` qualification, if any (`Self` resolved to
        /// the enclosing impl type).
        qual: Option<String>,
        method: bool,
        line: u32,
        args: Vec<String>,
        /// Number of top-level arguments — used to narrow untyped
        /// method-call candidates by parameter count (closure-param
        /// commas can inflate this, so it's a filter with fallback,
        /// never a hard requirement).
        arity: usize,
    },
}

/// One function parameter: binding name plus the identifiers of its
/// type (so `deadline: Option<Deadline>` yields ty = [Option, Deadline]).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: Vec<String>,
}

/// The extracted IR of one function (or detached spawn closure).
#[derive(Debug, Clone)]
pub struct FnIr {
    /// Bare name (`acquire`); detached closures get `parent@spawn:LINE`.
    pub name: String,
    /// `Type::name` when inside an impl block.
    pub qual_name: Option<String>,
    pub file: String,
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` or a test-path file.
    pub is_test: bool,
    pub params: Vec<Param>,
    /// Identifiers of the return type (`-> &Mutex<T>` ⇒ contains Mutex).
    pub ret_ty: Vec<String>,
    pub events: Vec<Ev>,
    /// Single-ident closure params mapped to the identifier chain of
    /// the expression the closure's method was called on — used to
    /// resolve element locks (`.map(|h| h.lock())`).
    pub closure_aliases: Vec<(String, Vec<String>)>,
    /// `let g = <init>;` where the init expression's identifiers are
    /// recorded — resolves guards bound through nested blocks and
    /// `Arc::clone(map.write().entry(..).or_insert_with(..))` elements.
    pub let_inits: Vec<(String, Vec<String>, u32)>,
    /// Body mentions `obs::global()` (emit site for ctx-propagation).
    pub emits_directly: bool,
    /// Every non-keyword identifier in the body (ctx-propagation's
    /// "does the fn still mention its ctx param" check, and the
    /// `fn … -> &Mutex` alias resolution).
    pub body_idents: std::collections::HashSet<String>,
    /// Detached spawn-closure IRs collected while walking this body;
    /// hoisted into the top-level list by [`extract_fns`].
    #[doc(hidden)]
    pub detached_hack: Vec<FnIr>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "let", "mut", "fn", "pub", "use",
    "mod", "impl", "trait", "struct", "enum", "const", "static", "where", "move", "ref", "in",
    "as", "dyn", "type", "unsafe", "break", "continue", "crate", "super", "self", "Self", "true",
    "false", "async", "await", "box", "extern",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Extract every function in `file` (path + lexed tokens) into IR.
/// `in_test(line)` comes from the caller's test-region scan.
pub fn extract_fns(path: &str, lexed: &Lexed, in_test: &dyn Fn(u32) -> bool) -> Vec<FnIr> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut impl_type: Option<String> = None;
    let mut impl_close = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if i >= impl_close {
            impl_type = None;
        }
        if t.is_ident("impl") {
            // `impl [<..>] [Trait for] Type [<..>] {`: the impl type is
            // the last plain ident before the body's `{` that is not a
            // generic parameter or the trait name before `for`.
            if let Some((ty, body_open)) = parse_impl_header(toks, i) {
                impl_type = Some(ty);
                impl_close = crate::match_delim_pub(toks, body_open, '{', '}');
                i = body_open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            if let Some((ir, close)) = parse_fn(path, toks, i, impl_type.as_deref(), in_test) {
                out.push(ir);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    // Detached spawn closures were collected per-fn; hoist them out.
    let mut hoisted = Vec::new();
    for ir in &mut out {
        hoisted.append(&mut ir.detached_hack);
    }
    out.append(&mut hoisted);
    out
}

impl FnIr {
    fn blank(name: String, qual: Option<String>, file: &str, line: u32, is_test: bool) -> FnIr {
        FnIr {
            name,
            qual_name: qual,
            file: file.to_string(),
            line,
            is_test,
            params: Vec::new(),
            ret_ty: Vec::new(),
            events: Vec::new(),
            closure_aliases: Vec::new(),
            let_inits: Vec::new(),
            emits_directly: false,
            body_idents: std::collections::HashSet::new(),
            detached_hack: Vec::new(),
        }
    }
}

/// `impl<T> Trait for Type<T> { … }` → ("Type", index of `{`).
fn parse_impl_header(toks: &[Tok], impl_idx: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') && angle <= 0 {
            return last_ident.map(|ty| (ty, j));
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.kind == TokKind::Ident && angle <= 0 {
            if t.text == "for" || t.text == "where" {
                if t.text == "where" {
                    // Type already seen; scan on to `{`.
                    last_ident.as_ref()?;
                } else {
                    last_ident = None; // trait name discarded; type follows
                }
            } else if !is_keyword(&t.text) {
                last_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Parse the `fn` at `fn_idx` into IR; returns it plus the index of
/// the body's closing `}`.
fn parse_fn(
    path: &str,
    toks: &[Tok],
    fn_idx: usize,
    impl_type: Option<&str>,
    in_test: &dyn Fn(u32) -> bool,
) -> Option<(FnIr, usize)> {
    let name = toks[fn_idx + 1].text.clone();
    let line = toks[fn_idx + 1].line;
    // Parameter list: first `(` after the name (generics hold no parens
    // in this codebase).
    let mut open = fn_idx + 2;
    while open < toks.len() && !toks[open].is_punct('(') {
        if toks[open].is_punct('{') || toks[open].is_punct(';') {
            return None;
        }
        open += 1;
    }
    if open >= toks.len() {
        return None;
    }
    let params_close = crate::match_delim_pub(toks, open, '(', ')');
    let params = parse_params(&toks[open + 1..params_close]);
    // Return type: tokens between `)` and the body `{` (or `;`),
    // minus any `where` clause.
    let mut body_open = params_close + 1;
    let mut ret_ty = Vec::new();
    let mut in_where = false;
    while body_open < toks.len() && !toks[body_open].is_punct('{') {
        let t = &toks[body_open];
        if t.is_punct(';') {
            return None; // trait method declaration, no body
        }
        if t.is_ident("where") {
            in_where = true;
        }
        if !in_where && t.kind == TokKind::Ident && !is_keyword(&t.text) {
            ret_ty.push(t.text.clone());
        }
        body_open += 1;
    }
    if body_open >= toks.len() {
        return None;
    }
    let close = crate::match_delim_pub(toks, body_open, '{', '}');
    let qual = impl_type.map(|t| format!("{}::{}", t, name));
    let mut ir = FnIr::blank(name, qual, path, line, in_test(line));
    ir.params = params;
    ir.ret_ty = ret_ty;
    walk_body(&mut ir, toks, body_open, close, in_test);
    Some((ir, close))
}

/// `a: &T, mut b: Vec<U>, &self` → params (self forms skipped).
fn parse_params(toks: &[Tok]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut k = 0usize;
    let flush = |range: &[Tok], params: &mut Vec<Param>| {
        // name is the first ident that is not a modifier keyword.
        let mut name = None;
        let mut ty = Vec::new();
        let mut seen_colon = false;
        for t in range {
            if t.is_punct(':') {
                seen_colon = true;
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            if !seen_colon {
                if t.text == "mut" || t.text == "ref" {
                    continue;
                }
                if name.is_none() {
                    name = Some(t.text.clone());
                }
            } else if !is_keyword(&t.text) {
                ty.push(t.text.clone());
            }
        }
        if let Some(name) = name {
            if name != "self" {
                params.push(Param { name, ty });
            }
        }
    };
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(',') && depth <= 0 {
            flush(&toks[start..k], &mut params);
            start = k + 1;
        }
        k += 1;
    }
    if start < toks.len() {
        flush(&toks[start..], &mut params);
    }
    params
}

/// Walk a `{ … }` body emitting events. `open`/`close` index the
/// braces; depth inside the body starts at 1.
fn walk_body(
    ir: &mut FnIr,
    toks: &[Tok],
    open: usize,
    close: usize,
    in_test: &dyn Fn(u32) -> bool,
) {
    let mut depth: u32 = 1;
    // Innermost-first stack of (depth, let-name, init-start-index).
    let mut lets: Vec<(u32, String, usize)> = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_bytes()[0] as char {
                '{' => depth += 1,
                '}' => {
                    ir.events.push(Ev::Close { depth });
                    while lets.last().is_some_and(|(d, _, _)| *d >= depth) {
                        let (_, name, start) = lets.pop().unwrap();
                        flush_let_init(ir, toks, &name, start, i);
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    ir.events.push(Ev::Stmt { depth });
                    while lets.last().is_some_and(|(d, _, _)| *d >= depth) {
                        let (_, name, start) = lets.pop().unwrap();
                        flush_let_init(ir, toks, &name, start, i);
                    }
                }
                // Closure-param aliases: `.method(|p| …)`,
                // `.method(move |p| …)`, `.map(|(name, t)| …)` —
                // every param ident aliases to the receiver chain
                // of the owning call, so element locks resolve
                // (`t.lock()` through `self.timers.read().iter()`).
                '|' if i > 0
                    && (toks[i - 1].is_punct('(')
                        || toks[i - 1].is_punct(',')
                        || toks[i - 1].is_ident("move"))
                    && toks.get(i + 1).is_some_and(|n| !n.is_punct('|')) =>
                {
                    let mut j = i + 1;
                    let mut names = Vec::new();
                    while j < close && j - i <= 12 && !toks[j].is_punct('|') {
                        let p = &toks[j];
                        if p.kind == TokKind::Ident && !is_keyword(&p.text) {
                            names.push(p.text.clone());
                        }
                        j += 1;
                    }
                    if j < close && toks[j].is_punct('|') && !names.is_empty() {
                        let chain = chain_before_call(toks, i + 1);
                        if !chain.is_empty() {
                            for n in names {
                                ir.closure_aliases.push((n, chain.clone()));
                            }
                        }
                    }
                }
                _ => {}
            },
            TokKind::Ident => {
                let name = t.text.as_str();
                if !is_keyword(name) {
                    ir.body_idents.insert(name.to_string());
                }
                // `let [mut] x = …` — record the binding and where its
                // init expression starts.
                if name == "let"
                    && i + 1 < close
                    && !matches!(
                        toks.get(i + 1),
                        Some(n) if n.is_punct('(') // tuple patterns: skip
                    )
                {
                    let mut j = i + 1;
                    while j < close && toks[j].is_ident("mut") {
                        j += 1;
                    }
                    if j < close && toks[j].kind == TokKind::Ident && !is_keyword(&toks[j].text) {
                        lets.push((depth, toks[j].text.clone(), j + 1));
                    }
                }
                // `drop(x)` / `mem::drop(x)`.
                if name == "drop"
                    && i + 2 < close
                    && toks[i + 1].is_punct('(')
                    && toks[i + 2].kind == TokKind::Ident
                    && !(i > 0 && toks[i - 1].is_punct('.'))
                {
                    ir.events.push(Ev::Drop {
                        name: toks[i + 2].text.clone(),
                        depth,
                    });
                }
                // `obs::global()` emit marker.
                if name == "global"
                    && i + 2 < close
                    && toks[i + 1].is_punct('(')
                    && toks[i + 2].is_punct(')')
                {
                    ir.emits_directly = true;
                }
                // Acquisitions: `.lock()` / `.read()` / `.write()` with
                // empty args, receiver walked back over `)`/`]` chains.
                if i > 0 && toks[i - 1].is_punct('.') {
                    let acq = match name {
                        "lock" => Some(AcqKind::Lock),
                        "read" => Some(AcqKind::Read),
                        "write" => Some(AcqKind::Write),
                        _ => None,
                    };
                    if let Some(kind) = acq {
                        if i + 2 < toks.len()
                            && toks[i + 1].is_punct('(')
                            && toks[i + 2].is_punct(')')
                        {
                            if let Some(recv) = receiver_name(toks, i - 1) {
                                // `let g = m.lock();` binds the guard —
                                // but only when the acquisition *ends*
                                // the init. In `let v = m.read().get(k)`
                                // the guard is a chain temporary that
                                // dies at the `;`, and binding it to `v`
                                // would keep it falsely live for the
                                // rest of the block.
                                let chain_continues =
                                    toks.get(i + 3).is_some_and(|n| n.is_punct('.'));
                                let binding = if chain_continues {
                                    None
                                } else {
                                    lets.last()
                                        .filter(|(d, _, _)| *d == depth)
                                        .map(|(_, n, _)| n.clone())
                                };
                                ir.events.push(Ev::Acquire {
                                    recv,
                                    kind,
                                    line: t.line,
                                    binding,
                                    depth,
                                });
                            }
                        }
                    }
                }
                // Calls: `name(` (free, possibly `Type::name(`) or
                // `.name(` (method). Skip keywords, capitalized names
                // (constructors/variants), macro bangs, and fn defs.
                if i + 1 < close
                    && toks[i + 1].is_punct('(')
                    && !is_keyword(name)
                    && !matches!(name, "lock" | "read" | "write" | "drop")
                    && name.chars().next().is_some_and(|c| !c.is_ascii_uppercase())
                    && !(i > 0 && toks[i - 1].is_ident("fn"))
                    && !(i + 1 < close && toks[i + 1].is_punct('!'))
                {
                    let method = i > 0 && toks[i - 1].is_punct('.');
                    let qual = if !method
                        && i >= 3
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                        && toks[i - 3].kind == TokKind::Ident
                    {
                        let q = &toks[i - 3].text;
                        Some(if q == "Self" {
                            ir.qual_name
                                .as_deref()
                                .and_then(|qn| qn.split("::").next())
                                .unwrap_or("Self")
                                .to_string()
                        } else {
                            q.clone()
                        })
                    } else {
                        None
                    };
                    let call_close = crate::match_delim_pub(toks, i + 1, '(', ')');
                    // Detached spawn closures: extract `spawn(move || …)`
                    // bodies into separate IRs and skip them here.
                    if name == "spawn" {
                        if let Some((body_open, body_close)) =
                            closure_block(toks, i + 1, call_close)
                        {
                            let cl_line = toks[body_open].line;
                            let mut sub = FnIr::blank(
                                format!("{}@spawn:{}", ir.name, cl_line),
                                None,
                                &ir.file,
                                cl_line,
                                ir.is_test || in_test(cl_line),
                            );
                            walk_body(&mut sub, toks, body_open, body_close, in_test);
                            // The parent lexically mentions whatever
                            // the closure captures — handing a ctx
                            // param to a spawned closure *is* passing
                            // it through, so the propagation pass must
                            // still see those idents.
                            ir.body_idents.extend(sub.body_idents.iter().cloned());
                            let mut nested = std::mem::take(&mut sub.detached_hack);
                            ir.detached_hack.push(sub);
                            ir.detached_hack.append(&mut nested);
                            // Walk the rest of the spawn args (rare)
                            // then continue after the call.
                            ir.events.push(Ev::Call {
                                name: name.to_string(),
                                qual,
                                method,
                                line: t.line,
                                args: Vec::new(),
                                arity: 1,
                            });
                            i = call_close + 1;
                            continue;
                        }
                    }
                    let args: Vec<String> = toks[i + 2..call_close.min(toks.len())]
                        .iter()
                        .filter(|a| a.kind == TokKind::Ident && !is_keyword(&a.text))
                        .map(|a| a.text.clone())
                        .collect();
                    ir.events.push(Ev::Call {
                        name: name.to_string(),
                        qual,
                        method,
                        line: t.line,
                        args,
                        arity: call_arity(toks, i + 1, call_close),
                    });
                }
                // For-loop element aliases: `for <pat> in <chain> { … }`
                // maps each pattern ident to the chain's idents, so
                // `for shard in &self.shards { shard.lock() }` resolves
                // `shard` to the `shards` class.
                if name == "for" {
                    let mut j = i + 1;
                    let mut pat = Vec::new();
                    while j < close && !toks[j].is_ident("in") && !toks[j].is_punct('{') {
                        let p = &toks[j];
                        if p.kind == TokKind::Ident
                            && !is_keyword(&p.text)
                            && p.text
                                .chars()
                                .next()
                                .is_some_and(|c| !c.is_ascii_uppercase())
                        {
                            pat.push(p.text.clone());
                        }
                        j += 1;
                    }
                    if j < close && toks[j].is_ident("in") && !pat.is_empty() {
                        let mut chain = Vec::new();
                        let mut k = j + 1;
                        while k < close && !toks[k].is_punct('{') {
                            if toks[k].kind == TokKind::Ident && !is_keyword(&toks[k].text) {
                                chain.push(toks[k].text.clone());
                            }
                            k += 1;
                        }
                        if !chain.is_empty() {
                            for p in pat {
                                ir.closure_aliases.push((p, chain.clone()));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    ir.events.push(Ev::Close { depth: 1 });
    while let Some((_, name, start)) = lets.pop() {
        flush_let_init(ir, toks, &name, start, close);
    }
}

/// Top-level argument count of the call whose parens span
/// `open..close`: 0 for `()`, else 1 + commas at delimiter depth 0.
/// Commas inside nested `()`/`[]`/`{}` don't count; commas in a
/// closure's `|a, b|` params do (callers treat arity as a filter with
/// fallback for exactly this reason).
fn call_arity(toks: &[Tok], open: usize, close: usize) -> usize {
    if close <= open + 1 {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    for t in &toks[open + 1..close.min(toks.len())] {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth <= 0 {
            commas += 1;
        }
    }
    commas + 1
}

/// Record the identifiers of `let name = <init upto end>` (used for
/// guard-through-block and element-lock resolution).
fn flush_let_init(ir: &mut FnIr, toks: &[Tok], name: &str, start: usize, end: usize) {
    let line = toks.get(start).map_or(0, |t| t.line);
    let idents: Vec<String> = toks[start..end.min(toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
        .map(|t| t.text.clone())
        .collect();
    if !idents.is_empty() {
        ir.let_inits.push((name.to_string(), idents, line));
    }
}

/// Walk back from the `.` at `dot` to name the receiver of a lock
/// method: `self.field.lock()` → field; `arr[i].lock()` → arr;
/// `f(x).lock()` → f; plain `g.lock()` → g.
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        let t = &toks[k];
        if t.is_punct(']') {
            k = match_back(toks, k, '[', ']')?;
            continue;
        }
        if t.is_punct(')') {
            k = match_back(toks, k, '(', ')')?;
            continue;
        }
        if t.kind == TokKind::Ident {
            if t.text == "self" {
                return None; // bare `self.lock()` — not a thing here
            }
            return Some(t.text.clone());
        }
        return None;
    }
}

/// Index of the `open_ch` matching the `close_ch` at `close` (backward).
fn match_back(toks: &[Tok], close: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close;
    loop {
        let t = &toks[k];
        if t.is_punct(close_ch) {
            depth += 1;
        } else if t.is_punct(open_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
}

/// For a closure starting at the `|` before token `param_idx`, collect
/// the identifier chain of the expression its owning method was called
/// on: in `self.histos.read().get(n).map(|h| …)`, returns the idents
/// back through the chain (histos, read, get, n, map, …).
fn chain_before_call(toks: &[Tok], param_idx: usize) -> Vec<String> {
    // param_idx-1 is `|`; before that `(` or `move` or `,`. Find the
    // `(` of the owning call, then the method ident, then walk the
    // receiver chain back collecting idents.
    let mut k = param_idx - 1;
    while k > 0 && !toks[k].is_punct('(') {
        k -= 1;
    }
    if k == 0 {
        return Vec::new();
    }
    // toks[k] is `(`; toks[k-1] should be the method ident.
    let mut out = Vec::new();
    let mut j = k;
    let mut steps = 0;
    while j > 0 && steps < 40 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        if t.is_punct(')') {
            if let Some(open) = match_back(toks, j, '(', ')') {
                // Collect idents inside the skipped parens too (arg
                // names can matter for map-get chains).
                for a in &toks[open..=j] {
                    if a.kind == TokKind::Ident && !is_keyword(&a.text) {
                        out.push(a.text.clone());
                    }
                }
                j = open;
            }
            continue;
        }
        if t.is_punct(']') {
            if let Some(open) = match_back(toks, j, '[', ']') {
                j = open;
            }
            continue;
        }
        if t.kind == TokKind::Ident {
            if t.text != "self" && !is_keyword(&t.text) {
                out.push(t.text.clone());
            }
            // Chain continues only through `.` or `::`.
            if j == 0 || !(toks[j - 1].is_punct('.') || toks[j - 1].is_punct(':')) {
                break;
            }
            continue;
        }
        if t.is_punct('.') || t.is_punct(':') {
            continue;
        }
        break;
    }
    out
}

/// Find a closure body inside a call's parens: returns the `{`/`}`
/// indices of a block closure, if present.
fn closure_block(toks: &[Tok], call_open: usize, call_close: usize) -> Option<(usize, usize)> {
    let mut k = call_open + 1;
    // Skip to the first `|` (closure params start).
    while k < call_close && !toks[k].is_punct('|') {
        k += 1;
    }
    if k >= call_close {
        return None;
    }
    // Skip past closure params: `||` or `|a, b|`.
    k += 1;
    if k < call_close && toks[k].is_punct('|') {
        k += 1; // `||`
    } else {
        while k < call_close && !toks[k].is_punct('|') {
            k += 1;
        }
        k += 1;
    }
    // Optional `-> Type` then `{`.
    while k < call_close && !toks[k].is_punct('{') {
        if toks[k].is_punct(',') || toks[k].is_punct(')') {
            return None; // expression closure, no block
        }
        k += 1;
    }
    if k >= call_close {
        return None;
    }
    let body_close = crate::match_delim_pub(toks, k, '{', '}');
    Some((k, body_close))
}
