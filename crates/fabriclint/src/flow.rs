//! The flow-sensitive passes: static-lock-order, blocking-under-lock,
//! context-propagation, plus the lexical deprecated-api pass. One
//! entry point builds the shared IR/call-graph/lock-registry state and
//! runs everything, returning findings (fed through the normal
//! allow machinery by `lint_files`) and the static lock graph (used by
//! the `--lock-graph` diff mode and the in-tree subgraph tests).

use std::collections::{BTreeMap, HashMap};

use crate::callgraph::{self, CallGraph};
use crate::cfg::{self, Ev, FnIr};
use crate::lexer::lex;
use crate::locks::{self, LockGraph, LockRegistry};
use crate::{find_test_regions_pub, is_test_path_pub, Config, Finding, Rule, SourceFile};

/// Everything the flow passes computed, kept so callers (the CLI's
/// `--lock-graph` mode, tests) can reuse the graph without re-linting.
pub struct FlowAnalysis {
    pub findings: Vec<Finding>,
    pub graph: LockGraph,
}

pub fn run(files: &[SourceFile], cfg: &Config) -> FlowAnalysis {
    let debug = std::env::var("FABRICLINT_DEBUG").is_ok();
    let mut last = std::time::Instant::now();
    let mut stage = |name: &str| {
        if debug {
            eprintln!("[flow] {name}: {:?}", last.elapsed());
            last = std::time::Instant::now();
        }
    };
    let mut findings = Vec::new();

    // ---- shared state: lexing, IR, lock registry, call graph ----
    let lexed: Vec<(&SourceFile, crate::lexer::Lexed)> =
        files.iter().map(|f| (f, lex(&f.text))).collect();

    let mut irs: Vec<FnIr> = Vec::new();
    let mut reg = LockRegistry::default();
    let mut default_fields = Vec::new();
    let mut stmt_idents: HashMap<String, Vec<String>> = HashMap::new();
    for (f, lx) in &lexed {
        let (regions, whole) = find_test_regions_pub(&lx.tokens);
        let path_test = is_test_path_pub(&f.path);
        let in_test =
            |line: u32| whole || path_test || regions.iter().any(|&(s, e)| line >= s && line <= e);
        if debug {
            eprintln!("[flow] file {}", f.path);
        }
        irs.extend(cfg::extract_fns(&f.path, lx, &in_test));
        locks::scan_creations(&f.path, lx, &mut reg, &mut default_fields);
        stmt_idents.extend(locks::creation_stmt_idents(&f.path, lx));
    }

    // Default-created lock fields share the vendored blanket-impl
    // creation sites; find those lines in the vendored source.
    let defaults = vendor_default_sites(&lexed);
    for (field, kind, _file) in &default_fields {
        let site = match kind {
            locks::LockKind::Mutex => defaults.mutex.clone(),
            locks::LockKind::RwLock => defaults.rwlock.clone(),
        };
        if let Some(site) = site {
            reg.add_default_field(site, *kind, field.clone());
        }
    }
    locks::tag_containers(&mut reg, &stmt_idents);

    stage("extract");
    let cg = CallGraph::build(&irs);
    let fn_lock_rets = callgraph::lock_returning_fns(&irs);
    let call_map = |ir: &FnIr, ev: &Ev| cg.resolve(ir, ev);

    // ---- static-lock-order: edges, cycles, lost guards ----
    let lock_sums = locks::lock_summaries(&irs, &reg, &fn_lock_rets, &call_map);
    stage("summaries");
    let mut graph = LockGraph {
        registry: LockRegistry::default(),
        ..Default::default()
    };
    let idx_of: HashMap<String, Vec<usize>> = HashMap::new();
    let mut edge_in_test: BTreeMap<(String, String), bool> = BTreeMap::new();
    for ir in &irs {
        locks::derive_edges(
            ir,
            &idx_of,
            &irs,
            &lock_sums,
            &reg,
            &fn_lock_rets,
            &call_map,
            &mut graph,
            &mut edge_in_test,
        );
    }
    stage("edges");
    locks::find_cycles(&mut graph, &edge_in_test);
    stage("cycles");

    for (file, line, recv) in &graph.unresolved {
        if is_test_path_pub(file) || file.starts_with("vendor/") {
            continue; // manufactured locks in tests/vendor self-tests
        }
        findings.push(Finding {
            file: file.clone(),
            line: *line,
            rule: Rule::StaticLockOrder,
            message: format!(
                "`.lock()` receiver `{recv}` resolves to no known lock class; \
                 the static lock-order analysis lost track of this guard"
            ),
        });
    }
    for (cycle, all_test) in &graph.cycles {
        if *all_test {
            continue; // deliberately inverted edges in test code
        }
        // Every `#[derive(Default)]`-created lock shares one class (the
        // vendored blanket impl's creation site — `default()` is not
        // `#[track_caller]`), exactly as the runtime witness keys them.
        // A cycle through that merged class usually conflates two
        // *different* locks (mover ops vs. rebalance pending), so it
        // does not fail the build; the runtime witness still fails any
        // such cycle it actually observes within one process.
        if cycle.iter().any(|s| s.starts_with(locks::VENDOR_LOT)) {
            continue;
        }
        let via = graph
            .edges
            .get(&(cycle[0].clone(), cycle[(1) % cycle.len()].clone()))
            .cloned()
            .unwrap_or_default();
        let (file, line) = split_site(&via);
        findings.push(Finding {
            file,
            line,
            rule: Rule::StaticLockOrder,
            message: format!(
                "static lock-order cycle: {} -> (back to start); acquire these \
                 classes in one global order",
                cycle.join(" -> ")
            ),
        });
    }

    // ---- blocking-under-lock ----
    let flow_sums = callgraph::flow_summaries(&irs, &cg, &cfg.blocking_fns, crate::EMIT_METHODS);
    for ir in &irs {
        if ir.is_test || ir.file.starts_with("vendor/") {
            continue;
        }
        blocking_under_lock(ir, &cg, &flow_sums, &reg, &fn_lock_rets, cfg, &mut findings);
    }

    // ---- context-propagation ----
    for (idx, ir) in irs.iter().enumerate() {
        if ir.is_test || ir.file.starts_with("vendor/") {
            continue;
        }
        context_propagation(ir, &flow_sums[idx], cfg, &mut findings);
    }

    stage("flow-passes");
    // ---- deprecated-api (lexical) ----
    for (f, lx) in &lexed {
        deprecated_api(f, lx, cfg, &mut findings);
    }

    graph.registry = reg;
    FlowAnalysis { findings, graph }
}

/// The blanket `impl Default` creation sites inside the vendored
/// parking_lot: the unqualified `Mutex::new` / `RwLock::new` calls in
/// `vendor/parking_lot/src/lib.rs` (its inner std primitives are
/// `std::sync`-qualified, so they don't match).
fn vendor_default_sites(lexed: &[(&SourceFile, crate::lexer::Lexed)]) -> locks::DefaultSites {
    let mut out = locks::DefaultSites::default();
    for (f, lx) in lexed {
        if f.path != locks::VENDOR_LOT {
            continue;
        }
        let toks = &lx.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != crate::lexer::TokKind::Ident {
                continue;
            }
            let qualified_std = i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("sync");
            if qualified_std
                || !(toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|x| x.is_ident("new")))
            {
                continue;
            }
            let site = format!("{}:{}", f.path, t.line);
            if t.text == "Mutex" && out.mutex.is_none() {
                out.mutex = Some(site);
            } else if t.text == "RwLock" && out.rwlock.is_none() {
                out.rwlock = Some(site);
            }
        }
    }
    out
}

fn split_site(site: &str) -> (String, u32) {
    match site.rsplit_once(':') {
        Some((f, l)) => (f.to_string(), l.parse().unwrap_or(0)),
        None => (site.to_string(), 0),
    }
}

/// Replay guard liveness and flag calls that may sleep/park while a
/// guard is live (condvar waits release the guard they're handed).
fn blocking_under_lock(
    ir: &FnIr,
    cg: &CallGraph,
    flow_sums: &[callgraph::FlowSummary],
    reg: &LockRegistry,
    fn_lock_rets: &HashMap<String, Vec<String>>,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    struct Guard {
        binding: Option<String>,
        depth: u32,
        temp: bool,
        recv: String,
        line: u32,
    }
    let mut live: Vec<Guard> = Vec::new();
    // Conditionally-dropped guards (drop nested deeper than the
    // binding) revive when the enclosing block closes.
    let mut suspended: Vec<(u32, Guard)> = Vec::new();
    for ev in &ir.events {
        match ev {
            Ev::Acquire {
                recv,
                kind,
                line,
                binding,
                depth,
            } => {
                // Only receivers that resolve to a real lock class
                // count as guards (`file.read()` io noise does not).
                if locks::resolve_recv(reg, ir, fn_lock_rets, recv, *kind).is_empty() {
                    continue;
                }
                live.push(Guard {
                    binding: binding.clone(),
                    depth: *depth,
                    temp: binding.is_none(),
                    recv: recv.clone(),
                    line: *line,
                });
            }
            Ev::Drop { name, depth } => {
                let mut kept = Vec::with_capacity(live.len());
                for g in live.drain(..) {
                    if g.binding.as_deref() != Some(name) {
                        kept.push(g);
                    } else if g.depth < *depth {
                        suspended.push((*depth, g));
                    }
                }
                live = kept;
            }
            Ev::Stmt { depth } => live.retain(|g| !(g.temp && g.depth >= *depth)),
            Ev::Close { depth } => {
                live.retain(|g| g.depth < *depth);
                let mut still = Vec::with_capacity(suspended.len());
                for (d, g) in suspended.drain(..) {
                    if d >= *depth && g.depth < *depth {
                        live.push(g);
                    } else if g.depth < *depth {
                        still.push((d, g));
                    }
                }
                suspended = still;
            }
            Ev::Call {
                name, args, line, ..
            } => {
                if live.is_empty() {
                    continue;
                }
                let direct_block = cfg.blocking_fns.iter().any(|b| b == name);
                let transitive_block = !direct_block
                    && cg
                        .resolve(ir, ev)
                        .into_iter()
                        .any(|callee| flow_sums[callee].blocks);
                if !direct_block && !transitive_block {
                    continue;
                }
                let wait_call = name == "wait" || name == "wait_until";
                let held: Vec<&Guard> = live
                    .iter()
                    .filter(|g| {
                        !(wait_call
                            && g.binding
                                .as_deref()
                                .is_some_and(|b| args.iter().any(|a| a == b)))
                    })
                    .collect();
                if let Some(g) = held.first() {
                    findings.push(Finding {
                        file: ir.file.clone(),
                        line: *line,
                        rule: Rule::BlockingUnderLock,
                        message: format!(
                            "call to `{}` may sleep/park while the guard on `{}` \
                             (acquired line {}) is live; release the lock before \
                             blocking",
                            name, g.recv, g.line
                        ),
                    });
                }
            }
        }
    }
}

/// A fn that accepts a `Deadline`/`TraceCtx` and transitively reaches
/// a sleep or emit site must actually use the ctx it was handed.
fn context_propagation(
    ir: &FnIr,
    sum: &callgraph::FlowSummary,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if !(sum.blocks || sum.emits) {
        return;
    }
    for p in &ir.params {
        let is_ctx = p.ty.iter().any(|t| cfg.ctx_types.iter().any(|c| c == t));
        if !is_ctx || p.name == "_" || p.name.starts_with('_') {
            continue;
        }
        if !ir.body_idents.contains(&p.name) {
            let ty =
                p.ty.iter()
                    .find(|t| cfg.ctx_types.iter().any(|c| c == *t))
                    .cloned()
                    .unwrap_or_default();
            findings.push(Finding {
                file: ir.file.clone(),
                line: ir.line,
                rule: Rule::ContextPropagation,
                message: format!(
                    "fn `{}` takes `{}: {}` and reaches a {} site but never uses \
                     the ctx; pass it through or drop the parameter",
                    ir.name,
                    p.name,
                    ty,
                    if sum.blocks { "sleep" } else { "emit" }
                ),
            });
        }
    }
}

/// Lexical pass: callers of the PR 8 `#[deprecated]` save shims.
/// `save_to_db(..)` / `save_via_dfs(..)` anywhere, and free-fn
/// `save(..)` (method `.save()` is the DataFrameWriter API, not the
/// shim). The shims' defining files and test code are exempt.
fn deprecated_api(
    f: &SourceFile,
    lx: &crate::lexer::Lexed,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if is_test_path_pub(&f.path) {
        return;
    }
    let toks = &lx.tokens;
    let (regions, whole) = find_test_regions_pub(toks);
    let in_test = |line: u32| whole || regions.iter().any(|&(s, e)| line >= s && line <= e);
    // Fns this file defines itself: a bare `save(..)` call in a file
    // with its own `fn save` resolves to the local helper, not the shim.
    let local_fns: std::collections::HashSet<&str> = toks
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            t.is_ident("fn")
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == crate::lexer::TokKind::Ident)
        })
        .map(|(i, _)| toks[i + 1].text.as_str())
        .collect();
    for (name, defining) in &cfg.deprecated_fns {
        if f.path.ends_with(defining.as_str()) {
            continue;
        }
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident(name) || in_test(t.line) {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            let prev = i.checked_sub(1).map(|k| &toks[k]);
            // Skip definitions and method calls (`.save()` is the
            // writer API, not the shim).
            if prev.is_some_and(|p| p.is_punct('.') || p.is_ident("fn") || p.is_ident("use")) {
                continue;
            }
            // Qualified calls (`connector::save(`) always refer to the
            // shim; bare calls defer to a local `fn` of the same name.
            let qualified = prev.is_some_and(|p| p.is_punct(':'));
            if !qualified && local_fns.contains(name.as_str()) {
                continue;
            }
            findings.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: Rule::DeprecatedApi,
                message: format!(
                    "call to deprecated save shim `{name}`; build a \
                     connector::SaveRequest and use `save_request` instead"
                ),
            });
        }
    }
}
