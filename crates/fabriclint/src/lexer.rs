//! A hand-rolled Rust lexer.
//!
//! The linter runs in environments with no registry access, so it
//! cannot lean on `syn`/`proc-macro2`; this module tokenizes the
//! subset of Rust the rules need: identifiers (including raw
//! identifiers), string literals of every flavor (cooked, raw, byte,
//! raw-byte) with escapes resolved, character literals vs. lifetimes,
//! numbers, punctuation, and comments (line and nested block), each
//! tagged with its 1-based source line.
//!
//! Comments are kept out of the token stream but retained in a side
//! table — the `SAFETY:` rule and the inline `fabriclint: allow(..)`
//! directives are read from there.

/// What a token is. The rules only ever need the class plus the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// A string literal; `text` holds the cooked contents.
    Str,
    /// A char or byte literal (contents unimportant to the rules).
    Char,
    Lifetime,
    Num,
    /// One punctuation character per token.
    Punct,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(ch as u8))
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Tokenized source: the code tokens plus a `(line, text)` list of
/// comments (block comments are recorded at their starting line).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<(u32, String)>,
}

pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    let s = self.cooked_string();
                    self.push(TokKind::Str, s, line);
                }
                'r' if matches!(self.peek(1), Some('"') | Some('#')) => self.raw_or_ident(line),
                'b' if matches!(self.peek(1), Some('"') | Some('\'') | Some('r')) => {
                    self.byte_literal(line)
                }
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphabetic() => {
                    let id = self.ident();
                    self.push(TokKind::Ident, id, line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push((line, text));
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push((line, text));
    }

    /// A `"…"` literal with escapes resolved (close enough for the
    /// rules: counter names and fixture text are plain ASCII).
    fn cooked_string(&mut self) -> String {
        self.bump(); // opening quote
        let mut s = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('0') => s.push('\0'),
                    Some('\\') => s.push('\\'),
                    Some('\'') => s.push('\''),
                    Some('"') => s.push('"'),
                    Some('x') => {
                        let hex: String = (0..2).filter_map(|_| self.bump()).collect();
                        if let Ok(v) = u8::from_str_radix(&hex, 16) {
                            s.push(v as char);
                        }
                    }
                    Some('u') => {
                        // \u{…}: consume through the closing brace.
                        let mut hex = String::new();
                        while let Some(c) = self.bump() {
                            if c == '}' {
                                break;
                            }
                            if c != '{' {
                                hex.push(c);
                            }
                        }
                        if let Some(ch) =
                            u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                        {
                            s.push(ch);
                        }
                    }
                    Some('\n') => {
                        // Line-continuation: swallow leading whitespace.
                        while matches!(self.peek(0), Some(c) if c.is_whitespace()) {
                            self.bump();
                        }
                    }
                    Some(other) => s.push(other),
                    None => break,
                },
                _ => s.push(c),
            }
        }
        s
    }

    /// `r"…"`, `r#"…"#`, or a raw identifier `r#ident`.
    fn raw_or_ident(&mut self, line: u32) {
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(hashes) {
            Some('"') => {
                for _ in 0..hashes {
                    self.bump();
                }
                self.bump(); // opening quote
                let s = self.raw_string_body(hashes);
                self.push(TokKind::Str, s, line);
            }
            _ if hashes == 1 => {
                // Raw identifier r#name.
                self.bump(); // '#'
                let id = self.ident();
                self.push(TokKind::Ident, id, line);
            }
            _ => {
                // Bare 'r' identifier (e.g. a variable named r).
                let id = format!("r{}", self.ident());
                self.push(TokKind::Ident, id, line);
            }
        }
    }

    fn raw_string_body(&mut self, hashes: usize) -> String {
        let mut s = String::new();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            s.push(c);
        }
        s
    }

    /// `b"…"`, `br#"…"#`, or `b'…'`.
    fn byte_literal(&mut self, line: u32) {
        match self.peek(1) {
            Some('"') => {
                self.bump(); // 'b'
                let s = self.cooked_string();
                self.push(TokKind::Str, s, line);
            }
            Some('\'') => {
                self.bump(); // 'b'
                self.bump(); // quote
                while let Some(c) = self.bump() {
                    if c == '\\' {
                        self.bump();
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            _ => {
                // br"…" / br#"…"#
                self.bump(); // 'b'
                self.raw_or_ident(line);
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // 'x' / '\n' are chars; 'a (no closing quote) is a lifetime.
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        self.bump(); // quote
        if is_char {
            while let Some(c) = self.bump() {
                if c == '\\' {
                    self.bump();
                } else if c == '\'' {
                    break;
                }
            }
            self.push(TokKind::Char, String::new(), line);
        } else {
            let id = self.ident();
            self.push(TokKind::Lifetime, id, line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                && !text.contains('.')
            {
                // 1.5 is one number; 0..10 stays three tokens.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self) -> String {
        let mut id = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                id.push(c);
                self.bump();
            } else {
                break;
            }
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_strings_and_puncts() {
        let toks = kinds(r#"obs::global().incr("a.b");"#);
        assert_eq!(toks[0], (TokKind::Ident, "obs".into()));
        assert_eq!(toks[1], (TokKind::Punct, ":".into()));
        assert!(toks.iter().any(|t| t == &(TokKind::Str, "a.b".into())));
    }

    #[test]
    fn comments_are_sidelined_with_lines() {
        let l = lex("// top\nfn x() {} /* block\nspans */ fn y() {}");
        assert_eq!(l.comments[0], (1, "// top".into()));
        assert!(l.comments[1].1.contains("block"));
        assert_eq!(l.comments[1].0, 2);
        // Block comment newline still advances the line counter.
        assert_eq!(l.tokens.last().unwrap().line, 3);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let s = r#"has "quotes""#; let r#fn = 1;"##);
        assert!(toks
            .iter()
            .any(|t| t == &(TokKind::Str, "has \"quotes\"".into())));
        assert!(toks.iter().any(|t| t == &(TokKind::Ident, "fn".into())));
    }

    #[test]
    fn escapes_are_cooked() {
        let toks = kinds(r#""a\nb\"c""#);
        assert_eq!(toks[0], (TokKind::Str, "a\nb\"c".into()));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("let c: char = 'x'; fn f<'a>(v: &'a str) {} let e = '\\n';");
        let chars = toks.iter().filter(|t| t.0 == TokKind::Char).count();
        let lifetimes = toks.iter().filter(|t| t.0 == TokKind::Lifetime).count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let l = lex("/* a /* b */ c */ fn after() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens[0].is_ident("fn"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5; }");
        assert!(toks.iter().any(|t| t == &(TokKind::Num, "0".into())));
        assert!(toks.iter().any(|t| t == &(TokKind::Num, "10".into())));
        assert!(toks.iter().any(|t| t == &(TokKind::Num, "1.5".into())));
    }
}
