//! `fabriclint`: workspace-aware static analysis for the fabric.
//!
//! The chaos/resilience gates in this repo are only as good as a set
//! of conventions no compiler checks: seeded schedules must not read
//! ambient time or entropy, `obs` counter names must match the
//! single-source registry, every error variant must carry a transient
//! /fatal classification, hot paths must not panic, and `unsafe` must
//! justify itself. This crate makes those conventions machine-checked.
//!
//! Five rules, all driven by the hand-rolled lexer in [`lexer`] (no
//! registry access, no syn):
//!
//! * **determinism** — banned identifiers (`SystemTime`, `UNIX_EPOCH`,
//!   `thread_rng`, …) anywhere outside explicitly allowlisted seed
//!   plumbing; replayable chaos schedules depend on it.
//! * **obs-registry** — every counter/timer name recorded through
//!   `obs::global()` must appear in `obs::names::DEFS` and vice versa
//!   (no phantom emits, no dead registry rows); dotted literals that
//!   share a registered family (`hedge.`, `shed.`, …) but are not
//!   registered are flagged as likely typos.
//! * **error-taxonomy** — every `DbError`/`ConnectorError` variant is
//!   classified by an `is_transient()` in its defining file and is
//!   constructed somewhere in the workspace.
//! * **panic-hygiene** — `.unwrap()`/`.expect(` are banned in
//!   non-test `mppdb`/`connector` code.
//! * **safety-comment** — every `unsafe` needs a `// SAFETY:` comment
//!   within the three preceding lines.
//!
//! Intentional exceptions are explicit and diff-reviewed: either an
//! inline `// fabriclint: allow(<rule>): why` on the offending line
//! (or the line above), or an entry in the checked-in
//! [`ALLOW_FILE`] baseline. Stale baseline entries are themselves
//! findings, so the exception list can only shrink by itself.

pub mod callgraph;
pub mod cfg;
pub mod flow;
pub mod lexer;
pub mod locks;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Lexed, Tok, TokKind};

/// Where the single-source obs name registry lives.
pub const NAMES_PATH: &str = "crates/obs/src/names.rs";

/// The checked-in baseline of intentional exceptions.
pub const ALLOW_FILE: &str = "fabriclint.allow";

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    Determinism,
    ObsRegistry,
    ErrorTaxonomy,
    PanicHygiene,
    SafetyComment,
    /// Flow-sensitive: static lock-order cycles and lost guards.
    StaticLockOrder,
    /// Flow-sensitive: a call that may sleep/park under a live guard.
    BlockingUnderLock,
    /// Flow-sensitive: a Deadline/TraceCtx parameter that is dropped
    /// on a path that sleeps or emits.
    ContextPropagation,
    /// Lexical: callers of `#[deprecated]` save shims.
    DeprecatedApi,
    /// Meta-rule: problems with the allowlist itself (stale entries).
    Allowlist,
}

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::ObsRegistry => "obs-registry",
            Rule::ErrorTaxonomy => "error-taxonomy",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::SafetyComment => "safety-comment",
            Rule::StaticLockOrder => "static-lock-order",
            Rule::BlockingUnderLock => "blocking-under-lock",
            Rule::ContextPropagation => "context-propagation",
            Rule::DeprecatedApi => "deprecated-api",
            Rule::Allowlist => "allowlist",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.as_str(),
            self.message
        )
    }
}

/// One source file handed to the linter (workspace-relative path).
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// Knobs the fixture tests override; the defaults describe this repo.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path of the obs name registry inside the file set.
    pub names_path: String,
    /// Enums whose variants need `is_transient()` classification.
    pub taxonomy_enums: Vec<String>,
    /// Path prefixes where `.unwrap()`/`.expect(` are banned.
    pub panic_path_prefixes: Vec<String>,
    /// Identifiers that leak ambient time/entropy into seeded code.
    pub banned_idents: Vec<String>,
    /// Base functions that can sleep/park the calling thread
    /// (blocking-under-lock's leaves; propagation is transitive).
    pub blocking_fns: Vec<String>,
    /// Context types the propagation pass tracks.
    pub ctx_types: Vec<String>,
    /// `(fn name, defining-file suffix)` of deprecated shims; callers
    /// outside the defining file are flagged.
    pub deprecated_fns: Vec<(String, String)>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            names_path: NAMES_PATH.to_string(),
            taxonomy_enums: vec!["DbError".to_string(), "ConnectorError".to_string()],
            panic_path_prefixes: vec![
                "crates/connector/src/".to_string(),
                "crates/mppdb/src/".to_string(),
            ],
            banned_idents: [
                "SystemTime",
                "UNIX_EPOCH",
                "thread_rng",
                "OsRng",
                "from_entropy",
                "getrandom",
                "RandomState",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
            blocking_fns: callgraph::default_blocking_fns(),
            ctx_types: vec!["Deadline".to_string(), "TraceCtx".to_string()],
            deprecated_fns: vec![
                (
                    "save".to_string(),
                    "crates/connector/src/lib.rs".to_string(),
                ),
                (
                    "save_to_db".to_string(),
                    "crates/connector/src/s2v.rs".to_string(),
                ),
                (
                    "save_via_dfs".to_string(),
                    "crates/connector/src/two_stage.rs".to_string(),
                ),
            ],
        }
    }
}

/// The checked-in exception baseline. Line format (one per line):
///
/// ```text
/// <rule> <path-suffix> [<message-substring>]
/// ```
///
/// A finding is suppressed when the rule matches, the finding's file
/// ends with the path suffix, and (if given) the message contains the
/// substring. `#` starts a comment.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    needle: String,
    line: u32,
}

impl Allowlist {
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (rule, path) = match (parts.next(), parts.next()) {
                (Some(r), Some(p)) => (r.to_string(), p.to_string()),
                _ => continue,
            };
            entries.push(AllowEntry {
                rule,
                path,
                needle: parts.collect::<Vec<_>>().join(" "),
                line: idx as u32 + 1,
            });
        }
        Allowlist { entries }
    }

    fn matches(&self, finding: &Finding, used: &mut HashSet<usize>) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == finding.rule.as_str()
                && finding.file.ends_with(&e.path)
                && (e.needle.is_empty() || finding.message.contains(&e.needle))
            {
                used.insert(i);
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------
// Registry parsing (obs names.rs)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RegEntry {
    name: String,
    kind: String,
    line: u32,
}

#[derive(Debug, Default)]
struct Registry {
    /// `pub const NAME: &str = "value";` bindings in names.rs. Array
    /// consts (`[&str; N]`) map to all their element values.
    consts: HashMap<String, Vec<String>>,
    entries: Vec<RegEntry>,
}

impl Registry {
    fn is_registered(&self, name: &str) -> bool {
        if self.entries.iter().any(|e| e.name == name) {
            return true;
        }
        for suffix in [
            ".count", ".sum_us", ".min_us", ".max_us", ".p50_us", ".p99_us",
        ] {
            if let Some(base) = name.strip_suffix(suffix) {
                return self
                    .entries
                    .iter()
                    .any(|e| e.name == base && e.kind == "Timer");
            }
        }
        false
    }

    fn families(&self) -> HashSet<String> {
        self.entries
            .iter()
            .filter_map(|e| e.name.split('.').next())
            .map(String::from)
            .collect()
    }
}

fn parse_registry(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) -> Registry {
    let toks = &lexed.tokens;
    let mut reg = Registry::default();
    // Consts: `const NAME: &str = "value";` and array consts
    // `const NAME: [&str; N] = ["a", "b"];` (the `;` inside the type
    // annotation is skipped by matching the brackets).
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("const") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                if toks[j].is_punct('[') {
                    j = match_delim(toks, j, '[', ']');
                }
                j += 1;
            }
            if j + 1 < toks.len() && toks[j].is_punct('=') {
                match toks[j + 1].kind {
                    TokKind::Str => {
                        reg.consts.insert(name, vec![toks[j + 1].text.clone()]);
                    }
                    TokKind::Punct if toks[j + 1].is_punct('[') => {
                        let close = match_delim(toks, j + 1, '[', ']');
                        let values: Vec<String> = toks[(j + 2)..close]
                            .iter()
                            .filter(|t| t.kind == TokKind::Str)
                            .map(|t| t.text.clone())
                            .collect();
                        if !values.is_empty() {
                            reg.consts.insert(name, values);
                        }
                        j = close;
                    }
                    _ => {}
                }
            }
            i = j;
        }
        i += 1;
    }
    // The DEFS table: `static DEFS: &[NameDef] = &[ NameDef { .. }, … ]`.
    let Some(defs_at) = toks.iter().position(|t| t.is_ident("DEFS")) else {
        return reg;
    };
    let Some(open) = (defs_at..toks.len()).find(|&k| toks[k].is_punct('[')) else {
        return reg;
    };
    // The `&[NameDef]` type annotation comes first; skip to the array.
    let type_close = match_delim(toks, open, '[', ']');
    let Some(arr_open) = (type_close..toks.len()).find(|&k| toks[k].is_punct('[')) else {
        return reg;
    };
    let arr_close = match_delim(toks, arr_open, '[', ']');
    let mut k = arr_open + 1;
    while k < arr_close {
        if toks[k].is_ident("NameDef") && k + 1 < arr_close && toks[k + 1].is_punct('{') {
            let entry_line = toks[k].line;
            let close = match_delim(toks, k + 1, '{', '}');
            let mut name: Option<String> = None;
            let mut kind = String::new();
            let mut f = k + 2;
            while f < close {
                if toks[f].kind == TokKind::Ident && f + 1 < close && toks[f + 1].is_punct(':') {
                    let field = toks[f].text.clone();
                    let v = f + 2;
                    match field.as_str() {
                        "name" if v < close => match toks[v].kind {
                            TokKind::Str => name = Some(toks[v].text.clone()),
                            TokKind::Ident => {
                                match reg.consts.get(&toks[v].text).and_then(|vals| vals.first()) {
                                    Some(value) => name = Some(value.clone()),
                                    None => findings.push(Finding {
                                        file: path.to_string(),
                                        line: toks[v].line,
                                        rule: Rule::ObsRegistry,
                                        message: format!(
                                            "DEFS entry references unknown const `{}`",
                                            toks[v].text
                                        ),
                                    }),
                                }
                            }
                            _ => {}
                        },
                        "kind" => {
                            let mut w = v;
                            while w < close && !toks[w].is_punct(',') {
                                if toks[w].kind == TokKind::Ident {
                                    kind = toks[w].text.clone();
                                }
                                w += 1;
                            }
                        }
                        _ => {}
                    }
                }
                f += 1;
            }
            if let Some(name) = name {
                reg.entries.push(RegEntry {
                    name,
                    kind,
                    line: entry_line,
                });
            }
            k = close;
        }
        k += 1;
    }
    reg
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

/// Crate-internal re-exports for the flow modules.
pub(crate) fn match_delim_pub(toks: &[Tok], open: usize, open_ch: char, close_ch: char) -> usize {
    match_delim(toks, open, open_ch, close_ch)
}

pub(crate) fn find_test_regions_pub(toks: &[Tok]) -> (Vec<(u32, u32)>, bool) {
    find_test_regions(toks)
}

pub(crate) fn is_test_path_pub(path: &str) -> bool {
    is_test_path(path)
}

/// Index of the delimiter closing the one at `open` (inclusive scan;
/// returns the last token index if unbalanced).
fn match_delim(toks: &[Tok], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Lowercase dotted identifier (`family.name[.more]`) — the shape of a
/// data-collector counter name. File-looking suffixes are excluded so
/// path literals ("fault.rs") don't read as counters.
fn is_counter_shaped(s: &str) -> bool {
    let segments: Vec<&str> = s.split('.').collect();
    if segments.len() < 2 {
        return false;
    }
    if !segments.iter().all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    }) {
        return false;
    }
    const FILE_EXTS: &[&str] = &[
        "rs", "json", "csv", "txt", "toml", "sh", "avro", "pmml", "tmp", "gz", "log", "lock",
    ];
    !FILE_EXTS.contains(&segments.last().copied().unwrap_or(""))
}

// ---------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct FileFacts {
    /// Names recorded through `obs::global()` in this file, with the
    /// emit method used (the method picks the kind cross-check).
    used_names: Vec<(String, u32, String)>,
    /// SCREAMING_CASE idents inside emit-call arguments (name consts),
    /// with the emit method used.
    used_consts: Vec<(String, u32, String)>,
    /// Counter-shaped string literals anywhere in the file.
    dotted_literals: Vec<(String, u32)>,
    /// Every string literal value (dead-row cross-check).
    str_values: HashSet<String>,
    /// Every identifier (detects references to name consts).
    idents: HashSet<String>,
    /// Taxonomy enums defined here: (enum, variants with lines).
    enums: Vec<EnumDecl>,
    /// Identifier sets of `fn is_transient` bodies in this file.
    transient_bodies: Vec<HashSet<String>>,
    /// `Enum::Variant` uses that look like constructions.
    constructed: HashSet<(String, String)>,
    /// Line → joined comment text (inline-allow + SAFETY lookups).
    comments: HashMap<u32, String>,
    findings: Vec<Finding>,
}

/// A taxonomy enum declaration: (name, decl line, variants with lines).
type EnumDecl = (String, u32, Vec<(String, u32)>);

pub(crate) const EMIT_METHODS: &[&str] = &[
    "incr",
    "add",
    "record_time",
    "span",
    "counter_value",
    "trace_start",
    "span_start",
    "record_histo",
];

/// Registry kinds each trace/histogram emit method may target; methods
/// not listed here keep the registration-only check. A finished span
/// feeds a same-named histogram, so `record_histo` also accepts Span.
fn allowed_kinds(method: &str) -> Option<&'static [&'static str]> {
    match method {
        "trace_start" | "span_start" => Some(&["Span"]),
        "record_histo" => Some(&["Histo", "Span"]),
        _ => None,
    }
}

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

fn analyze_file(file: &SourceFile, cfg: &Config) -> FileFacts {
    let lexed = lex(&file.text);
    let toks = &lexed.tokens;
    let mut facts = FileFacts::default();
    for (line, text) in &lexed.comments {
        let slot = facts.comments.entry(*line).or_default();
        slot.push_str(text);
        slot.push('\n');
    }

    let (test_regions, whole_file_test) = find_test_regions(toks);
    let path_is_test = is_test_path(&file.path);
    let in_test = |line: u32| {
        whole_file_test || path_is_test || test_regions.iter().any(|&(s, e)| line >= s && line <= e)
    };

    let panic_scope = cfg
        .panic_path_prefixes
        .iter()
        .any(|p| file.path.starts_with(p));

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Str => {
                facts.str_values.insert(t.text.clone());
                if file.path != cfg.names_path && is_counter_shaped(&t.text) {
                    facts.dotted_literals.push((t.text.clone(), t.line));
                }
            }
            TokKind::Ident => {
                facts.idents.insert(t.text.clone());
                // determinism: banned ambient time/entropy identifiers.
                if cfg.banned_idents.iter().any(|b| b == &t.text) {
                    facts.findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        rule: Rule::Determinism,
                        message: format!(
                            "`{}` leaks ambient time/entropy into seeded code; \
                             plumb a seed or an injected clock instead",
                            t.text
                        ),
                    });
                }
                // safety-comment: unsafe must be justified nearby.
                if t.text == "unsafe" {
                    let justified = (t.line.saturating_sub(3)..=t.line).any(|l| {
                        facts
                            .comments
                            .get(&l)
                            .is_some_and(|c| c.contains("SAFETY:"))
                    });
                    if !justified {
                        facts.findings.push(Finding {
                            file: file.path.clone(),
                            line: t.line,
                            rule: Rule::SafetyComment,
                            message: "`unsafe` without a `// SAFETY:` comment on the \
                                      preceding lines"
                                .to_string(),
                        });
                    }
                }
                // panic-hygiene: `.unwrap()` / `.expect(` on hot paths.
                if panic_scope
                    && (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && i + 1 < toks.len()
                    && toks[i + 1].is_punct('(')
                    && !in_test(t.line)
                {
                    facts.findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        rule: Rule::PanicHygiene,
                        message: format!(
                            ".{}() in a non-test hot path; return a typed error \
                             (DbError/ConnectorError) instead",
                            t.text
                        ),
                    });
                }
                // obs emit calls: global().method("name", …)
                if t.text == "global"
                    && i + 5 < toks.len()
                    && toks[i + 1].is_punct('(')
                    && toks[i + 2].is_punct(')')
                    && toks[i + 3].is_punct('.')
                    && toks[i + 4].kind == TokKind::Ident
                    && EMIT_METHODS.contains(&toks[i + 4].text.as_str())
                    && toks[i + 5].is_punct('(')
                {
                    let method = toks[i + 4].text.clone();
                    let close = match_delim(toks, i + 5, '(', ')');
                    let arg_end = first_arg_end(toks, i + 5, close);
                    for arg in &toks[(i + 6)..arg_end] {
                        match arg.kind {
                            TokKind::Str => {
                                facts
                                    .used_names
                                    .push((arg.text.clone(), arg.line, method.clone()));
                            }
                            TokKind::Ident
                                if arg.text.len() > 1
                                    && arg
                                        .text
                                        .chars()
                                        .all(|c| c.is_ascii_uppercase() || c == '_') =>
                            {
                                facts.used_consts.push((
                                    arg.text.clone(),
                                    arg.line,
                                    method.clone(),
                                ));
                            }
                            _ => {}
                        }
                    }
                }
                // Taxonomy enum declarations.
                if t.text == "enum"
                    && i + 1 < toks.len()
                    && toks[i + 1].kind == TokKind::Ident
                    && cfg.taxonomy_enums.contains(&toks[i + 1].text)
                {
                    if let Some((variants, close)) = parse_enum_variants(toks, i) {
                        facts
                            .enums
                            .push((toks[i + 1].text.clone(), toks[i + 1].line, variants));
                        i = close;
                    }
                }
                // is_transient classification bodies.
                if t.text == "fn" && i + 1 < toks.len() && toks[i + 1].is_ident("is_transient") {
                    if let Some((body, close)) = fn_body_idents(toks, i) {
                        facts.transient_bodies.push(body);
                        i = close;
                    }
                }
                // Enum::Variant constructions.
                if cfg.taxonomy_enums.contains(&t.text)
                    && i + 3 < toks.len()
                    && toks[i + 1].is_punct(':')
                    && toks[i + 2].is_punct(':')
                    && toks[i + 3].kind == TokKind::Ident
                    && toks[i + 3]
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                    && is_construction(toks, i, i + 3)
                {
                    facts
                        .constructed
                        .insert((t.text.clone(), toks[i + 3].text.clone()));
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// End (exclusive) of the first argument of a call whose `(` is at
/// `open` and `)` at `close`: the top-level `,`, or `close` itself.
fn first_arg_end(toks: &[Tok], open: usize, close: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(',') {
            return k;
        }
    }
    close
}

/// Parse `enum Name { A, B(..), C { .. } }` starting at the `enum`
/// keyword; returns the variant list and the index of the closing `}`.
fn parse_enum_variants(toks: &[Tok], enum_idx: usize) -> Option<(Vec<(String, u32)>, usize)> {
    let mut open = enum_idx + 2;
    while open < toks.len() && !toks[open].is_punct('{') {
        if toks[open].is_punct(';') {
            return None;
        }
        open += 1;
    }
    if open >= toks.len() {
        return None;
    }
    let close = match_delim(toks, open, '{', '}');
    let mut variants = Vec::new();
    let mut expecting = true; // at a position where a variant may start
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.is_punct('#') && k + 1 < close && toks[k + 1].is_punct('[') {
            k = match_delim(toks, k + 1, '[', ']') + 1;
            continue;
        }
        if expecting && t.kind == TokKind::Ident {
            variants.push((t.text.clone(), t.line));
            expecting = false;
        } else if t.is_punct('(') {
            k = match_delim(toks, k, '(', ')');
        } else if t.is_punct('{') {
            k = match_delim(toks, k, '{', '}');
        } else if t.is_punct(',') {
            expecting = true;
        }
        k += 1;
    }
    Some((variants, close))
}

/// Identifier set of the body of the `fn` at `fn_idx`; returns the set
/// and the index of the body's closing brace.
fn fn_body_idents(toks: &[Tok], fn_idx: usize) -> Option<(HashSet<String>, usize)> {
    let mut open = fn_idx + 2;
    // Skip the parameter list so a `{` in a default-expr can't confuse.
    while open < toks.len() && !toks[open].is_punct('(') {
        open += 1;
    }
    if open >= toks.len() {
        return None;
    }
    let params_close = match_delim(toks, open, '(', ')');
    let mut body_open = params_close + 1;
    while body_open < toks.len() && !toks[body_open].is_punct('{') {
        if toks[body_open].is_punct(';') {
            return None;
        }
        body_open += 1;
    }
    if body_open >= toks.len() {
        return None;
    }
    let close = match_delim(toks, body_open, '{', '}');
    let set = toks[body_open..close]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    Some((set, close))
}

/// Heuristic: does `Enum::Variant` at `path_idx..=var_idx` appear in
/// expression (construction) position rather than pattern position?
fn is_construction(toks: &[Tok], path_idx: usize, var_idx: usize) -> bool {
    if path_idx > 0 && toks[path_idx - 1].is_punct('|') {
        return false; // one alternative in an or-pattern
    }
    // Where does the variant's payload end?
    let mut after = var_idx + 1;
    if after < toks.len() && (toks[after].is_punct('(') || toks[after].is_punct('{')) {
        let (open_ch, close_ch) = if toks[after].is_punct('(') {
            ('(', ')')
        } else {
            ('{', '}')
        };
        let close = match_delim(toks, after, open_ch, close_ch);
        // A payload of only `_` / `..` / `,` is a wildcard pattern.
        let all_wild = toks[(after + 1)..close]
            .iter()
            .all(|t| t.is_ident("_") || t.is_punct('.') || t.is_punct(',') || t.is_punct('_'));
        if all_wild && close > after + 1 {
            return false;
        }
        after = close + 1;
    }
    if after >= toks.len() {
        return true;
    }
    if toks[after].is_punct('|') {
        return false; // or-pattern continues
    }
    if toks[after].is_punct('=') {
        // `=>` (match arm) and `= expr` (let-pattern) are patterns;
        // `==` is a comparison against a constructed value.
        return after + 1 < toks.len() && toks[after + 1].is_punct('=');
    }
    true
}

/// `(start, end)` line ranges of `#[cfg(test)]` / `#[test]` items,
/// plus whether an inner `#![cfg(test)]` marks the whole file.
fn find_test_regions(toks: &[Tok]) -> (Vec<(u32, u32)>, bool) {
    let mut regions = Vec::new();
    let mut whole_file = false;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < toks.len() && toks[j].is_punct('!');
        if inner {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('[') {
            i += 1;
            continue;
        }
        let attr_close = match_delim(toks, j, '[', ']');
        let idents: Vec<&str> = toks[j + 1..attr_close]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let is_test_attr = idents.first() == Some(&"test")
            || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
        if !is_test_attr {
            i = attr_close + 1;
            continue;
        }
        if inner {
            whole_file = true;
            i = attr_close + 1;
            continue;
        }
        // Skip further attributes, then find the item's body.
        let mut k = attr_close + 1;
        while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
            k = match_delim(toks, k + 1, '[', ']') + 1;
        }
        let mut body = k;
        while body < toks.len() && !toks[body].is_punct('{') {
            if toks[body].is_punct(';') {
                break;
            }
            body += 1;
        }
        if body < toks.len() && toks[body].is_punct('{') {
            let close = match_delim(toks, body, '{', '}');
            regions.push((toks[i].line, toks[close].line));
            i = close + 1;
        } else {
            i = body + 1;
        }
    }
    (regions, whole_file)
}

// ---------------------------------------------------------------------
// Workspace linting
// ---------------------------------------------------------------------

/// Lint an in-memory file set. The entry point fixture tests use;
/// [`lint_workspace`] feeds it from disk.
pub fn lint_files(files: &[SourceFile], allow: &Allowlist, cfg: &Config) -> Vec<Finding> {
    lint_files_with_graph(files, allow, cfg).0
}

/// Like [`lint_files`], but also returns the static lock graph the
/// flow passes computed (the `--lock-graph` diff and the subgraph
/// tests reuse it instead of re-analyzing).
pub fn lint_files_with_graph(
    files: &[SourceFile],
    allow: &Allowlist,
    cfg: &Config,
) -> (Vec<Finding>, locks::LockGraph) {
    let flow = flow::run(files, cfg);
    let graph = flow.graph;
    let mut findings: Vec<Finding> = flow.findings;
    let mut registry = Registry::default();
    for f in files {
        if f.path == cfg.names_path {
            registry = parse_registry(&f.path, &lex(&f.text), &mut findings);
        }
    }

    let facts: Vec<(&SourceFile, FileFacts)> =
        files.iter().map(|f| (f, analyze_file(f, cfg))).collect();

    for (_, ff) in &facts {
        findings.extend(ff.findings.iter().cloned());
    }

    let have_registry = !registry.entries.is_empty();
    let families = registry.families();
    let mut flagged_sites: HashSet<(String, u32, String)> = HashSet::new();

    if have_registry {
        // Direction A: every recorded name must be registered — and
        // for trace/histogram methods, registered with the right kind
        // (a `span_start` against a Counter row is as wrong as an
        // unregistered name: the span would shadow an existing metric).
        let kind_of = |name: &str| -> Option<String> {
            registry
                .entries
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.kind.clone())
        };
        let check_kind =
            |file: &str, line: u32, name: &str, method: &str, findings: &mut Vec<Finding>| {
                let Some(allowed) = allowed_kinds(method) else {
                    return;
                };
                if let Some(kind) = kind_of(name) {
                    if !allowed.contains(&kind.as_str()) {
                        findings.push(Finding {
                            file: file.to_string(),
                            line,
                            rule: Rule::ObsRegistry,
                            message: format!(
                                "`{method}` on \"{name}\" which is registered as \
                                 NameKind::{kind}; expected {}",
                                allowed.join(" or ")
                            ),
                        });
                    }
                }
            };
        for (file, ff) in &facts {
            for (name, line, method) in &ff.used_names {
                if !registry.is_registered(name) {
                    flagged_sites.insert((file.path.clone(), *line, name.clone()));
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: *line,
                        rule: Rule::ObsRegistry,
                        message: format!(
                            "counter name \"{name}\" is not registered in obs::names::DEFS"
                        ),
                    });
                } else {
                    check_kind(&file.path, *line, name, method, &mut findings);
                }
            }
            for (ident, line, method) in &ff.used_consts {
                match registry.consts.get(ident) {
                    None => findings.push(Finding {
                        file: file.path.clone(),
                        line: *line,
                        rule: Rule::ObsRegistry,
                        message: format!(
                            "`{ident}` in an obs emit call is not a const from obs::names"
                        ),
                    }),
                    Some(values) => {
                        for value in values {
                            if !registry.is_registered(value) {
                                findings.push(Finding {
                                    file: file.path.clone(),
                                    line: *line,
                                    rule: Rule::ObsRegistry,
                                    message: format!(
                                        "const `{ident}` (\"{value}\") is not registered \
                                         in obs::names::DEFS"
                                    ),
                                });
                            } else {
                                check_kind(&file.path, *line, value, method, &mut findings);
                            }
                        }
                    }
                }
            }
        }
        // Direction B: every registry row must be used somewhere.
        let mut occurrences: HashSet<&str> = HashSet::new();
        for (file, ff) in &facts {
            if file.path == cfg.names_path {
                continue;
            }
            occurrences.extend(ff.str_values.iter().map(String::as_str));
            for (cname, cvalues) in &registry.consts {
                if ff.idents.contains(cname) {
                    occurrences.extend(cvalues.iter().map(String::as_str));
                }
            }
        }
        for e in &registry.entries {
            if !occurrences.contains(e.name.as_str()) {
                findings.push(Finding {
                    file: cfg.names_path.clone(),
                    line: e.line,
                    rule: Rule::ObsRegistry,
                    message: format!(
                        "dead DEFS row: \"{}\" is never recorded or read anywhere",
                        e.name
                    ),
                });
            }
        }
        // Drift: family-matching literals that are not registered.
        for (file, ff) in &facts {
            for (name, line) in &ff.dotted_literals {
                if registry.is_registered(name) {
                    continue;
                }
                let family = name.split('.').next().unwrap_or("");
                if !families.contains(family) {
                    continue;
                }
                if flagged_sites.contains(&(file.path.clone(), *line, name.clone())) {
                    continue;
                }
                findings.push(Finding {
                    file: file.path.clone(),
                    line: *line,
                    rule: Rule::ObsRegistry,
                    message: format!(
                        "\"{name}\" shares the registered counter family \"{family}.\" \
                         but is not in obs::names::DEFS (drifted or typoed name?)"
                    ),
                });
            }
        }
    }

    // Error taxonomy: classification + constructed-somewhere.
    let all_constructed: HashSet<(String, String)> = facts
        .iter()
        .flat_map(|(_, ff)| ff.constructed.iter().cloned())
        .collect();
    for (file, ff) in &facts {
        for (enum_name, enum_line, variants) in &ff.enums {
            let classified: Option<&HashSet<String>> = ff
                .transient_bodies
                .iter()
                .find(|body| variants.iter().any(|(v, _)| body.contains(v)))
                .or(ff.transient_bodies.first());
            match classified {
                None => findings.push(Finding {
                    file: file.path.clone(),
                    line: *enum_line,
                    rule: Rule::ErrorTaxonomy,
                    message: format!(
                        "enum {enum_name} has no is_transient() classification in its \
                         defining file"
                    ),
                }),
                Some(body) => {
                    for (v, vline) in variants {
                        if !body.contains(v) {
                            findings.push(Finding {
                                file: file.path.clone(),
                                line: *vline,
                                rule: Rule::ErrorTaxonomy,
                                message: format!(
                                    "variant {enum_name}::{v} is not classified by \
                                     is_transient()"
                                ),
                            });
                        }
                    }
                }
            }
            for (v, vline) in variants {
                if !all_constructed.contains(&(enum_name.clone(), v.clone())) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: *vline,
                        rule: Rule::ErrorTaxonomy,
                        message: format!(
                            "variant {enum_name}::{v} is never constructed anywhere in \
                             the workspace"
                        ),
                    });
                }
            }
        }
    }

    // Inline `// fabriclint: allow(rule)` suppressions.
    let comments: HashMap<&str, &HashMap<u32, String>> = facts
        .iter()
        .map(|(f, ff)| (f.path.as_str(), &ff.comments))
        .collect();
    findings.retain(|f| {
        let directive = format!("fabriclint: allow({})", f.rule.as_str());
        let Some(file_comments) = comments.get(f.file.as_str()) else {
            return true;
        };
        !(f.line.saturating_sub(1)..=f.line).any(|l| {
            file_comments
                .get(&l)
                .is_some_and(|c| c.contains(&directive))
        })
    });

    // Baseline allowlist, then flag entries that no longer fire.
    let mut used: HashSet<usize> = HashSet::new();
    findings.retain(|f| !allow.matches(f, &mut used));
    for (i, e) in allow.entries.iter().enumerate() {
        if !used.contains(&i) {
            findings.push(Finding {
                file: ALLOW_FILE.to_string(),
                line: e.line,
                rule: Rule::Allowlist,
                message: format!(
                    "stale allowlist entry `{} {}`: no finding matches it any more",
                    e.rule, e.path
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    (findings, graph)
}

/// Compute only the static lock graph for a file set (no findings,
/// no allowlist) — what the per-suite subgraph tests call.
pub fn lock_graph_files(files: &[SourceFile], cfg: &Config) -> locks::LockGraph {
    flow::run(files, cfg).graph
}

/// Static lock graph of the workspace rooted at `root`.
pub fn lock_graph_workspace(root: &Path) -> std::io::Result<locks::LockGraph> {
    let files = workspace_files(root)?;
    Ok(lock_graph_files(&files, &Config::default()))
}

/// Collect every workspace `.rs` file (the set `lint_workspace` lints).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples", "vendor"] {
        collect_rs_files(&root.join(top), root, &mut files)?;
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Lint the workspace rooted at `root` from disk.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = workspace_files(root)?;
    let allow_text = std::fs::read_to_string(root.join(ALLOW_FILE)).unwrap_or_default();
    let allow = Allowlist::parse(&allow_text);
    Ok(lint_files(&files, &allow, &Config::default()))
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, root, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                text: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
