//! Static lock classes and the static lock-order graph.
//!
//! Mirrors the runtime witness in `vendor/parking_lot/src/witness.rs`:
//! a lock *class* is a creation site (`file:line` of the `Mutex::new` /
//! `RwLock::new` token), exactly what `#[track_caller]` hands the
//! witness at runtime, so static and dynamic edges live in the same
//! namespace and can be diffed. Two wrinkles make the mapping total:
//!
//! * `#[derive(Default)]` structs create their lock fields inside the
//!   vendored crate's `impl Default` blanket (its `Mutex::new` /
//!   `RwLock::new` line) — every such field shares that one "default"
//!   class at runtime, so the static side maps those field names to
//!   the same vendor site.
//! * `std::sync` locks are invisible to the witness; creations that
//!   are `std::sync`-qualified (or in files importing std's lock
//!   types) are skipped.
//!
//! Resolution from an acquisition's receiver name to classes is a
//! name-keyed over-approximation: same-file creations win when they
//! exist, otherwise every same-named creation in the workspace
//! matches, filtered by kind (`.lock()` ⇒ Mutex, `.read()`/`.write()`
//! ⇒ RwLock). Let-init and closure-param aliases resolve guards bound
//! through map-element chains (`.map(|h| h.lock())`).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::cfg::{AcqKind, Ev, FnIr};
use crate::lexer::{Lexed, Tok, TokKind};

/// Which primitive a class wraps (resolution kind filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

#[derive(Debug, Clone)]
pub struct LockClass {
    /// `file:line` of the creation — the witness's class key.
    pub site: String,
    pub kind: LockKind,
    /// Names this class answers to (field/let bindings; the vendor
    /// default classes collect every Default-created lock field name).
    pub names: Vec<String>,
    /// Lock-container bindings mentioned in the creation statement
    /// (element locks: the Mutex inside `timers`' map is tagged
    /// "timers" so `.map(|h| h.lock())` chains resolve).
    pub containers: Vec<String>,
    pub file: String,
}

pub type ClassId = usize;

#[derive(Debug, Default)]
pub struct LockRegistry {
    pub classes: Vec<LockClass>,
    by_name: HashMap<String, Vec<ClassId>>,
    by_container: HashMap<String, Vec<ClassId>>,
}

impl LockRegistry {
    fn add(&mut self, class: LockClass) -> ClassId {
        // Merge classes with the same site (the vendor default site
        // accumulates names from every Default-created field).
        if let Some(id) = self.classes.iter().position(|c| c.site == class.site) {
            for n in class.names {
                if !self.classes[id].names.contains(&n) {
                    self.classes[id].names.push(n.clone());
                    self.by_name.entry(n).or_default().push(id);
                }
            }
            for c in class.containers {
                if !self.classes[id].containers.contains(&c) {
                    self.classes[id].containers.push(c.clone());
                    self.by_container.entry(c).or_default().push(id);
                }
            }
            return id;
        }
        let id = self.classes.len();
        for n in &class.names {
            self.by_name.entry(n.clone()).or_default().push(id);
        }
        for c in &class.containers {
            self.by_container.entry(c.clone()).or_default().push(id);
        }
        self.classes.push(class);
        id
    }

    fn kind_ok(&self, id: ClassId, acq: AcqKind) -> bool {
        match acq {
            AcqKind::Lock => self.classes[id].kind == LockKind::Mutex,
            AcqKind::Read | AcqKind::Write => self.classes[id].kind == LockKind::RwLock,
        }
    }

    /// Classes named `name`, kind-filtered; same-file creations narrow
    /// the set when any exist.
    pub fn resolve_name(&self, name: &str, file: &str, acq: AcqKind) -> Vec<ClassId> {
        let Some(ids) = self.by_name.get(name) else {
            return Vec::new();
        };
        let kinded: Vec<ClassId> = ids
            .iter()
            .copied()
            .filter(|&id| self.kind_ok(id, acq))
            .collect();
        let same_file: Vec<ClassId> = kinded
            .iter()
            .copied()
            .filter(|&id| self.classes[id].file == file)
            .collect();
        if !same_file.is_empty() {
            same_file
        } else {
            kinded
        }
    }

    /// Element classes whose creation statement mentioned container
    /// binding `name` (kind-filtered).
    pub fn resolve_container(&self, name: &str, acq: AcqKind) -> Vec<ClassId> {
        self.by_container
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.kind_ok(id, acq))
                    .collect()
            })
            .unwrap_or_default()
    }

    pub fn is_lock_name(&self, name: &str) -> bool {
        self.by_name.contains_key(name) || self.by_container.contains_key(name)
    }

    /// Register a `#[derive(Default)]` lock field under the vendored
    /// blanket-impl creation site (all such fields share one class at
    /// runtime, because `default()` is not `#[track_caller]`).
    pub fn add_default_field(&mut self, site: String, kind: LockKind, field: String) {
        let file = site
            .rsplit_once(':')
            .map(|(f, _)| f.to_string())
            .unwrap_or_default();
        self.add(LockClass {
            site,
            kind,
            names: vec![field],
            containers: Vec::new(),
            file,
        });
    }
}

/// The vendored blanket-Default creation sites. Located by scanning
/// the vendored source so line drift cannot desynchronize the map.
#[derive(Debug, Default, Clone)]
pub struct DefaultSites {
    pub mutex: Option<String>,
    pub rwlock: Option<String>,
}

pub const VENDOR_LOT: &str = "vendor/parking_lot/src/lib.rs";

/// Scan one file for creation sites. `files` supplies text for import
/// analysis; `default_fields` collects lock-typed fields of
/// `#[derive(Default)]` structs for the vendor-default classes.
pub fn scan_creations(
    path: &str,
    lexed: &Lexed,
    reg: &mut LockRegistry,
    default_fields: &mut Vec<(String, LockKind, String)>,
) {
    let toks = &lexed.tokens;
    let std_locks = file_uses_std_locks(toks);
    let mut i = 0usize;
    // Statement-context tracking for binding inference: the nearest
    // `let` name and pending `field:` bindings, plus every known-ident
    // in the current statement (container tagging, resolved later).
    let mut stmt_start = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(';') {
            stmt_start = i + 1;
        }
        if t.kind == TokKind::Ident
            && (t.text == "Mutex" || t.text == "RwLock")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && i + 4 < toks.len()
            && toks[i + 4].is_punct('(')
        {
            let kind = if t.text == "Mutex" {
                LockKind::Mutex
            } else {
                LockKind::RwLock
            };
            // `std::sync::Mutex::new` (or a file that imports std's
            // locks unqualified) is not witness-instrumented.
            let std_qualified = i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && i >= 3
                && toks[i - 3].is_ident("sync");
            let lot_qualified = i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("parking_lot");
            let skip = std_qualified || (std_locks && !lot_qualified);
            if !skip {
                let names = binding_names(toks, stmt_start, i);
                let containers = Vec::new(); // tagged in a second pass
                reg.add(LockClass {
                    site: format!("{}:{}", path, t.line),
                    kind,
                    names,
                    containers,
                    file: path.to_string(),
                });
            }
            i += 4;
            continue;
        }
        // Struct field declarations `name: Mutex<..>` / `name: RwLock<..>`
        // under a `#[derive(.. Default ..)]` struct: those locks are
        // created by the vendored blanket impl (one shared class).
        if t.is_ident("struct") && struct_derives_default(toks, i) {
            if let Some(open) = (i..toks.len()).find(|&k| toks[k].is_punct('{')) {
                if toks[i..open].iter().all(|x| !x.is_punct(';')) {
                    let close = crate::match_delim_pub(toks, open, '{', '}');
                    let mut k = open + 1;
                    while k + 2 < close {
                        if toks[k].kind == TokKind::Ident
                            && toks[k + 1].is_punct(':')
                            && !toks[k + 2].is_punct(':')
                        {
                            // Field type: idents until the `,` at field level.
                            let mut w = k + 2;
                            let mut angle = 0i32;
                            while w < close {
                                let ft = &toks[w];
                                if ft.is_punct('<') {
                                    angle += 1;
                                } else if ft.is_punct('>') {
                                    angle -= 1;
                                } else if ft.is_punct(',') && angle <= 0 {
                                    break;
                                } else if ft.is_ident("Mutex") && !std_locks {
                                    default_fields.push((
                                        toks[k].text.clone(),
                                        LockKind::Mutex,
                                        path.to_string(),
                                    ));
                                } else if ft.is_ident("RwLock") && !std_locks {
                                    default_fields.push((
                                        toks[k].text.clone(),
                                        LockKind::RwLock,
                                        path.to_string(),
                                    ));
                                }
                                w += 1;
                            }
                            k = w;
                            continue;
                        }
                        k += 1;
                    }
                    i = close;
                }
            }
        }
        i += 1;
    }
}

/// Does this file import `std::sync`'s `Mutex`/`RwLock` unqualified?
fn file_uses_std_locks(toks: &[Tok]) -> bool {
    for (k, t) in toks.iter().enumerate() {
        if t.is_ident("use")
            && toks.get(k + 1).is_some_and(|n| n.is_ident("std"))
            && toks.iter().skip(k).take(12).any(|n| n.is_ident("sync"))
            && toks
                .iter()
                .skip(k)
                .take(20)
                .take_while(|n| !n.is_punct(';'))
                .any(|n| n.is_ident("Mutex") || n.is_ident("RwLock"))
        {
            return true;
        }
    }
    false
}

/// Is the `struct` at `idx` preceded by `#[derive(.. Default ..)]`?
/// Scans back over attributes and visibility/doc tokens.
fn struct_derives_default(toks: &[Tok], idx: usize) -> bool {
    let mut k = idx;
    let mut budget = 80;
    while k > 0 && budget > 0 {
        budget -= 1;
        k -= 1;
        let t = &toks[k];
        if t.is_punct(']') {
            // Walk back to the matching `[`, check for derive+Default.
            let mut depth = 1i32;
            let mut j = k;
            let mut has_derive = false;
            let mut has_default = false;
            while j > 0 {
                j -= 1;
                let a = &toks[j];
                if a.is_punct(']') {
                    depth += 1;
                } else if a.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("derive") {
                    has_derive = true;
                } else if a.is_ident("Default") {
                    has_default = true;
                }
            }
            if has_derive && has_default {
                return true;
            }
            k = j;
            continue;
        }
        if t.is_punct('#') || t.is_ident("pub") || t.is_punct('(') || t.is_punct(')') {
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "crate" || t.text == "super") {
            continue;
        }
        // Anything else ends the attribute run.
        if t.is_punct('}') || t.is_punct(';') || t.is_punct('{') {
            return false;
        }
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "derive" | "Default") {
            return false;
        }
    }
    false
}

/// Binding names for the creation at `at`: the innermost pending
/// `ident :` (struct-literal field init or let with type annotation)
/// plus the nearest `let` name in the statement slice.
fn binding_names(toks: &[Tok], stmt_start: usize, at: usize) -> Vec<String> {
    let mut names = Vec::new();
    // Walk back from the creation looking for `ident :` at shallower
    // delimiter depth (field init like `commit_lock: Mutex::new(())`,
    // or `stores: RwLock::new(..)`), skipping over closed delimiters.
    let mut depth = 0i32;
    let mut k = at;
    while k > stmt_start {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth -= 1;
        } else if depth <= 0
            && t.is_punct(':')
            && k > 0
            && toks[k - 1].kind == TokKind::Ident
            && !toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && !toks[k - 1].is_ident("mut")
        {
            // Skip `::` path separators (second `:` right before).
            if !(k >= 2 && toks[k - 2].is_punct(':')) {
                names.push(toks[k - 1].text.clone());
                break;
            }
        } else if depth <= 0 && t.is_ident("let") {
            break;
        }
    }
    // The statement's `let` binding, if any.
    let mut j = stmt_start;
    while j < at {
        if toks[j].is_ident("let") {
            let mut w = j + 1;
            while w < at && toks[w].is_ident("mut") {
                w += 1;
            }
            if w < at && toks[w].kind == TokKind::Ident {
                let n = toks[w].text.clone();
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        j += 1;
    }
    names
}

/// Tag element classes with their containers: a creation whose
/// surrounding statement mentions another lock binding (`timers`,
/// `histos`, …) is an element of that container. Runs after all
/// creations are known. `stmts` maps each class site to the idents of
/// its creation statement.
pub fn tag_containers(reg: &mut LockRegistry, stmts: &HashMap<String, Vec<String>>) {
    let lock_names: HashSet<String> = reg.by_name.keys().cloned().collect();
    let mut tags: Vec<(ClassId, String)> = Vec::new();
    for (id, class) in reg.classes.iter().enumerate() {
        if let Some(idents) = stmts.get(&class.site) {
            for ident in idents {
                if lock_names.contains(ident) && !class.names.contains(ident) {
                    tags.push((id, ident.clone()));
                }
            }
        }
    }
    for (id, name) in tags {
        if !reg.classes[id].containers.contains(&name) {
            reg.classes[id].containers.push(name.clone());
            reg.by_container.entry(name).or_default().push(id);
        }
    }
}

/// Collect, per creation site, the identifiers of the receiver chain
/// *before* it in its statement — but only when that prefix contains
/// an insertion method (`entry(..).or_insert_with(..)`, `insert`,
/// `push`): those are the map/vec element creations container tagging
/// exists for. A struct literal mentions every other field's lock in
/// the same "statement", so tagging on mere co-occurrence would make
/// every field look like an element of every other (phantom static
/// cycles between unrelated locks).
pub fn creation_stmt_idents(path: &str, lexed: &Lexed) -> HashMap<String, Vec<String>> {
    const INSERT_METHODS: &[&str] = &["or_insert_with", "or_insert", "insert", "push", "entry"];
    let toks = &lexed.tokens;
    let mut out: HashMap<String, Vec<String>> = HashMap::new();
    let mut stmt_start = 0usize;
    for i in 0..toks.len() {
        if toks[i].is_punct(';') {
            stmt_start = i + 1;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text == "Mutex" || t.text == "RwLock")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 3).is_some_and(|x| x.is_ident("new"))
        {
            let prefix: Vec<String> = toks[stmt_start..i]
                .iter()
                .filter(|x| x.kind == TokKind::Ident)
                .map(|x| x.text.clone())
                .collect();
            if prefix.iter().any(|p| INSERT_METHODS.contains(&p.as_str())) {
                out.insert(format!("{}:{}", path, t.line), prefix);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Static graph
// ---------------------------------------------------------------------

/// One static lock-order edge: a guard of `from` was (possibly
/// transitively) live while `to` was acquired. `via` is the
/// `file:line` of the acquisition or call that induced it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaticEdge {
    pub from: String,
    pub to: String,
    pub via: String,
}

#[derive(Debug, Default)]
pub struct LockGraph {
    pub registry: LockRegistry,
    /// Deduped edges keyed (from-site, to-site) → provenance.
    pub edges: BTreeMap<(String, String), String>,
    /// Cycles found in the static graph (site lists), with a flag for
    /// "every participating acquisition is in test code".
    pub cycles: Vec<(Vec<String>, bool)>,
    /// Receivers of `.lock()` that resolved to no class (analysis
    /// lost a guard) — (file, line, receiver).
    pub unresolved: Vec<(String, u32, String)>,
}

impl LockGraph {
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.contains_key(&(from.to_string(), to.to_string()))
    }

    /// The witness's text format: `from\tto` per line, sorted.
    pub fn edges_text(&self) -> String {
        let mut s = String::new();
        for (from, to) in self.edges.keys() {
            s.push_str(from);
            s.push('\t');
            s.push_str(to);
            s.push('\n');
        }
        s
    }
}

/// A guard inferred live during replay.
#[derive(Debug, Clone)]
struct LiveGuard {
    classes: Vec<ClassId>,
    binding: Option<String>,
    depth: u32,
    /// Bound guards survive statement ends; temporaries do not.
    temp: bool,
}

/// Per-function summary used interprocedurally: the classes a call to
/// this function may acquire (transitively).
#[derive(Debug, Default, Clone)]
pub struct FnLockSummary {
    pub acquires: BTreeSet<ClassId>,
}

/// Resolve an acquisition receiver to classes using every alias layer.
pub fn resolve_recv(
    reg: &LockRegistry,
    ir: &FnIr,
    fn_lock_rets: &HashMap<String, Vec<String>>,
    recv: &str,
    acq: AcqKind,
) -> Vec<ClassId> {
    let direct = reg.resolve_name(recv, &ir.file, acq);
    if !direct.is_empty() {
        return direct;
    }
    // Let-init alias: `let timer = { .. Mutex::new(..) .. }` — the
    // init's idents include creation-statement context; resolve any
    // lock-ish ident in the init through name/container maps.
    for (name, idents, line) in &ir.let_inits {
        if name == recv {
            let mut out = Vec::new();
            // A creation inside the init binds directly: classes whose
            // site is this file near the init line get priority.
            for (id, class) in reg.classes.iter().enumerate() {
                if class.file == ir.file && reg.kind_ok(id, acq) {
                    if let Some(cl) = class
                        .site
                        .rsplit(':')
                        .next()
                        .and_then(|l| l.parse::<u32>().ok())
                    {
                        if idents.iter().any(|i| i == "new")
                            && cl >= *line
                            && cl <= line + 30
                            && idents.iter().any(|i| i == "Mutex" || i == "RwLock")
                        {
                            out.push(id);
                        }
                    }
                }
            }
            if !out.is_empty() {
                return out;
            }
            for ident in idents {
                for id in reg.resolve_container(ident, acq) {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
            if !out.is_empty() {
                return out;
            }
        }
    }
    // Closure-param / for-loop alias: `.map(|h| h.lock())` or
    // `for shard in &self.shards` — resolve through the chain idents.
    // Containers first (element classes), then direct names with the
    // kind filter (`for shard in &self.shards` + `shard.lock()` hits
    // the `shards` element class itself).
    for (param, chain) in &ir.closure_aliases {
        if param == recv {
            let mut out = Vec::new();
            for ident in chain {
                for id in reg.resolve_container(ident, acq) {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
            if out.is_empty() {
                for ident in chain {
                    for id in reg.resolve_name(ident, &ir.file, acq) {
                        if !out.contains(&id) {
                            out.push(id);
                        }
                    }
                }
            }
            if !out.is_empty() {
                return out;
            }
        }
    }
    // Fn-returning-lock alias: `self.node(i).lock()` where
    // `fn node(..) -> &Mutex<..>` — resolve through the fn's body locks.
    if let Some(names) = fn_lock_rets.get(recv) {
        let mut out = Vec::new();
        for n in names {
            for id in reg.resolve_name(n, &ir.file, acq) {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
            for id in reg.resolve_container(n, acq) {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    } else {
        Vec::new()
    }
}

/// Fixpoint over the call graph: which classes can each function
/// (transitively) acquire? `call_map` resolves a Call event to
/// candidate function indices.
pub fn lock_summaries(
    irs: &[FnIr],
    reg: &LockRegistry,
    fn_lock_rets: &HashMap<String, Vec<String>>,
    call_map: &dyn Fn(&FnIr, &Ev) -> Vec<usize>,
) -> Vec<FnLockSummary> {
    let mut sums: Vec<FnLockSummary> = vec![FnLockSummary::default(); irs.len()];
    // Seed with direct acquisitions.
    for (idx, ir) in irs.iter().enumerate() {
        for ev in &ir.events {
            if let Ev::Acquire { recv, kind, .. } = ev {
                for id in resolve_recv(reg, ir, fn_lock_rets, recv, *kind) {
                    sums[idx].acquires.insert(id);
                }
            }
        }
    }
    // Propagate through calls to fixpoint.
    loop {
        let mut changed = false;
        for (idx, ir) in irs.iter().enumerate() {
            let mut add: BTreeSet<ClassId> = BTreeSet::new();
            for ev in &ir.events {
                if matches!(ev, Ev::Call { .. }) {
                    for callee in call_map(ir, ev) {
                        for &id in &sums[callee].acquires {
                            if !sums[idx].acquires.contains(&id) {
                                add.insert(id);
                            }
                        }
                    }
                }
            }
            if !add.is_empty() {
                sums[idx].acquires.extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Replay one function's events deriving edges: every class acquired
/// (directly or via a call's summary) while guards are live yields an
/// edge from each live guard's classes. Self-edges (same class) are
/// recorded like the witness records re-acquisition of a class but —
/// also like the witness — excluded from cycle detection.
#[allow(clippy::too_many_arguments)]
pub fn derive_edges(
    ir: &FnIr,
    idx_of: &HashMap<String, Vec<usize>>,
    irs: &[FnIr],
    sums: &[FnLockSummary],
    reg: &LockRegistry,
    fn_lock_rets: &HashMap<String, Vec<String>>,
    call_map: &dyn Fn(&FnIr, &Ev) -> Vec<usize>,
    graph: &mut LockGraph,
    edge_in_test: &mut BTreeMap<(String, String), bool>,
) {
    let _ = (idx_of, irs);
    let mut live: Vec<LiveGuard> = Vec::new();
    // Guards dropped inside a nested block (conditional drop): revived
    // when that block closes, since the untaken branch keeps them.
    let mut suspended: Vec<(u32, LiveGuard)> = Vec::new();
    for ev in &ir.events {
        match ev {
            Ev::Acquire {
                recv,
                kind,
                line,
                binding,
                depth,
            } => {
                let classes = resolve_recv(reg, ir, fn_lock_rets, recv, *kind);
                if classes.is_empty() {
                    if *kind == AcqKind::Lock {
                        graph
                            .unresolved
                            .push((ir.file.clone(), *line, recv.clone()));
                    }
                    continue;
                }
                let via = format!("{}:{}", ir.file, line);
                for g in &live {
                    for &from in &g.classes {
                        for &to in &classes {
                            let key =
                                (reg.classes[from].site.clone(), reg.classes[to].site.clone());
                            let t = edge_in_test.entry(key.clone()).or_insert(true);
                            *t = *t && ir.is_test;
                            graph.edges.entry(key).or_insert_with(|| via.clone());
                        }
                    }
                }
                live.push(LiveGuard {
                    classes,
                    binding: binding.clone(),
                    depth: *depth,
                    temp: binding.is_none(),
                });
            }
            Ev::Drop { name, depth } => {
                let mut kept = Vec::with_capacity(live.len());
                for g in live.drain(..) {
                    if g.binding.as_deref() != Some(name) {
                        kept.push(g);
                    } else if g.depth < *depth {
                        suspended.push((*depth, g));
                    }
                }
                live = kept;
            }
            Ev::Stmt { depth } => {
                live.retain(|g| !(g.temp && g.depth >= *depth));
            }
            Ev::Close { depth } => {
                live.retain(|g| g.depth < *depth);
                let mut still = Vec::with_capacity(suspended.len());
                for (d, g) in suspended.drain(..) {
                    if d >= *depth && g.depth < *depth {
                        live.push(g);
                    } else if g.depth < *depth {
                        still.push((d, g));
                    }
                }
                suspended = still;
            }
            Ev::Call {
                name, args, line, ..
            } => {
                if live.is_empty() {
                    continue;
                }
                // Condvar waits release the guard passed by `&mut`.
                let wait_call = name == "wait" || name == "wait_until";
                let mut acquired: BTreeSet<ClassId> = BTreeSet::new();
                for callee in call_map(ir, ev) {
                    acquired.extend(sums[callee].acquires.iter().copied());
                }
                if acquired.is_empty() {
                    continue;
                }
                let via = format!("{}:{}", ir.file, line);
                for g in &live {
                    if wait_call
                        && g.binding
                            .as_deref()
                            .is_some_and(|b| args.iter().any(|a| a == b))
                    {
                        continue;
                    }
                    for &from in &g.classes {
                        for &to in &acquired {
                            let key =
                                (reg.classes[from].site.clone(), reg.classes[to].site.clone());
                            let t = edge_in_test.entry(key.clone()).or_insert(true);
                            *t = *t && ir.is_test;
                            graph.edges.entry(key).or_insert_with(|| via.clone());
                        }
                    }
                }
            }
        }
    }
}

/// Cycle detection over the deduped edge set, mirroring the runtime
/// witness's semantics (self-edges are not cycles). Strongly connected
/// components are found first (iterative Tarjan); each non-trivial SCC
/// is reported as ONE representative cycle — the shortest loop through
/// the SCC's smallest site — so a dense inversion cluster produces one
/// actionable finding instead of a combinatorial list.
pub fn find_cycles(graph: &mut LockGraph, edge_in_test: &BTreeMap<(String, String), bool>) {
    let nodes: Vec<String> = {
        let mut s: BTreeSet<String> = BTreeSet::new();
        for (from, to) in graph.edges.keys() {
            if from != to {
                s.insert(from.clone());
                s.insert(to.clone());
            }
        }
        s.into_iter().collect()
    };
    let index_of: HashMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (from, to) in graph.edges.keys() {
        if from != to {
            adj[index_of[from.as_str()]].push(index_of[to.as_str()]);
        }
    }
    let sccs = tarjan_sccs(&adj);
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let in_scc: HashSet<usize> = scc.iter().copied().collect();
        // Representative: shortest loop from the smallest site back to
        // itself, found by BFS restricted to the SCC.
        let start = scc
            .iter()
            .copied()
            .min_by_key(|&i| nodes[i].as_str())
            .unwrap_or(scc[0]);
        let mut prev: HashMap<usize, usize> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut found = None;
        'bfs: while let Some(n) = queue.pop_front() {
            for &next in &adj[n] {
                if !in_scc.contains(&next) {
                    continue;
                }
                if next == start {
                    found = Some(n);
                    break 'bfs;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(next) {
                    e.insert(n);
                    queue.push_back(next);
                }
            }
        }
        let Some(mut tail) = found else { continue };
        let mut cycle_idx = vec![tail];
        while tail != start {
            tail = prev[&tail];
            cycle_idx.push(tail);
        }
        cycle_idx.reverse();
        let cycle: Vec<String> = cycle_idx.iter().map(|&i| nodes[i].clone()).collect();
        let all_test = cycle.iter().enumerate().all(|(i, from)| {
            let to = &cycle[(i + 1) % cycle.len()];
            edge_in_test
                .get(&(from.clone(), to.clone()))
                .copied()
                .unwrap_or(false)
        });
        graph.cycles.push((cycle, all_test));
    }
    graph.cycles.sort();
    graph.cycles.dedup();
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();
    // Explicit call stack: (node, child-iterator position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}
