//! CLI for the fabric linter.
//!
//! ```text
//! fabriclint --workspace [--root DIR] [--format text|json]
//! fabriclint FILE... [--format text|json]
//! fabriclint --lock-graph [--root DIR] [--witness FILE ...]
//! ```
//!
//! Lint modes exit 0 clean, 1 findings, 2 usage/IO error. `--format
//! json` prints the findings as a JSON report (check.sh captures it to
//! `target/fabriclint.json`).
//!
//! `--lock-graph` prints the static lock-order graph in the witness's
//! edge format (`from-site<TAB>to-site`). Each `--witness FILE` is a
//! runtime edge export (`from<TAB>to<TAB>count` lines, written by the
//! test suites via `parking_lot::witness::export_edges_text`) to diff
//! against: a witnessed edge the static graph cannot derive is an
//! analysis soundness hole and FAILS (exit 1); a static edge never
//! witnessed is reported as dynamic-coverage information (exit 0).
//! Missing witness files warn and are skipped, so the diff can run
//! before any suite has produced an export.

use std::path::PathBuf;
use std::process::ExitCode;

use fabriclint::{
    find_workspace_root, lint_files, lint_workspace, lock_graph_workspace, Allowlist, Config,
    Finding, SourceFile,
};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut lock_graph = false;
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut witnesses: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--lock-graph" => lock_graph = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--witness" => match it.next() {
                Some(path) => witnesses.push(path),
                None => return usage("--witness needs a file"),
            },
            "--format" => match it.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage("--format needs `text` or `json`"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag `{arg}`")),
            _ => files.push(arg),
        }
    }

    if lock_graph {
        let root = match resolve_root(root) {
            Some(r) => r,
            None => return usage("no workspace root found (looked for [workspace] in Cargo.toml)"),
        };
        let graph = match lock_graph_workspace(&root) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("fabriclint: {e}");
                return ExitCode::from(2);
            }
        };
        return diff_lock_graph(&graph, &witnesses);
    }

    let findings = if workspace {
        let root = match resolve_root(root) {
            Some(r) => r,
            None => return usage("no workspace root found (looked for [workspace] in Cargo.toml)"),
        };
        match lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fabriclint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        return usage("pass --workspace, --lock-graph, or one or more .rs files");
    } else {
        let mut sources = Vec::new();
        for path in &files {
            match std::fs::read_to_string(path) {
                Ok(text) => sources.push(SourceFile {
                    path: path.replace('\\', "/"),
                    text,
                }),
                Err(e) => {
                    eprintln!("fabriclint: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        lint_files(&sources, &Allowlist::default(), &Config::default())
    };

    match format {
        Format::Json => print_json(&findings),
        Format::Text => {
            if findings.is_empty() {
                println!("fabriclint: clean");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("fabriclint: {} finding(s)", findings.len());
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn resolve_root(root: Option<PathBuf>) -> Option<PathBuf> {
    root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    })
}

/// Print the static graph, then diff each witness export against it.
fn diff_lock_graph(graph: &fabriclint::locks::LockGraph, witnesses: &[String]) -> ExitCode {
    print!("{}", graph.edges_text());
    if witnesses.is_empty() {
        eprintln!(
            "fabriclint: {} static edge(s), {} lock class(es)",
            graph.edges.len(),
            graph.registry.classes.len()
        );
        return ExitCode::SUCCESS;
    }
    let mut witnessed: Vec<(String, String)> = Vec::new();
    for path in witnesses {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fabriclint: warning: witness {path}: {e} (skipped)");
                continue;
            }
        };
        for line in text.lines() {
            let mut cols = line.split('\t');
            if let (Some(from), Some(to)) = (cols.next(), cols.next()) {
                witnessed.push((from.to_string(), to.to_string()));
            }
        }
    }
    witnessed.sort();
    witnessed.dedup();

    let mut underivable = 0usize;
    for (from, to) in &witnessed {
        if !graph.has_edge(from, to) {
            underivable += 1;
            eprintln!(
                "fabriclint: witnessed edge NOT statically derivable: {from} -> {to} \
                 (the analysis lost a guard or an alias; fix the analyzer, not the test)"
            );
        }
    }
    let never_witnessed = graph
        .edges
        .keys()
        .filter(|(f, t)| !witnessed.contains(&(f.clone(), t.clone())))
        .count();
    eprintln!(
        "fabriclint: {} static edge(s); {} witnessed ({} underivable, {} static-only)",
        graph.edges.len(),
        witnessed.len(),
        underivable,
        never_witnessed
    );
    if never_witnessed > 0 {
        eprintln!(
            "fabriclint: note: {never_witnessed} statically-possible edge(s) never \
             witnessed at runtime — dynamic coverage gaps, not errors"
        );
    }
    if underivable > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_json(findings: &[Finding]) {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&f.file),
            f.line,
            f.rule.as_str(),
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}\n", findings.len()));
    print!("{out}");
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const USAGE: &str = "usage: fabriclint --workspace [--root DIR] [--format text|json]
       fabriclint FILE... [--format text|json]
       fabriclint --lock-graph [--root DIR] [--witness FILE ...]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("fabriclint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
