//! CLI for the fabric linter.
//!
//! ```text
//! fabriclint --workspace [--root DIR]   # lint the whole workspace
//! fabriclint FILE...                    # lint just the given files
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use fabriclint::{find_workspace_root, lint_files, lint_workspace, Allowlist, Config, SourceFile};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: fabriclint --workspace [--root DIR] | fabriclint FILE...");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag `{arg}`")),
            _ => files.push(arg),
        }
    }

    let findings = if workspace {
        let root = match root.or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        }) {
            Some(r) => r,
            None => return usage("no workspace root found (looked for [workspace] in Cargo.toml)"),
        };
        match lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fabriclint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        return usage("pass --workspace or one or more .rs files");
    } else {
        let mut sources = Vec::new();
        for path in &files {
            match std::fs::read_to_string(path) {
                Ok(text) => sources.push(SourceFile {
                    path: path.replace('\\', "/"),
                    text,
                }),
                Err(e) => {
                    eprintln!("fabriclint: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        lint_files(&sources, &Allowlist::default(), &Config::default())
    };

    if findings.is_empty() {
        println!("fabriclint: clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("fabriclint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fabriclint: {msg}");
    eprintln!("usage: fabriclint --workspace [--root DIR] | fabriclint FILE...");
    ExitCode::from(2)
}
