//! Positive and negative fixtures for every lint rule.
//!
//! Each fixture is an in-memory workspace (a `Vec<SourceFile>`) fed
//! through [`fabriclint::lint_files`]; the assertions pin both that a
//! violation *is* reported (positive) and that the idiomatic spelling
//! is *not* (negative). Counter names in fixtures use the `fix.`
//! family, which the real registry does not define, so these literals
//! never collide with the workspace lint.

use fabriclint::{lint_files, Allowlist, Config, Finding, Rule, SourceFile};

fn file(path: &str, text: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        text: text.to_string(),
    }
}

/// A minimal obs name registry: one const-named counter, one
/// literal-named counter, and a timer.
fn names_file() -> SourceFile {
    file(
        "crates/obs/src/names.rs",
        r#"
pub const FIX_HITS: &str = "fix.hits";

pub static DEFS: &[NameDef] = &[
    NameDef { name: FIX_HITS, kind: NameKind::Counter, help: "h" },
    NameDef { name: "fix.misses", kind: NameKind::Counter, help: "h" },
    NameDef { name: "fix.wait_us", kind: NameKind::Timer, help: "h" },
];
"#,
    )
}

/// A file that legitimately uses every registered name, so the
/// dead-row check stays quiet unless a fixture wants it to fire.
fn uses_all_names() -> SourceFile {
    file(
        "crates/app/src/emit.rs",
        r#"
fn emit() {
    obs::global().incr(FIX_HITS);
    obs::global().incr("fix.misses");
    obs::global().record_time("fix.wait_us", d);
}
"#,
    )
}

fn lint(files: &[SourceFile]) -> Vec<Finding> {
    lint_files(files, &Allowlist::default(), &Config::default())
}

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

#[test]
fn determinism_flags_ambient_time_and_entropy() {
    let bad = file(
        "crates/app/src/clock.rs",
        "fn now() -> u64 { SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_secs() }",
    );
    let f = lint(&[bad]);
    assert!(
        f.iter().filter(|x| x.rule == Rule::Determinism).count() >= 2,
        "SystemTime and UNIX_EPOCH should both be flagged: {f:?}"
    );
    let rng = file(
        "crates/app/src/rng.rs",
        "fn roll() -> u64 { let mut r = thread_rng(); r.next() }",
    );
    assert_eq!(rules(&lint(&[rng])), vec![Rule::Determinism]);
}

#[test]
fn determinism_accepts_seeded_code_and_inline_allows() {
    let good = file(
        "crates/app/src/seeded.rs",
        "fn mk(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }",
    );
    assert!(lint(&[good]).is_empty());
    let allowed = file(
        "crates/app/src/wall.rs",
        "// fabriclint: allow(determinism): report timestamps are display-only\n\
         fn stamp() -> SystemTime { SystemTime::now() }",
    );
    assert!(lint(&[allowed]).is_empty(), "inline allow must suppress");
}

// ---------------------------------------------------------------------
// obs-registry
// ---------------------------------------------------------------------

#[test]
fn obs_registry_flags_unregistered_emit() {
    let bad = file(
        "crates/app/src/emit.rs",
        r#"
fn emit() {
    obs::global().incr(FIX_HITS);
    obs::global().incr("fix.misses");
    obs::global().record_time("fix.wait_us", d);
    obs::global().incr("fix.phantom");
}
"#,
    );
    let f = lint(&[names_file(), bad]);
    assert_eq!(rules(&f), vec![Rule::ObsRegistry]);
    assert!(f[0].message.contains("fix.phantom"));
    assert!(f[0].message.contains("not registered"));
}

#[test]
fn obs_registry_flags_dead_defs_rows() {
    // Nothing references "fix.misses" or "fix.wait_us".
    let partial = file(
        "crates/app/src/emit.rs",
        "fn emit() { obs::global().incr(FIX_HITS); }",
    );
    let f = lint(&[names_file(), partial]);
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f.iter().all(|x| x.rule == Rule::ObsRegistry
        && x.file == "crates/obs/src/names.rs"
        && x.message.contains("dead DEFS row")));
}

#[test]
fn obs_registry_flags_family_drift_and_unknown_consts() {
    // "fix.hitz" is counter-shaped, shares the registered family, and
    // is not registered: the classic drifted/typoed assertion literal.
    let drift = file(
        "crates/app/src/check.rs",
        r#"fn check(v: u64) { assert_counter("fix.hitz", v); }"#,
    );
    let f = lint(&[names_file(), uses_all_names(), drift]);
    assert_eq!(rules(&f), vec![Rule::ObsRegistry]);
    assert!(f[0].message.contains("fix.hitz") && f[0].message.contains("family"));

    // A SCREAMING const in an emit call that names.rs does not define.
    let unknown = file(
        "crates/app/src/emit2.rs",
        "fn emit() { obs::global().incr(FIX_TYPO); }",
    );
    let f = lint(&[names_file(), uses_all_names(), unknown]);
    assert_eq!(rules(&f), vec![Rule::ObsRegistry]);
    assert!(f[0].message.contains("FIX_TYPO"));
}

#[test]
fn obs_registry_accepts_derived_timer_rows_and_if_else_emits() {
    let good = file(
        "crates/app/src/read.rs",
        r#"
fn read() {
    let p99 = counter_value("fix.wait_us.p99_us");
    obs::global().incr(if fast { FIX_HITS } else { "fix.misses" });
    obs::global().record_time("fix.wait_us", d);
}
"#,
    );
    assert!(lint(&[names_file(), good]).is_empty());
}

/// A registry with one span, one histogram, and one counter — for the
/// trace-emit cross-checks.
fn span_names_file() -> SourceFile {
    file(
        "crates/obs/src/names.rs",
        r#"
pub const FIX_HITS: &str = "fix.hits";

pub static DEFS: &[NameDef] = &[
    NameDef { name: FIX_HITS, kind: NameKind::Counter, help: "h" },
    NameDef { name: "fix.job", kind: NameKind::Span, help: "h" },
    NameDef { name: "fix.piece_bytes", kind: NameKind::Histo, help: "h" },
];
"#,
    )
}

#[test]
fn obs_registry_cross_checks_span_emit_sites() {
    // The idiomatic spellings: spans against Span rows, record_histo
    // against Histo rows (or a Span row, whose histogram is implicit).
    let good = file(
        "crates/app/src/trace.rs",
        r#"
fn run() {
    obs::global().incr(FIX_HITS);
    let root = obs::global().trace_start("fix.job");
    let child = obs::global().span_start("fix.job", root);
    obs::global().record_histo("fix.piece_bytes", n);
    obs::global().record_histo("fix.job", n);
}
"#,
    );
    assert!(lint(&[span_names_file(), good]).is_empty());

    // An unregistered span name is flagged like an unregistered counter.
    let phantom = file(
        "crates/app/src/trace.rs",
        r#"
fn run() {
    obs::global().incr(FIX_HITS);
    let root = obs::global().trace_start("fix.job");
    obs::global().record_histo("fix.piece_bytes", n);
    let c = obs::global().span_start("fix.phantom", root);
}
"#,
    );
    let f = lint(&[span_names_file(), phantom]);
    assert_eq!(rules(&f), vec![Rule::ObsRegistry]);
    assert!(f[0].message.contains("fix.phantom"));

    // A span emit against a non-Span row is a kind mismatch.
    let mismatch = file(
        "crates/app/src/trace.rs",
        r#"
fn run() {
    let root = obs::global().trace_start(FIX_HITS);
    let child = obs::global().span_start("fix.job", root);
    obs::global().record_histo("fix.piece_bytes", n);
}
"#,
    );
    let f = lint(&[span_names_file(), mismatch]);
    assert_eq!(rules(&f), vec![Rule::ObsRegistry], "{f:?}");
    assert!(
        f[0].message.contains("NameKind::Counter") && f[0].message.contains("expected Span"),
        "{:?}",
        f[0]
    );

    // A dead Span row is still a dead row.
    let unused = file("crates/app/src/other.rs", "fn emit() { obs::global().incr(FIX_HITS); obs::global().record_histo(\"fix.piece_bytes\", n); }");
    let f = lint(&[span_names_file(), unused]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("dead DEFS row") && f[0].message.contains("fix.job"));
}

#[test]
fn obs_registry_catches_phantom_planner_emits() {
    // The planner family ships registered rows; a typoed or freshly
    // invented `planner.*` emit must not slip past the registry check
    // just because siblings in the family exist.
    let planner_names = file(
        "crates/obs/src/names.rs",
        r#"
pub static DEFS: &[NameDef] = &[
    NameDef { name: "planner.conjuncts_reordered", kind: NameKind::Counter, help: "h" },
    NameDef { name: "planner.estimated_rows", kind: NameKind::Counter, help: "h" },
];
"#,
    );
    // Assembled at runtime so the *real* workspace lint (which scans
    // this test's source text too) does not see the phantom literal.
    let phantom = format!("plan{}.phantom", "ner");
    let emits = file(
        "crates/app/src/planner.rs",
        &format!(
            r#"
fn plan() {{
    obs::global().incr("planner.conjuncts_reordered");
    obs::global().add("planner.estimated_rows", est);
    obs::global().incr("{phantom}");
}}
"#
        ),
    );
    let f = lint(&[planner_names, emits]);
    assert_eq!(rules(&f), vec![Rule::ObsRegistry], "{f:?}");
    assert!(
        f[0].message.contains(&phantom) && f[0].message.contains("registered"),
        "{:?}",
        f[0]
    );
}

#[test]
fn obs_registry_catches_phantom_rebalance_emits() {
    // The elastic-cluster family: counters land in DEFS alongside a
    // timer, and an invented `rebalance.*` emit is flagged even though
    // registered siblings exist — new rebalance instrumentation cannot
    // drift past the registry.
    let rebalance_names = file(
        "crates/obs/src/names.rs",
        r#"
pub static DEFS: &[NameDef] = &[
    NameDef { name: "rebalance.flips", kind: NameKind::Counter, help: "h" },
    NameDef { name: "rebalance.migration_us", kind: NameKind::Timer, help: "h" },
    NameDef { name: "rebalance.rows_copied", kind: NameKind::Counter, help: "h" },
];
"#,
    );
    // Assembled at runtime so the *real* workspace lint (which scans
    // this test's source text too) does not see the phantom literal.
    let phantom = format!("rebal{}.migrations_done", "ance");
    let emits = file(
        "crates/mppdb/src/rebalance.rs",
        &format!(
            r#"
fn flip() {{
    obs::global().incr("rebalance.flips");
    obs::global().add("rebalance.rows_copied", rows);
    obs::global().record_time("rebalance.migration_us", dur);
    obs::global().incr("{phantom}");
}}
"#
        ),
    );
    let f = lint(&[rebalance_names, emits]);
    assert_eq!(rules(&f), vec![Rule::ObsRegistry], "{f:?}");
    assert!(
        f[0].message.contains(&phantom) && f[0].message.contains("registered"),
        "{:?}",
        f[0]
    );
}

// ---------------------------------------------------------------------
// error-taxonomy
// ---------------------------------------------------------------------

#[test]
fn taxonomy_flags_unclassified_and_never_constructed_variants() {
    let err = file(
        "crates/app/src/error.rs",
        r#"
pub enum DbError {
    Lost { node: usize },
    Syntax(String),
    Phantom(String),
}
impl DbError {
    pub fn is_transient(&self) -> bool {
        match self {
            DbError::Lost { .. } => true,
            DbError::Syntax(_) => false,
            DbError::Phantom(_) => false,
        }
    }
}
"#,
    );
    let uses = file(
        "crates/app/src/use_err.rs",
        r#"
fn fail(node: usize) -> DbError { DbError::Lost { node } }
fn parse() -> DbError { DbError::Syntax("bad".into()) }
"#,
    );
    let f = lint(&[err, uses]);
    assert_eq!(rules(&f), vec![Rule::ErrorTaxonomy]);
    assert!(
        f[0].message.contains("Phantom") && f[0].message.contains("never constructed"),
        "{f:?}"
    );

    let missing = file(
        "crates/app/src/error.rs",
        r#"
pub enum DbError { Lost { node: usize }, Syntax(String) }
impl DbError {
    pub fn is_transient(&self) -> bool {
        matches!(self, DbError::Lost { .. })
    }
}
fn mk(node: usize) -> DbError { DbError::Lost { node } }
fn mk2() -> DbError { DbError::Syntax("x".into()) }
"#,
    );
    let f = lint(&[missing]);
    assert_eq!(rules(&f), vec![Rule::ErrorTaxonomy]);
    assert!(f[0].message.contains("Syntax") && f[0].message.contains("not classified"));
}

#[test]
fn taxonomy_flags_enum_without_classifier_and_accepts_complete_one() {
    let bare = file(
        "crates/app/src/error.rs",
        r#"
pub enum ConnectorError { Usage(String) }
fn mk() -> ConnectorError { ConnectorError::Usage("x".into()) }
"#,
    );
    let f = lint(&[bare]);
    assert_eq!(rules(&f), vec![Rule::ErrorTaxonomy]);
    assert!(f[0].message.contains("no is_transient()"));

    let complete = file(
        "crates/app/src/error.rs",
        r#"
pub enum ConnectorError { Usage(String), NoLiveNodes }
impl ConnectorError {
    pub fn is_transient(&self) -> bool {
        match self {
            ConnectorError::NoLiveNodes => true,
            ConnectorError::Usage(_) => false,
        }
    }
}
fn a() -> ConnectorError { ConnectorError::Usage("x".into()) }
fn b() -> ConnectorError { ConnectorError::NoLiveNodes }
fn is_no_nodes(e: &ConnectorError) -> bool {
    matches!(e, ConnectorError::NoLiveNodes) || match e {
        ConnectorError::Usage(_) | ConnectorError::NoLiveNodes => false,
    }
}
"#,
    );
    assert!(lint(&[complete]).is_empty());
}

// ---------------------------------------------------------------------
// panic-hygiene
// ---------------------------------------------------------------------

#[test]
fn panic_hygiene_flags_hot_path_unwraps_only() {
    let hot = file(
        "crates/mppdb/src/hot.rs",
        "fn read(v: Option<u32>) -> u32 { v.unwrap() }\n\
         fn msg(v: Option<u32>) -> u32 { v.expect(\"always set\") }",
    );
    let f = lint(&[hot]);
    assert_eq!(rules(&f), vec![Rule::PanicHygiene, Rule::PanicHygiene]);

    // The same code outside the configured hot paths is fine.
    let cold = file(
        "crates/bench/src/hot.rs",
        "fn read(v: Option<u32>) -> u32 { v.unwrap() }",
    );
    assert!(lint(&[cold]).is_empty());
}

#[test]
fn panic_hygiene_skips_tests_and_honors_inline_allows() {
    let tested = file(
        "crates/mppdb/src/hot.rs",
        r#"
fn safe(v: Option<u32>) -> Option<u32> { v }

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() { assert_eq!(super::safe(Some(3)).unwrap(), 3); }
}
"#,
    );
    assert!(lint(&[tested]).is_empty(), "test regions are exempt");

    let allowed = file(
        "crates/connector/src/hot.rs",
        "fn get(v: Option<u32>) -> u32 {\n\
         \x20   // fabriclint: allow(panic-hygiene): invariant, v set by caller\n\
         \x20   v.unwrap()\n\
         }",
    );
    assert!(lint(&[allowed]).is_empty());
}

// ---------------------------------------------------------------------
// safety-comment
// ---------------------------------------------------------------------

#[test]
fn safety_comment_required_for_unsafe() {
    let bad = file(
        "crates/app/src/ptr.rs",
        "fn read(p: *const u8) -> u8 { unsafe { *p } }",
    );
    let f = lint(&[bad]);
    assert_eq!(rules(&f), vec![Rule::SafetyComment]);

    let good = file(
        "crates/app/src/ptr.rs",
        "fn read(p: *const u8) -> u8 {\n\
         \x20   // SAFETY: caller guarantees p is valid for reads.\n\
         \x20   unsafe { *p }\n\
         }",
    );
    assert!(lint(&[good]).is_empty());
}

// ---------------------------------------------------------------------
// static-lock-order
// ---------------------------------------------------------------------

/// Two distinctly-named lock fields created on lines 8 and 9; each
/// test appends fns that acquire them in some order. Field names use
/// the `fix_` prefix so the in-memory classes never alias real
/// workspace lock names.
fn pair_file(body: &str) -> SourceFile {
    file(
        "crates/app/src/pair.rs",
        &format!(
            r#"
pub struct FixPair {{
    fix_front: Mutex<u32>,
    fix_rear: Mutex<u32>,
}}
pub fn mk_pair() -> FixPair {{
    FixPair {{
        fix_front: Mutex::new(0),
        fix_rear: Mutex::new(1),
    }}
}}
{body}
"#
        ),
    )
}

#[test]
fn lock_order_flags_inverted_acquisitions() {
    let body = "pub fn fr(p: &FixPair) { let f = p.fix_front.lock(); let r = p.fix_rear.lock(); }\n\
                pub fn rf(p: &FixPair) { let r = p.fix_rear.lock(); let f = p.fix_front.lock(); }\n";
    let f = lint(&[pair_file(body)]);
    assert_eq!(rules(&f), vec![Rule::StaticLockOrder], "{f:?}");
    assert!(f[0].message.contains("cycle"), "{:?}", f[0]);
}

#[test]
fn lock_order_accepts_guard_dropped_before_inversion() {
    let body = "pub fn fr(p: &FixPair) { let f = p.fix_front.lock(); let r = p.fix_rear.lock(); }\n\
                pub fn rf(p: &FixPair) { let r = p.fix_rear.lock(); drop(r); let f = p.fix_front.lock(); }\n";
    assert!(lint(&[pair_file(body)]).is_empty());
}

#[test]
fn lock_order_revives_conditionally_dropped_guards() {
    // `drop(r)` inside the `if` releases the guard only on that
    // branch; the fall-through still holds it across the second
    // acquisition, so the inversion (and the cycle) is real.
    let body =
        "pub fn fr(p: &FixPair) { let f = p.fix_front.lock(); let r = p.fix_rear.lock(); }\n\
                pub fn rf(p: &FixPair, c: bool) {\n\
                    let r = p.fix_rear.lock();\n\
                    if c { drop(r); return; }\n\
                    let f = p.fix_front.lock();\n\
                }\n";
    let f = lint(&[pair_file(body)]);
    assert_eq!(rules(&f), vec![Rule::StaticLockOrder], "{f:?}");
}

#[test]
fn lock_order_honors_inline_allow() {
    let body = "pub fn fr(p: &FixPair) {\n\
                    let f = p.fix_front.lock();\n\
                    // fabriclint: allow(static-lock-order): fixture inversion\n\
                    let r = p.fix_rear.lock();\n\
                }\n\
                pub fn rf(p: &FixPair) {\n\
                    let r = p.fix_rear.lock();\n\
                    // fabriclint: allow(static-lock-order): fixture inversion\n\
                    let f = p.fix_front.lock();\n\
                }\n";
    assert!(lint(&[pair_file(body)]).is_empty());
}

#[test]
fn lock_graph_exposes_witness_keyed_edges() {
    let body =
        "pub fn fr(p: &FixPair) { let f = p.fix_front.lock(); let r = p.fix_rear.lock(); }\n";
    let g = fabriclint::lock_graph_files(&[pair_file(body)], &Config::default());
    // Classes are keyed by creation site — the same `file:line` format
    // the runtime witness exports, so the two sides diff directly.
    assert!(g.has_edge("crates/app/src/pair.rs:8", "crates/app/src/pair.rs:9"));
    assert!(!g.has_edge("crates/app/src/pair.rs:9", "crates/app/src/pair.rs:8"));
    assert!(g
        .edges_text()
        .contains("crates/app/src/pair.rs:8\tcrates/app/src/pair.rs:9"));
}

// ---------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------

#[test]
fn blocking_under_lock_flags_sleep_with_guard_live() {
    let body = "pub fn stall(p: &FixPair, d: Duration) { let f = p.fix_front.lock(); sleep(d); }\n";
    let f = lint(&[pair_file(body)]);
    assert_eq!(rules(&f), vec![Rule::BlockingUnderLock], "{f:?}");
}

#[test]
fn blocking_under_lock_sees_through_calls() {
    // The sleep is one call away: the transitive may-block summary of
    // `fix_nap` carries it back under the guard.
    let body = "pub fn fix_nap(d: Duration) { sleep(d); }\n\
                pub fn stall(p: &FixPair, d: Duration) { let f = p.fix_front.lock(); fix_nap(d); }\n";
    let f = lint(&[pair_file(body)]);
    assert_eq!(rules(&f), vec![Rule::BlockingUnderLock], "{f:?}");
}

#[test]
fn blocking_under_lock_accepts_dropped_guard_and_inline_allow() {
    let ok =
        "pub fn stall(p: &FixPair, d: Duration) { let f = p.fix_front.lock(); drop(f); sleep(d); }\n";
    assert!(lint(&[pair_file(ok)]).is_empty());
    let allowed = "pub fn stall(p: &FixPair, d: Duration) {\n\
                       let f = p.fix_front.lock();\n\
                       // fabriclint: allow(blocking-under-lock): fixture, bounded wait\n\
                       sleep(d);\n\
                   }\n";
    assert!(lint(&[pair_file(allowed)]).is_empty());
}

// ---------------------------------------------------------------------
// context-propagation
// ---------------------------------------------------------------------

#[test]
fn ctx_propagation_flags_unused_deadline_on_blocking_path() {
    let bad = file(
        "crates/app/src/ctx.rs",
        "pub fn run_fix(d: Deadline, t: Duration) { sleep(t); }\n",
    );
    let f = lint(&[bad]);
    assert_eq!(rules(&f), vec![Rule::ContextPropagation], "{f:?}");
    assert!(f[0].message.contains("Deadline"), "{:?}", f[0]);
}

#[test]
fn ctx_propagation_accepts_used_discarded_or_nonblocking_ctx() {
    let used = file(
        "crates/app/src/ctx.rs",
        "pub fn run_fix(d: Deadline) { sleep(d.remaining()); }\n",
    );
    assert!(lint(&[used]).is_empty());
    // `_`-prefixed params are an explicit discard, not a lost ctx.
    let discarded = file(
        "crates/app/src/ctx.rs",
        "pub fn run_fix(_d: Deadline, t: Duration) { sleep(t); }\n",
    );
    assert!(lint(&[discarded]).is_empty());
    // A fn that neither sleeps nor emits owes the ctx nothing.
    let nonblocking = file(
        "crates/app/src/ctx.rs",
        "pub fn peek_fix(d: Deadline) -> u32 { 7 }\n",
    );
    assert!(lint(&[nonblocking]).is_empty());
    let allowed = file(
        "crates/app/src/ctx.rs",
        "// fabriclint: allow(context-propagation): fixture trait signature\n\
         pub fn run_fix(d: Deadline, t: Duration) { sleep(t); }\n",
    );
    assert!(lint(&[allowed]).is_empty());
}

// ---------------------------------------------------------------------
// deprecated-api
// ---------------------------------------------------------------------

#[test]
fn deprecated_api_flags_shim_callers() {
    let bare = file(
        "crates/app/src/save.rs",
        "pub fn go(s: &Session) { save_to_db(s, rows, opts); }\n",
    );
    let f = lint(&[bare]);
    assert_eq!(rules(&f), vec![Rule::DeprecatedApi], "{f:?}");
    assert!(f[0].message.contains("save_to_db"), "{:?}", f[0]);

    let qualified = file(
        "crates/app/src/save2.rs",
        "pub fn go(df: &DataFrame) { connector::save(df, mode); }\n",
    );
    let f = lint(&[qualified]);
    assert_eq!(rules(&f), vec![Rule::DeprecatedApi], "{f:?}");
}

#[test]
fn deprecated_api_accepts_writer_method_local_helper_and_defining_file() {
    // `.save(` is the DataFrameWriter API, not the shim.
    let method = file(
        "crates/app/src/w.rs",
        "pub fn go(w: DataFrameWriter) { w.save(t); }\n",
    );
    assert!(lint(&[method]).is_empty());
    // A file with its own `fn save` shadows the shim for bare calls.
    let local = file(
        "crates/app/src/local.rs",
        "fn save(x: u32) -> u32 { x }\npub fn go_fix() { save(3); }\n",
    );
    assert!(lint(&[local]).is_empty());
    // The shim's defining file is exempt (it defines and doc-tests it).
    let defining = file(
        "crates/connector/src/s2v.rs",
        "pub fn save_to_db(s: &Session) { body(s) }\n",
    );
    assert!(lint(&[defining]).is_empty());
    let allowed = file(
        "crates/app/src/save3.rs",
        "pub fn go(s: &Session) {\n\
         \x20   // fabriclint: allow(deprecated-api): migration staged for next PR\n\
         \x20   save_to_db(s, rows, opts)\n\
         }\n",
    );
    assert!(lint(&[allowed]).is_empty());
}

// ---------------------------------------------------------------------
// allowlist baseline
// ---------------------------------------------------------------------

#[test]
fn baseline_suppresses_matches_and_flags_stale_entries() {
    let bad = file(
        "crates/app/src/clock.rs",
        "fn now() -> SystemTime { SystemTime::now() }",
    );
    let allow = Allowlist::parse(
        "# fixture baseline\n\
         determinism crates/app/src/clock.rs SystemTime\n",
    );
    let f = lint_files(std::slice::from_ref(&bad), &allow, &Config::default());
    assert!(f.is_empty(), "baseline entry must suppress: {f:?}");

    // The same baseline against a clean workspace is itself a finding.
    let clean = file("crates/app/src/clean.rs", "fn nothing() {}");
    let f = lint_files(&[clean], &allow, &Config::default());
    assert_eq!(rules(&f), vec![Rule::Allowlist]);
    assert!(f[0].message.contains("stale"));
    assert_eq!(f[0].file, "fabriclint.allow");
}
