//! The tier-1 gate: the real workspace must lint clean.
//!
//! This is the same check `scripts/check.sh` runs via the CLI, wired
//! into `cargo test` so the invariants hold on every test run, not just
//! in CI: no ambient time/entropy, no unregistered or dead counter
//! names, every error variant classified and constructed, no hot-path
//! panics, no unjustified `unsafe` — modulo the explicit, checked-in
//! exceptions in `fabriclint.allow` and inline allow comments.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let findings = fabriclint::lint_workspace(&root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "fabriclint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_root_is_discoverable() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let root = fabriclint::find_workspace_root(&here).expect("root found");
    assert!(root.join("fabriclint.allow").exists() || root.join("Cargo.toml").exists());
    // The discovered root is the workspace manifest, not this crate's.
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
    assert!(manifest.contains("[workspace]"));
}
