//! The system catalog: table and view definitions, and the metadata
//! queries clients use to discover segmentation (paper Sec. 3.1.2: "this
//! information is stored in the Vertica system catalog and can be
//! queried").

use std::collections::HashMap;

use common::Schema;

use crate::error::{DbError, DbResult};
use crate::sql::ast::SelectStmt;

/// How a table's rows are placed across nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Segmentation {
    /// `SEGMENTED BY HASH(columns) ALL NODES`: rows hash onto the ring.
    ByHash(Vec<String>),
    /// `UNSEGMENTED ALL NODES`: the table is replicated on every node.
    Unsegmented,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    pub name: String,
    pub schema: Schema,
    pub segmentation: Segmentation,
    /// Ordinals of the segmentation columns (empty when unsegmented).
    pub seg_columns: Vec<usize>,
    /// Temp tables are bookkeeping objects (e.g. S2V staging/status
    /// tables); they behave like tables but are flagged in the catalog.
    pub is_temp: bool,
}

impl TableDef {
    /// Build a definition, resolving segmentation column names. When
    /// `segmentation` is `ByHash` with an empty column list, all columns
    /// are used (the engine's default segmentation expression).
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        segmentation: Segmentation,
    ) -> DbResult<TableDef> {
        let name = normalize(&name.into());
        let (segmentation, seg_columns) = match segmentation {
            Segmentation::ByHash(cols) if cols.is_empty() => {
                let all: Vec<String> = schema.fields().iter().map(|f| f.name.clone()).collect();
                let idx = (0..schema.len()).collect();
                (Segmentation::ByHash(all), idx)
            }
            Segmentation::ByHash(cols) => {
                let idx = cols
                    .iter()
                    .map(|c| schema.index_of(c))
                    .collect::<Result<Vec<_>, _>>()?;
                (Segmentation::ByHash(cols), idx)
            }
            Segmentation::Unsegmented => (Segmentation::Unsegmented, Vec::new()),
        };
        Ok(TableDef {
            name,
            schema,
            segmentation,
            seg_columns,
            is_temp: false,
        })
    }

    pub fn temp(mut self) -> TableDef {
        self.is_temp = true;
        self
    }

    pub fn is_segmented(&self) -> bool {
        matches!(self.segmentation, Segmentation::ByHash(_))
    }
}

/// A view: a named, stored SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    pub name: String,
    pub select: SelectStmt,
}

/// The catalog. Object names are case-insensitive (normalized to
/// lowercase).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableDef>,
    views: HashMap<String, ViewDef>,
}

pub(crate) fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn create_table(&mut self, def: TableDef) -> DbResult<()> {
        if self.tables.contains_key(&def.name) || self.views.contains_key(&def.name) {
            return Err(DbError::TableExists(def.name.clone()));
        }
        self.tables.insert(def.name.clone(), def);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> DbResult<TableDef> {
        self.tables
            .remove(&normalize(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn table(&self, name: &str) -> DbResult<&TableDef> {
        self.tables
            .get(&normalize(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&normalize(name))
    }

    pub fn create_view(&mut self, name: impl Into<String>, select: SelectStmt) -> DbResult<()> {
        let name = normalize(&name.into());
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        self.views.insert(name.clone(), ViewDef { name, select });
        Ok(())
    }

    pub fn drop_view(&mut self, name: &str) -> DbResult<ViewDef> {
        self.views
            .remove(&normalize(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&normalize(name))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)])
    }

    #[test]
    fn default_segmentation_uses_all_columns() {
        let def = TableDef::new("T1", schema(), Segmentation::ByHash(vec![])).unwrap();
        assert_eq!(def.name, "t1");
        assert_eq!(def.seg_columns, vec![0, 1]);
    }

    #[test]
    fn explicit_segmentation_columns_resolved() {
        let def = TableDef::new("t", schema(), Segmentation::ByHash(vec!["x".into()])).unwrap();
        assert_eq!(def.seg_columns, vec![1]);
        assert!(TableDef::new("t", schema(), Segmentation::ByHash(vec!["nope".into()])).is_err());
    }

    #[test]
    fn unsegmented_has_no_seg_columns() {
        let def = TableDef::new("t", schema(), Segmentation::Unsegmented).unwrap();
        assert!(def.seg_columns.is_empty());
        assert!(!def.is_segmented());
    }

    #[test]
    fn catalog_create_lookup_drop_case_insensitive() {
        let mut cat = Catalog::new();
        let def = TableDef::new("Orders", schema(), Segmentation::ByHash(vec![])).unwrap();
        cat.create_table(def.clone()).unwrap();
        assert!(cat.table("ORDERS").is_ok());
        assert!(cat.has_table("orders"));
        assert_eq!(
            cat.create_table(def),
            Err(DbError::TableExists("orders".into()))
        );
        cat.drop_table("orders").unwrap();
        assert!(cat.table("orders").is_err());
    }

    #[test]
    fn view_name_conflicts_with_table() {
        let mut cat = Catalog::new();
        cat.create_table(TableDef::new("t", schema(), Segmentation::ByHash(vec![])).unwrap())
            .unwrap();
        let select = SelectStmt::simple_scan("t");
        assert!(cat.create_view("t", select.clone()).is_err());
        cat.create_view("v", select).unwrap();
        assert!(cat.view("V").is_some());
        assert_eq!(cat.view_names(), vec!["v"]);
        cat.drop_view("v").unwrap();
        assert!(cat.view("v").is_none());
    }
}
