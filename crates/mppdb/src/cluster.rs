//! The database cluster: nodes, routing, transactions, DDL, and
//! maintenance.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::hash;
use common::{Row, Value};
use netsim::record::{NetClass, NodeRef, Recorder};
use parking_lot::{Mutex, RwLock};

use crate::catalog::{normalize, Catalog, TableDef};
use crate::dfs::Dfs;
use crate::error::{DbError, DbResult};
use crate::fault::{FaultInjector, FaultSite, LatencySite};
use crate::resource::ResourcePool;
use crate::segmentation::{merge_ranges, HashRange, SegmentMap};
use crate::session::Session;
use crate::sql::ast::SelectStmt;
use crate::storage::store::RowLoc;
use crate::storage::{NodeTableStore, StorageStats};
use crate::txn::{LockManager, LockMode, TxnHandle};
use crate::udf::ScalarUdf;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub node_count: usize,
    /// Number of node failures tolerated before data loss; each segment
    /// is replicated to this many buddy nodes. The paper's experiments
    /// run with k-safety 0 "for clarity of evaluation of data movement".
    pub k_safety: usize,
    /// Per-node client session limit (the paper raises
    /// MAX-CLIENT-SESSIONS to 100 for the parallelism experiments).
    pub max_client_sessions: usize,
    /// Committed WOS rows per node-table that trigger an automatic
    /// tuple-mover moveout after commit.
    pub moveout_threshold: usize,
    /// Minimum adjacent same-stratum ROS containers before the tuple
    /// mover's mergeout collapses them into one.
    pub mergeout_min_containers: usize,
    /// Lock wait timeout (deadlock resolution).
    pub lock_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            node_count: 4,
            k_safety: 0,
            max_client_sessions: 100,
            moveout_threshold: 16 * 1024,
            mergeout_min_containers: 4,
            lock_timeout: Duration::from_secs(5),
        }
    }
}

impl ClusterConfig {
    pub fn with_nodes(node_count: usize) -> ClusterConfig {
        ClusterConfig {
            node_count,
            ..ClusterConfig::default()
        }
    }
}

pub(crate) struct NodeState {
    pub up: AtomicBool,
    /// Bumped on every kill: sessions remember the generation they
    /// connected under, so a session that outlives its node's death
    /// fails with `ConnectionLost` even after the node is restored.
    pub generation: AtomicU64,
    pub open_sessions: AtomicUsize,
    pub stores: RwLock<HashMap<String, NodeTableStore>>,
    /// Permanently removed from the cluster (`Cluster::remove_node`
    /// after its rebalance flipped). Node ids are stable, so a retired
    /// node keeps its slot but never serves again: `is_node_up` is
    /// false forever and `restore_node` refuses to revive it.
    pub retired: AtomicBool,
    /// Times this node's stores were rebuilt from live peers
    /// (restore-after-kill recovery); surfaced in `dc_nodes`.
    pub rebuilds: AtomicU64,
}

impl NodeState {
    fn fresh() -> NodeState {
        NodeState {
            up: AtomicBool::new(true),
            generation: AtomicU64::new(0),
            open_sessions: AtomicUsize::new(0),
            stores: RwLock::new(HashMap::new()),
            retired: AtomicBool::new(false),
            rebuilds: AtomicU64::new(0),
        }
    }
}

/// One entry of the cluster's segment-map history: the map and the
/// epoch at which it became authoritative. A snapshot read at epoch `e`
/// resolves ownership through the newest version whose
/// `effective_epoch <= e` — this is what keeps in-flight epoch-pinned
/// jobs correct across a rebalance flip.
#[derive(Clone)]
pub struct MapVersion {
    pub effective_epoch: u64,
    pub map: Arc<SegmentMap>,
}

/// A multi-node MPP database running in-process.
pub struct Cluster {
    /// Process-unique id, distinguishing clusters that share a process
    /// (every test builds its own). External per-cluster state — the
    /// connector's health trackers — keys off this rather than the Arc
    /// pointer, which the allocator may reuse.
    id: u64,
    config: ClusterConfig,
    /// Segment-map history, oldest first; the last entry is the
    /// authoritative map. Never empty. Appended to only at an epoch
    /// boundary under the commit lock (the rebalance flip).
    maps: RwLock<Vec<MapVersion>>,
    /// Registered node slots. Ids are stable (slot index == node id for
    /// the life of the cluster): `add_node` appends, `remove_node`
    /// retires in place. Grown only under the commit lock.
    nodes: RwLock<Vec<Arc<NodeState>>>,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) epoch: AtomicU64,
    pub(crate) commit_lock: Mutex<()>,
    pub(crate) locks: LockManager,
    next_txn: AtomicU64,
    recorder: Arc<Recorder>,
    udfs: RwLock<HashMap<String, Arc<dyn ScalarUdf>>>,
    dfs: Dfs,
    pools: RwLock<HashMap<String, Arc<ResourcePool>>>,
    faults: FaultInjector,
    /// Tuple-mover op log and background-thread handle
    /// (`storage::mover` holds the pass logic).
    pub(crate) mover: crate::storage::mover::MoverState,
    /// Pending-rebalance state and op log (`rebalance` holds the
    /// migration logic).
    pub(crate) rebalance: crate::rebalance::RebalanceState,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Arc<Cluster> {
        assert!(config.node_count > 0, "cluster needs at least one node");
        assert!(
            config.k_safety < config.node_count,
            "k-safety must be below the node count"
        );
        let nodes = (0..config.node_count)
            .map(|_| Arc::new(NodeState::fresh()))
            .collect();
        let seg_map = Arc::new(SegmentMap::new(config.node_count));
        let mut pools = HashMap::new();
        pools.insert(
            "general".to_string(),
            Arc::new(ResourcePool::new("general", 32 << 30, usize::MAX)),
        );
        // The tuple mover's maintenance pool: narrow on purpose, so
        // background moveout/mergeout sheds under load instead of
        // competing with foreground statements.
        pools.insert(
            crate::storage::mover::MOVER_POOL.to_string(),
            Arc::new(ResourcePool::new(
                crate::storage::mover::MOVER_POOL,
                4 << 30,
                2,
            )),
        );
        static NEXT_CLUSTER_ID: AtomicU64 = AtomicU64::new(1);
        Arc::new(Cluster {
            id: NEXT_CLUSTER_ID.fetch_add(1, Ordering::Relaxed),
            config,
            maps: RwLock::new(vec![MapVersion {
                effective_epoch: 0,
                map: seg_map,
            }]),
            nodes: RwLock::new(nodes),
            catalog: RwLock::new(Catalog::new()),
            epoch: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            locks: LockManager::new(),
            next_txn: AtomicU64::new(1),
            recorder: Recorder::new(),
            udfs: RwLock::new(HashMap::new()),
            dfs: Dfs::new(),
            pools: RwLock::new(pools),
            faults: FaultInjector::default(),
            mover: crate::storage::mover::MoverState::default(),
            rebalance: crate::rebalance::RebalanceState::default(),
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Process-unique cluster id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of registered node slots (including retired ones): node
    /// ids are always `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// The node's shared state, if the id is registered.
    pub(crate) fn node_state(&self, node: usize) -> Option<Arc<NodeState>> {
        self.nodes.read().get(node).cloned()
    }

    /// Snapshot of every registered node's state, in id order.
    pub(crate) fn node_states(&self) -> Vec<Arc<NodeState>> {
        self.nodes.read().clone()
    }

    /// The authoritative (newest) segment map.
    pub fn segment_map(&self) -> Arc<SegmentMap> {
        let maps = self.maps.read();
        // fabriclint: allow(panic-hygiene): version 0 is pushed at construction, entries are never popped
        let newest = maps.last().expect("map history never empty");
        Arc::clone(&newest.map)
    }

    /// The segment map that was authoritative at `epoch` — what an
    /// epoch-pinned read resolves ownership through, so a scan taken
    /// before a rebalance flip keeps routing against the map its
    /// snapshot was written under.
    pub fn segment_map_at(&self, epoch: u64) -> Arc<SegmentMap> {
        let maps = self.maps.read();
        let idx = match maps.partition_point(|v| v.effective_epoch <= epoch) {
            0 => 0,
            p => p - 1,
        };
        Arc::clone(&maps[idx].map)
    }

    /// The whole segment-map history, oldest first.
    pub fn segment_map_history(&self) -> Vec<MapVersion> {
        self.maps.read().clone()
    }

    /// Publish `map` as the authoritative version from `effective_epoch`
    /// on. Caller must hold the commit lock.
    pub(crate) fn push_map_version(&self, effective_epoch: u64, map: Arc<SegmentMap>) {
        self.maps.write().push(MapVersion {
            effective_epoch,
            map,
        });
    }

    /// Register a brand-new node slot (up, empty stores for every
    /// catalog table) and return its id. Caller (`add_node`) must hold
    /// the commit lock.
    pub(crate) fn register_node(&self) -> usize {
        let catalog = self.catalog.read();
        let state = Arc::new(NodeState::fresh());
        {
            let mut stores = state.stores.write();
            for name in catalog.table_names() {
                if let Ok(def) = catalog.table(&name) {
                    stores.insert(def.name.clone(), NodeTableStore::new(def.schema.len()));
                }
            }
        }
        let mut nodes = self.nodes.write();
        nodes.push(state);
        nodes.len() - 1
    }

    /// Permanently retire a node: it stops serving, its sessions die,
    /// and it can never be restored. Caller (`run_rebalance`'s flip)
    /// ensures no map still routes new work to it.
    pub(crate) fn retire_node(&self, node: usize) {
        if let Some(state) = self.node_state(node) {
            state.retired.store(true, Ordering::Release);
            if state.up.swap(false, Ordering::AcqRel) {
                state.generation.fetch_add(1, Ordering::AcqRel);
            }
            obs::global().emit(obs::EventKind::FaultInject, |e| {
                e.node = Some(node as u64);
                e.detail = format!("node {node} retired");
            });
        }
    }

    /// Whether the node id is registered but permanently removed.
    pub fn is_node_retired(&self, node: usize) -> bool {
        self.node_state(node)
            .is_some_and(|n| n.retired.load(Ordering::Acquire))
    }

    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The last committed epoch (0 before any commit). A snapshot read
    /// at this epoch sees all committed data (the paper's "last epoch").
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    // ----- sessions -------------------------------------------------

    /// Open a client session against `node` (the JDBC connect analog).
    pub fn connect(self: &Arc<Cluster>, node: usize) -> DbResult<Session> {
        let state = self
            .node_state(node)
            .ok_or(DbError::NodeUnavailable(node))?;
        if !state.up.load(Ordering::Acquire) || state.retired.load(Ordering::Acquire) {
            return Err(DbError::NodeUnavailable(node));
        }
        if self.faults.should_fire(FaultSite::Connect, node) {
            return Err(DbError::ConnectionRefused { node });
        }
        self.faults.apply_latency(LatencySite::Connect, node);
        // Optimistic increment with bound check.
        let prev = state.open_sessions.fetch_add(1, Ordering::AcqRel);
        if prev >= self.config.max_client_sessions {
            state.open_sessions.fetch_sub(1, Ordering::AcqRel);
            return Err(DbError::TooManySessions {
                node,
                limit: self.config.max_client_sessions,
            });
        }
        obs::global().emit(obs::EventKind::SessionOpen, |e| {
            e.node = Some(node as u64);
            e.detail = format!("{} open", prev + 1);
        });
        obs::global().incr("db.sessions_opened");
        Ok(Session::new(Arc::clone(self), node))
    }

    pub(crate) fn close_session(&self, node: usize) {
        let Some(state) = self.node_state(node) else {
            return;
        };
        let before = state.open_sessions.fetch_sub(1, Ordering::AcqRel);
        obs::global().emit(obs::EventKind::SessionClose, |e| {
            e.node = Some(node as u64);
            e.detail = format!("{} open", before.saturating_sub(1));
        });
        obs::global().incr("db.sessions_closed");
    }

    pub fn open_sessions(&self, node: usize) -> usize {
        self.node_state(node)
            .map(|n| n.open_sessions.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// All node indices that are currently up — what the connector's
    /// setup phase looks up so tasks can spread their connections
    /// (paper Sec. 3.2: "all Vertica node IPs are looked up during
    /// setup").
    pub fn up_nodes(&self) -> Vec<usize> {
        self.nodes
            .read()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.up.load(Ordering::Acquire) && !n.retired.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    pub fn is_node_up(&self, node: usize) -> bool {
        self.node_state(node)
            .is_some_and(|n| n.up.load(Ordering::Acquire) && !n.retired.load(Ordering::Acquire))
    }

    /// Mark a node down. Alias of [`Cluster::kill_node`], kept for the
    /// pre-fault-domain call sites.
    pub fn set_node_down(&self, node: usize) {
        self.kill_node(node);
    }

    /// Alias of [`Cluster::restore_node`].
    pub fn set_node_up(&self, node: usize) {
        self.restore_node(node);
    }

    /// Kill a node: new connections are refused, and every session
    /// pinned to it fails its next operation with
    /// [`DbError::ConnectionLost`]. Idempotent.
    pub fn kill_node(&self, node: usize) {
        let Some(state) = self.node_state(node) else {
            return;
        };
        if state.up.swap(false, Ordering::AcqRel) {
            state.generation.fetch_add(1, Ordering::AcqRel);
            obs::global().emit(obs::EventKind::FaultInject, |e| {
                e.node = Some(node as u64);
                e.detail = format!("node {node} killed");
            });
            obs::global().incr("db.node_kills");
        }
    }

    /// Restore a killed node. Before it starts serving, its stores are
    /// rebuilt from live peers (replica recovery): segmented tables pull
    /// each owned or buddied segment from that segment's surviving
    /// replicas, unsegmented tables copy any live node's replica. The
    /// export preserves commit/delete epochs, so epoch-pinned snapshot
    /// reads against the rebuilt node see exactly the history its peers
    /// hold. With k-safety 0 a segmented table has no surviving replica
    /// to pull from, so the node's own (possibly stale) disk state is
    /// kept — the same gamble a real k=0 deployment makes. Idempotent.
    pub fn restore_node(&self, node: usize) {
        let Some(state) = self.node_state(node) else {
            return;
        };
        // Retired nodes never come back: their data has migrated away.
        if state.retired.load(Ordering::Acquire) || state.up.load(Ordering::Acquire) {
            return;
        }
        self.rebuild_node_stores(node);
        state.rebuilds.fetch_add(1, Ordering::AcqRel);
        state.up.store(true, Ordering::Release);
        obs::global().emit(obs::EventKind::FaultInject, |e| {
            e.node = Some(node as u64);
            e.detail = format!("node {node} restored");
        });
        obs::global().incr("db.node_restores");
    }

    /// The node's kill generation (bumped on every kill); sessions pin
    /// the generation they connected under.
    pub(crate) fn node_generation(&self, node: usize) -> u64 {
        self.node_state(node)
            .map(|n| n.generation.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// How many times recovery has rebuilt the node's stores.
    pub fn node_rebuilds(&self, node: usize) -> u64 {
        self.node_state(node)
            .map(|n| n.rebuilds.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// The cluster's fault-injection switchboard.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Rebuild a down node's stores from live replicas. Runs under the
    /// commit lock so no commit can stamp epochs mid-copy; pending rows
    /// of still-open transactions are copied too, so their eventual
    /// commit or abort applies to the rebuilt replica as well.
    ///
    /// Lock order: commit lock strictly before the catalog — rebalance
    /// paths hold the commit lock while registering nodes (which reads
    /// the catalog), so taking the catalog first here would close a
    /// cycle: a queued `catalog.write()` between the two readers turns
    /// the inversion into a deadlock under a write-preferring RwLock.
    fn rebuild_node_stores(&self, node: usize) {
        let k = self.config.k_safety;
        let _commit_guard = self.commit_lock.lock();
        let catalog = self.catalog.read();
        let map = self.segment_map();
        for name in catalog.table_names() {
            let Ok(def) = catalog.table(&name) else {
                continue;
            };
            let mut rebuilt = NodeTableStore::new(def.schema.len());
            if def.is_segmented() {
                if k == 0 {
                    // No surviving replica anywhere; keep the local disk.
                    continue;
                }
                // Ranges this node serves under ANY live map version:
                // what it owns or buddies for in the authoritative map,
                // plus historical obligations — epoch-pinned readers of
                // pre-rebalance snapshots still route those ranges here,
                // so a rebuild that restored only current-map segments
                // would silently serve them short.
                let mut serves: Vec<HashRange> = Vec::new();
                for mv in self.segment_map_history() {
                    for seg in mv.map.segments() {
                        if seg.owner == node || mv.map.buddies(seg.owner, k).contains(&node) {
                            serves.push(seg.range);
                        }
                    }
                }
                let mut recovered_all = true;
                for range in merge_ranges(serves) {
                    // Each piece is sourced through the authoritative
                    // map: post-flip owners hold the verbatim history of
                    // migrated ranges, so historical pieces come back
                    // complete even when every pre-flip holder is gone.
                    for (owner, sub) in map.segments_intersecting(&range) {
                        let source = std::iter::once(owner)
                            .chain(map.buddies(owner, k))
                            .find(|&n| n != node && self.is_node_up(n));
                        match source {
                            Some(src) => {
                                // fabriclint: allow(panic-hygiene): src came from the map's member list
                                let src_state = self.node_state(src).expect("registered node");
                                let stores = src_state.stores.read();
                                if let Some(store) = stores.get(&def.name) {
                                    rebuilt.import_rows(store.export_rows(Some(&sub)));
                                }
                            }
                            None => {
                                // Every other replica of this piece is
                                // down too; fall back to our own disk.
                                // fabriclint: allow(panic-hygiene): node is the restoring member itself
                                let own = self.node_state(node).expect("registered node");
                                let stores = own.stores.read();
                                if let Some(store) = stores.get(&def.name) {
                                    rebuilt.import_rows(store.export_rows(Some(&sub)));
                                }
                                recovered_all = false;
                            }
                        }
                    }
                }
                obs::global().emit(obs::EventKind::FaultInject, |e| {
                    e.node = Some(node as u64);
                    e.detail = format!(
                        "recovery rebuilt {}{}",
                        def.name,
                        if recovered_all { "" } else { " (partial)" }
                    );
                });
            } else {
                // Unsegmented: copy the full replica from any live node.
                let Some(src) = (0..self.node_count()).find(|&n| n != node && self.is_node_up(n))
                else {
                    continue;
                };
                // fabriclint: allow(panic-hygiene): src < node_count() is registered by construction
                let src_state = self.node_state(src).expect("registered node");
                let stores = src_state.stores.read();
                if let Some(store) = stores.get(&def.name) {
                    rebuilt.import_rows(store.export_rows(None));
                } else {
                    continue;
                }
            }
            self.node_state(node)
                // fabriclint: allow(panic-hygiene): node is the restoring member itself
                .expect("registered node")
                .stores
                .write()
                .insert(def.name.clone(), rebuilt);
        }
    }

    // ----- DDL ------------------------------------------------------

    /// Create a table cluster-wide.
    pub fn create_table(&self, def: TableDef) -> DbResult<()> {
        let mut catalog = self.catalog.write();
        let columns = def.schema.len();
        let name = def.name.clone();
        catalog.create_table(def)?;
        for node in self.node_states() {
            node.stores
                .write()
                .insert(name.clone(), NodeTableStore::new(columns));
        }
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let mut catalog = self.catalog.write();
        let def = catalog.drop_table(name)?;
        for node in self.node_states() {
            node.stores.write().remove(&def.name);
        }
        Ok(())
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().has_table(name)
    }

    pub fn table_def(&self, name: &str) -> DbResult<TableDef> {
        self.catalog.read().table(name).cloned()
    }

    pub fn create_view(&self, name: &str, select: SelectStmt) -> DbResult<()> {
        self.catalog.write().create_view(name, select)
    }

    pub fn drop_view(&self, name: &str) -> DbResult<()> {
        self.catalog.write().drop_view(name).map(|_| ())
    }

    // ----- transactions ---------------------------------------------

    /// Allocate a transaction id without opening a statement-level
    /// transaction (the tuple mover uses bare ids to hold table locks).
    pub(crate) fn alloc_txn_id(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::AcqRel)
    }

    pub(crate) fn begin_txn(&self) -> TxnHandle {
        let id = self.alloc_txn_id();
        obs::global().emit(obs::EventKind::TxnBegin, |e| {
            e.task = Some(id);
        });
        obs::global().incr("db.txn_begin");
        TxnHandle::new(id)
    }

    /// Acquire `table`'s lock for the transaction (re-entrant).
    pub(crate) fn lock_table(
        &self,
        txn: &mut TxnHandle,
        table: &str,
        mode: LockMode,
    ) -> DbResult<()> {
        let table = normalize(table);
        self.locks
            .acquire(txn.id, &table, mode, self.config.lock_timeout)?;
        txn.locked.insert(table);
        Ok(())
    }

    /// Commit: stamp all pending work with the next epoch, publish it,
    /// release locks, and run the tuple mover where the WOS grew large.
    pub(crate) fn commit_txn(&self, txn: TxnHandle) -> u64 {
        let commit_started = std::time::Instant::now();
        let epoch;
        {
            let _guard = self.commit_lock.lock();
            epoch = self.epoch.load(Ordering::Acquire) + 1;
            // Every registered node — including a rebalance target
            // still staging copies — is stamped, so migrated replicas
            // of pending rows resolve exactly like their sources.
            for table in &txn.touched {
                for node in self.node_states() {
                    let mut stores = node.stores.write();
                    if let Some(store) = stores.get_mut(table) {
                        store.commit(txn.id, epoch);
                    }
                }
            }
            self.epoch.store(epoch, Ordering::Release);
        }
        self.locks.release_all(txn.id);
        obs::global().emit(obs::EventKind::TxnCommit, |e| {
            e.task = Some(txn.id);
            e.dur_us = commit_started.elapsed().as_micros() as u64;
            e.detail = format!("epoch {epoch}, {} tables", txn.touched.len());
        });
        obs::global().incr("db.txn_commit");
        obs::global().emit(obs::EventKind::EpochAdvance, |e| {
            e.task = Some(txn.id);
            e.detail = format!("epoch {epoch}");
        });
        obs::global().incr("db.epoch_advance");
        obs::global().record_time("db.commit_us", commit_started.elapsed());
        // Post-commit maintenance: moveout of large WOS'es, recorded
        // like any other tuple-mover operation.
        for table in &txn.touched {
            for (idx, node) in self.node_states().into_iter().enumerate() {
                let mut stores = node.stores.write();
                if let Some(store) = stores.get_mut(table) {
                    if store.wos_committed_rows() >= self.config.moveout_threshold {
                        self.moveout_store_recorded(idx, table, store);
                    }
                }
            }
        }
        epoch
    }

    pub(crate) fn abort_txn(&self, txn: TxnHandle) {
        for table in &txn.touched {
            for node in self.node_states() {
                let mut stores = node.stores.write();
                if let Some(store) = stores.get_mut(table) {
                    store.abort(txn.id);
                }
            }
        }
        self.locks.release_all(txn.id);
        obs::global().emit(obs::EventKind::TxnAbort, |e| {
            e.task = Some(txn.id);
            e.detail = format!("{} tables", txn.touched.len());
        });
        obs::global().incr("db.txn_abort");
    }

    // ----- DML ------------------------------------------------------

    /// Validate and coerce a row against a table schema.
    fn coerce_row(def: &TableDef, row: Row) -> DbResult<Row> {
        if row.len() != def.schema.len() {
            return Err(DbError::Data(common::Error::SchemaMismatch(format!(
                "row has {} values, table {} has {} columns",
                row.len(),
                def.name,
                def.schema.len()
            ))));
        }
        let values = row
            .into_values()
            .into_iter()
            .zip(def.schema.fields())
            .map(|(v, f)| {
                if v.is_null() && !f.nullable {
                    return Err(DbError::Data(common::Error::SchemaMismatch(format!(
                        "NULL in non-nullable column {}",
                        f.name
                    ))));
                }
                v.coerce(f.dtype).map_err(DbError::Data)
            })
            .collect::<DbResult<Vec<Value>>>()?;
        Ok(Row::new(values))
    }

    /// Insert rows under an open transaction, routing by segmentation
    /// and replicating per k-safety. `direct` loads straight into ROS
    /// (the COPY DIRECT path). `initiator` is the session's node; rows
    /// routed elsewhere are internal shuffle traffic.
    pub(crate) fn insert_rows(
        &self,
        txn: &mut TxnHandle,
        initiator: usize,
        task: Option<u64>,
        table: &str,
        rows: Vec<Row>,
        direct: bool,
    ) -> DbResult<u64> {
        let def = self.table_def(table)?;
        self.lock_table(txn, &def.name, LockMode::Shared)?;
        txn.touched.insert(def.name.clone());

        let n = rows.len() as u64;
        let map = self.segment_map();
        // During a pending rebalance every row is *dual-written*: it
        // lands on its current-map replicas AND its target-map replicas,
        // so rows inserted after a range was copied still reach the new
        // owner before the flip.
        let pending = self.rebalance_target_map();
        let states = self.node_states();
        // Per-target batches of (row, hash), plus whether the target is
        // a current-map replica (down pending-only targets are safely
        // skipped: their migration re-copies after restore).
        let mut batches: Vec<Vec<(Row, u64)>> = (0..states.len()).map(|_| Vec::new()).collect();
        let mut current_target = vec![false; states.len()];
        for row in rows {
            let row = Self::coerce_row(&def, row)?;
            if def.is_segmented() {
                let h = hash::hash_row_columns(&row, &def.seg_columns);
                let owner = map.owner_of_hash(h);
                let mut targets: Vec<usize> = std::iter::once(owner)
                    .chain(map.buddies(owner, self.config.k_safety))
                    .collect();
                for &t in &targets {
                    current_target[t] = true;
                }
                if let Some(next) = &pending {
                    let next_owner = next.owner_of_hash(h);
                    for t in std::iter::once(next_owner)
                        .chain(next.buddies(next_owner, self.config.k_safety))
                    {
                        if !targets.contains(&t) {
                            targets.push(t);
                        }
                    }
                }
                for target in targets {
                    batches[target].push((row.clone(), h));
                }
            } else {
                // Unsegmented: replicate to every live slot (retired
                // nodes are gone for good); the hash over all columns
                // is kept for bookkeeping only.
                let all: Vec<usize> = (0..row.len()).collect();
                let h = hash::hash_row_columns(&row, &all);
                for (i, batch) in batches.iter_mut().enumerate() {
                    if !states[i].retired.load(Ordering::Acquire) {
                        batch.push((row.clone(), h));
                        current_target[i] = true;
                    }
                }
            }
        }

        self.recorder
            .work(task, NodeRef::Db(initiator), "route_hash", n, 0);

        for (target, batch) in batches.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if !self.is_node_up(target) {
                if (self.config.k_safety == 0 || !def.is_segmented()) && current_target[target] {
                    // Without replication a down target is fatal; for
                    // unsegmented tables we tolerate missing replicas as
                    // long as one node holds the data. A down
                    // rebalance-target is never fatal: its kill bumped
                    // the generation, which forces a re-copy on resume.
                    if def.is_segmented() {
                        return Err(DbError::NodeUnavailable(target));
                    }
                }
                continue;
            }
            if target != initiator {
                let bytes: usize = batch.iter().map(|(r, _)| r.wire_size()).sum();
                self.recorder.transfer(
                    task,
                    NodeRef::Db(initiator),
                    NodeRef::Db(target),
                    NetClass::DbInternal,
                    bytes as u64,
                    batch.len() as u64,
                );
            }
            let mut stores = states[target].stores.write();
            let store = stores
                .get_mut(&def.name)
                .ok_or_else(|| DbError::UnknownTable(def.name.clone()))?;
            if direct {
                store.insert_pending_direct(batch, txn.id);
            } else {
                store.insert_pending(batch, txn.id);
            }
        }
        Ok(n)
    }

    /// Scan every logical row of `def` exactly once, visible at `as_of`
    /// (plus the transaction's own pending work), reading each row from
    /// its first *live* holder — the same attribution `delete_where`
    /// uses, so read-then-delete flows (UPDATE) agree with it when
    /// nodes are down.
    pub(crate) fn scan_primary_live(
        &self,
        def: &TableDef,
        as_of: u64,
        my_txn: Option<u64>,
    ) -> DbResult<Vec<Row>> {
        let mut out = Vec::new();
        let map = self.segment_map();
        let states = self.node_states();
        for (node, state) in states.iter().enumerate() {
            if state.retired.load(Ordering::Acquire) {
                continue;
            }
            if !self.is_node_up(node) {
                // Same recoverability rule as `delete_where`: only
                // segmented k=0 data held by a *current-map member* has
                // no surviving live copy (a down rebalance target is
                // re-copied on resume).
                if def.is_segmented() && self.config.k_safety == 0 && map.is_member(node) {
                    return Err(DbError::NodeUnavailable(node));
                }
                continue;
            }
            let stores = state.stores.read();
            let Some(store) = stores.get(&def.name) else {
                continue;
            };
            store.for_each_visible(as_of, my_txn, None, |_loc, row, hash| {
                let primary = if def.is_segmented() {
                    let owner = map.owner_of_hash(hash);
                    std::iter::once(owner)
                        .chain(map.buddies(owner, self.config.k_safety))
                        .find(|&n| self.is_node_up(n))
                        == Some(node)
                } else {
                    (0..states.len()).find(|&n| self.is_node_up(n)) == Some(node)
                };
                if primary {
                    out.push(row.clone());
                }
            });
        }
        Ok(out)
    }

    /// Delete rows matching `predicate` (already bound to the table
    /// schema). Returns the count of (logical) rows deleted.
    pub(crate) fn delete_where(
        &self,
        txn: &mut TxnHandle,
        initiator: usize,
        task: Option<u64>,
        table: &str,
        predicate: Option<&common::Expr>,
    ) -> DbResult<u64> {
        let def = self.table_def(table)?;
        self.lock_table(txn, &def.name, LockMode::Exclusive)?;
        txn.touched.insert(def.name.clone());
        let as_of = self.current_epoch();

        let mut deleted = 0u64;
        let map = self.segment_map();
        let states = self.node_states();
        for (node, state) in states.iter().enumerate() {
            if state.retired.load(Ordering::Acquire) {
                continue;
            }
            if !self.is_node_up(node) {
                // A dead replica misses the delete marks now; recovery
                // rebuilds it from a live buddy (k >= 1) or a live peer
                // (unsegmented), re-acquiring them; a down rebalance
                // target re-copies on resume. Only a segmented k=0
                // current-map member has no surviving copy to recover
                // from.
                if def.is_segmented() && self.config.k_safety == 0 && map.is_member(node) {
                    return Err(DbError::NodeUnavailable(node));
                }
                continue;
            }
            let stores = state.stores.read();
            let Some(store) = stores.get(&def.name) else {
                continue;
            };
            // Match against every replica — buddy copies AND any copy a
            // pending rebalance already staged on its target must be
            // deleted too, but only primaries count.
            // Rows are borrowed in place — matching never clones them.
            let mut matched: Vec<(RowLoc, bool)> = Vec::new();
            store.for_each_visible(as_of, Some(txn.id), None, |loc, row, hash| {
                let hit = match predicate {
                    Some(p) => p.matches(row).unwrap_or(false),
                    None => true,
                };
                if hit {
                    // Primary = the first *live* holder of the row, so
                    // each logical row is counted exactly once even when
                    // its owner (or node 0) is down.
                    let primary = if def.is_segmented() {
                        let owner = map.owner_of_hash(hash);
                        let holder = std::iter::once(owner)
                            .chain(map.buddies(owner, self.config.k_safety))
                            .find(|&n| self.is_node_up(n));
                        holder == Some(node)
                    } else {
                        (0..states.len()).find(|&n| self.is_node_up(n)) == Some(node)
                    };
                    matched.push((loc, primary));
                }
            });
            drop(stores);
            let locs: Vec<RowLoc> = matched.iter().map(|(l, _)| *l).collect();
            deleted += matched.iter().filter(|(_, primary)| *primary).count() as u64;
            if !locs.is_empty() {
                let mut stores = state.stores.write();
                if let Some(store) = stores.get_mut(&def.name) {
                    store.delete_pending(&locs, txn.id);
                }
                self.recorder
                    .work(task, NodeRef::Db(node), "delete_mark", locs.len() as u64, 0);
            }
        }
        let _ = initiator;
        Ok(deleted)
    }

    // ----- maintenance & introspection -------------------------------

    /// Run the tuple mover's moveout on every node-table store. Returns
    /// the number of rows moved.
    pub fn moveout_all(&self) -> usize {
        let mut moved = 0;
        for (idx, node) in self.node_states().into_iter().enumerate() {
            let mut stores = node.stores.write();
            let mut tables: Vec<String> = stores.keys().cloned().collect();
            tables.sort();
            for table in tables {
                if let Some(store) = stores.get_mut(&table) {
                    moved += self.moveout_store_recorded(idx, &table, store);
                }
            }
        }
        moved
    }

    /// Storage statistics per node for a table.
    pub fn table_stats(&self, table: &str) -> DbResult<Vec<StorageStats>> {
        let def = self.table_def(table)?;
        Ok(self
            .node_states()
            .iter()
            .map(|n| {
                n.stores
                    .read()
                    .get(&def.name)
                    .map(|s| s.stats())
                    .unwrap_or_default()
            })
            .collect())
    }

    // ----- UDx ------------------------------------------------------

    pub fn register_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.udfs
            .write()
            .insert(udf.name().to_ascii_lowercase(), udf);
    }

    pub fn udf(&self, name: &str) -> Option<Arc<dyn ScalarUdf>> {
        self.udfs.read().get(&name.to_ascii_lowercase()).cloned()
    }

    // ----- resource pools --------------------------------------------

    /// Create (or replace) a resource pool.
    pub fn create_resource_pool(&self, pool: ResourcePool) {
        self.pools
            .write()
            .insert(pool.name().to_string(), Arc::new(pool));
    }

    pub fn resource_pool(&self, name: &str) -> Option<Arc<ResourcePool>> {
        self.pools.read().get(name).cloned()
    }

    /// All resource pools, sorted by name (for the system catalog).
    pub fn resource_pools(&self) -> Vec<Arc<ResourcePool>> {
        let mut pools: Vec<Arc<ResourcePool>> = self.pools.read().values().cloned().collect();
        pools.sort_by(|a, b| a.name().cmp(b.name()));
        pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Segmentation;
    use common::{row, DataType, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)])
    }

    fn cluster4() -> Arc<Cluster> {
        Cluster::new(ClusterConfig::default())
    }

    fn make_table(cluster: &Cluster, name: &str) {
        cluster
            .create_table(
                TableDef::new(name, schema(), Segmentation::ByHash(vec!["id".into()])).unwrap(),
            )
            .unwrap();
    }

    #[test]
    fn create_and_drop_table_everywhere() {
        let c = cluster4();
        make_table(&c, "t");
        assert!(c.has_table("T"));
        assert_eq!(c.table_stats("t").unwrap().len(), 4);
        c.drop_table("t").unwrap();
        assert!(!c.has_table("t"));
        assert!(c.table_stats("t").is_err());
    }

    #[test]
    fn insert_commit_advances_epoch_and_distributes() {
        let c = cluster4();
        make_table(&c, "t");
        assert_eq!(c.current_epoch(), 0);
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (0..1000).map(|i| row![i as i64, i as f64]).collect();
        c.insert_rows(&mut txn, 0, None, "t", rows, false).unwrap();
        let epoch = c.commit_txn(txn);
        assert_eq!(epoch, 1);
        assert_eq!(c.current_epoch(), 1);
        // Rows spread over all nodes, roughly evenly.
        let stats = c.table_stats("t").unwrap();
        let total: usize = stats.iter().map(|s| s.wos_rows + s.ros_rows).sum();
        assert_eq!(total, 1000);
        for (i, s) in stats.iter().enumerate() {
            let n = s.wos_rows + s.ros_rows;
            assert!(n > 100, "node {i} got only {n} rows");
        }
    }

    #[test]
    fn k_safety_replicates_rows() {
        let c = Cluster::new(ClusterConfig {
            k_safety: 1,
            ..ClusterConfig::default()
        });
        make_table(&c, "t");
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, 0.0f64]).collect();
        c.insert_rows(&mut txn, 0, None, "t", rows, false).unwrap();
        c.commit_txn(txn);
        let total: usize = c
            .table_stats("t")
            .unwrap()
            .iter()
            .map(|s| s.wos_rows + s.ros_rows)
            .sum();
        assert_eq!(total, 200, "each row stored twice under k=1");
    }

    #[test]
    fn abort_leaves_no_trace() {
        let c = cluster4();
        make_table(&c, "t");
        let mut txn = c.begin_txn();
        c.insert_rows(&mut txn, 0, None, "t", vec![row![1i64, 1.0f64]], false)
            .unwrap();
        c.abort_txn(txn);
        assert_eq!(c.current_epoch(), 0);
        let total: usize = c.table_stats("t").unwrap().iter().map(|s| s.wos_rows).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn insert_shuffle_recorded() {
        let c = cluster4();
        make_table(&c, "t");
        c.recorder().clear();
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, 0.0f64]).collect();
        c.insert_rows(&mut txn, 0, None, "t", rows, false).unwrap();
        c.commit_txn(txn);
        // ~3/4 of rows belong to other nodes and shuffle internally.
        let bytes = c.recorder().total_bytes(NetClass::DbInternal);
        assert!(bytes > 0, "expected internal shuffle from initiator");
    }

    #[test]
    fn session_limit_enforced() {
        let c = Cluster::new(ClusterConfig {
            max_client_sessions: 2,
            ..ClusterConfig::default()
        });
        let s1 = c.connect(0).unwrap();
        let _s2 = c.connect(0).unwrap();
        assert!(matches!(c.connect(0), Err(DbError::TooManySessions { .. })));
        drop(s1);
        let _s3 = c.connect(0).unwrap();
    }

    #[test]
    fn down_node_refuses_connections() {
        let c = cluster4();
        c.set_node_down(2);
        assert!(matches!(c.connect(2), Err(DbError::NodeUnavailable(2))));
        assert_eq!(c.up_nodes(), vec![0, 1, 3]);
        c.set_node_up(2);
        assert!(c.connect(2).is_ok());
    }

    #[test]
    fn delete_where_counts_primaries_once_under_replication() {
        let c = Cluster::new(ClusterConfig {
            k_safety: 1,
            ..ClusterConfig::default()
        });
        make_table(&c, "t");
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (0..50).map(|i| row![i as i64, i as f64]).collect();
        c.insert_rows(&mut txn, 0, None, "t", rows, false).unwrap();
        c.commit_txn(txn);

        let pred = common::Expr::col("id")
            .lt(common::Expr::lit(10i64))
            .bind(&schema())
            .unwrap();
        let mut txn = c.begin_txn();
        let deleted = c.delete_where(&mut txn, 0, None, "t", Some(&pred)).unwrap();
        c.commit_txn(txn);
        assert_eq!(deleted, 10);
    }

    #[test]
    fn moveout_all_compacts() {
        let c = cluster4();
        make_table(&c, "t");
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (0..500).map(|i| row![i as i64, 0.0f64]).collect();
        c.insert_rows(&mut txn, 0, None, "t", rows, false).unwrap();
        c.commit_txn(txn);
        let moved = c.moveout_all();
        assert_eq!(moved, 500);
        let stats = c.table_stats("t").unwrap();
        assert!(stats.iter().all(|s| s.wos_rows == 0));
        assert_eq!(stats.iter().map(|s| s.ros_rows).sum::<usize>(), 500);
    }
}
