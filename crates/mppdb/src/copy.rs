//! The COPY bulk-load utility.
//!
//! COPY is "the standard way to load large amounts of data" (Sec.
//! 4.7.3) and the engine-side half of S2V: the connector streams each
//! task's Avro-encoded partition into COPY (the `VerticaCopyStream`
//! analog, Sec. 3.2.2). Sources: delimited text (CSV), Avro container
//! bytes, and pre-parsed rows. Malformed or schema-violating input rows
//! are *rejected* rather than failing the load, up to a caller-supplied
//! tolerance; a sample of rejected rows is returned (Sec. 3.2).

use common::{csv, Row};
use netsim::record::NodeRef;

use crate::cluster::Cluster;
use crate::error::{DbError, DbResult};
use crate::txn::TxnHandle;

/// Bulk-load input.
#[derive(Debug, Clone)]
pub enum CopySource {
    /// Delimited text, one row per line.
    Csv { text: String, delimiter: char },
    /// An `avrolite` container file.
    Avro(Vec<u8>),
    /// Pre-parsed rows (used by in-process loaders and tests).
    Rows(Vec<Row>),
}

/// Load options.
#[derive(Debug, Clone)]
pub struct CopyOptions {
    /// DIRECT loads skip the WOS and write encoded ROS containers.
    pub direct: bool,
    /// Maximum rejected rows before the whole load aborts.
    pub rejected_max: u64,
}

impl Default for CopyOptions {
    fn default() -> CopyOptions {
        CopyOptions {
            direct: true,
            rejected_max: 0,
        }
    }
}

impl CopyOptions {
    pub fn tolerating(rejected_max: u64) -> CopyOptions {
        CopyOptions {
            rejected_max,
            ..CopyOptions::default()
        }
    }
}

/// Outcome of a COPY.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyResult {
    pub loaded: u64,
    pub rejected: u64,
    /// Up to [`REJECT_SAMPLE`] `(line number, reason)` pairs.
    pub rejected_sample: Vec<(u64, String)>,
}

/// How many rejected rows are sampled into the result.
pub const REJECT_SAMPLE: usize = 10;

pub(crate) fn run_copy(
    cluster: &Cluster,
    txn: &mut TxnHandle,
    node: usize,
    task: Option<u64>,
    table: &str,
    source: CopySource,
    options: &CopyOptions,
) -> DbResult<CopyResult> {
    let def = cluster.table_def(table)?;
    cluster
        .faults()
        .apply_latency(crate::fault::LatencySite::Copy, node);
    let copy_started = std::time::Instant::now();
    let (format, input_bytes) = match &source {
        CopySource::Csv { text, .. } => ("csv", text.len() as u64),
        CopySource::Avro(bytes) => ("avro", bytes.len() as u64),
        CopySource::Rows(rows) => (
            "rows",
            rows.iter().map(|r| r.wire_size() as u64).sum::<u64>(),
        ),
    };
    let mut good: Vec<Row> = Vec::new();
    let mut rejected = 0u64;
    let mut sample: Vec<(u64, String)> = Vec::new();
    let reject =
        |line: u64, reason: String, rejected: &mut u64, sample: &mut Vec<(u64, String)>| {
            *rejected += 1;
            if sample.len() < REJECT_SAMPLE {
                sample.push((line, reason));
            }
        };

    match source {
        CopySource::Csv { text, delimiter } => {
            let bytes = text.len() as u64;
            let mut line_no = 0u64;
            for line in text.lines() {
                if line.is_empty() {
                    continue;
                }
                line_no += 1;
                match csv::parse_row(line, &def.schema, delimiter) {
                    Ok(row) => match def.schema.validate_row(&row) {
                        Ok(()) => good.push(row),
                        Err(e) => reject(line_no, e.to_string(), &mut rejected, &mut sample),
                    },
                    Err(e) => reject(line_no, e.to_string(), &mut rejected, &mut sample),
                }
            }
            cluster
                .recorder()
                .work(task, NodeRef::Db(node), "copy_parse_csv", line_no, bytes);
        }
        CopySource::Avro(bytes) => {
            let size = bytes.len() as u64;
            let reader = avrolite::Reader::new(&bytes).map_err(DbError::Data)?;
            if !reader.schema().to_schema().compatible_with(&def.schema) {
                return Err(DbError::Data(common::Error::SchemaMismatch(format!(
                    "avro schema {} does not match table {}",
                    reader.schema().to_json(),
                    def.name
                ))));
            }
            let mut line_no = 0u64;
            for row in reader {
                line_no += 1;
                match def.schema.validate_row(&row) {
                    Ok(()) => good.push(row),
                    Err(e) => reject(line_no, e.to_string(), &mut rejected, &mut sample),
                }
            }
            cluster
                .recorder()
                .work(task, NodeRef::Db(node), "copy_parse_avro", line_no, size);
        }
        CopySource::Rows(rows) => {
            for (i, row) in rows.into_iter().enumerate() {
                match def.schema.validate_row(&row) {
                    Ok(()) => good.push(row),
                    Err(e) => reject(i as u64 + 1, e.to_string(), &mut rejected, &mut sample),
                }
            }
        }
    }

    if rejected > options.rejected_max {
        obs::global().add(obs::names::DB_COPY_REJECTS, rejected);
        return Err(DbError::CopyRejected {
            rejected,
            tolerance: options.rejected_max,
        });
    }

    if cluster
        .faults()
        .should_fire(crate::fault::FaultSite::MidCopy, node)
    {
        // The stream died after parsing but before any row was applied;
        // the enclosing transaction aborts and nothing is visible.
        return Err(DbError::ConnectionLost { node });
    }

    let loaded = cluster.insert_rows(txn, node, task, table, good, options.direct)?;
    obs::global().emit(obs::EventKind::CopyLoad, |e| {
        e.node = Some(node as u64);
        e.task = task;
        e.rows = loaded;
        e.bytes = input_bytes;
        e.dur_us = copy_started.elapsed().as_micros() as u64;
        e.detail = format!(
            "{format} into {table}, {rejected} rejected{}",
            if options.direct { ", direct" } else { "" }
        );
    });
    obs::global().add("db.copy_rows", loaded);
    obs::global().add("db.copy_bytes", input_bytes);
    obs::global().add(obs::names::DB_COPY_REJECTS, rejected);
    obs::global().record_time("db.copy_us", copy_started.elapsed());
    Ok(CopyResult {
        loaded,
        rejected,
        rejected_sample: sample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Segmentation, TableDef};
    use crate::cluster::{Cluster, ClusterConfig};
    use common::{DataType, Schema};

    fn setup() -> std::sync::Arc<Cluster> {
        let c = Cluster::new(ClusterConfig::default());
        c.create_table(
            TableDef::new(
                "t",
                Schema::new(vec![
                    common::Field::not_null("id", DataType::Int64),
                    common::Field::new("x", DataType::Float64),
                ]),
                Segmentation::ByHash(vec!["id".into()]),
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn csv_copy_loads_and_lands_in_ros_when_direct() {
        let c = setup();
        let mut s = c.connect(0).unwrap();
        let result = s
            .copy(
                "t",
                CopySource::Csv {
                    text: "1,0.5\n2,1.5\n3,2.5\n".into(),
                    delimiter: ',',
                },
                CopyOptions::default(),
            )
            .unwrap();
        assert_eq!(result.loaded, 3);
        assert_eq!(result.rejected, 0);
        let stats = c.table_stats("t").unwrap();
        assert_eq!(stats.iter().map(|st| st.ros_rows).sum::<usize>(), 3);
        assert_eq!(stats.iter().map(|st| st.wos_rows).sum::<usize>(), 0);
    }

    #[test]
    fn rejected_rows_within_tolerance() {
        let c = setup();
        let mut s = c.connect(0).unwrap();
        // Line 2 has a bad integer; line 4 violates NOT NULL.
        let text = "1,0.5\nnope,1.0\n3,2.5\n,9.0\n";
        let result = s
            .copy(
                "t",
                CopySource::Csv {
                    text: text.into(),
                    delimiter: ',',
                },
                CopyOptions::tolerating(2),
            )
            .unwrap();
        assert_eq!(result.loaded, 2);
        assert_eq!(result.rejected, 2);
        assert_eq!(result.rejected_sample.len(), 2);
        assert_eq!(result.rejected_sample[0].0, 2);
        assert_eq!(result.rejected_sample[1].0, 4);
    }

    #[test]
    fn rejects_above_tolerance_abort_whole_load() {
        let c = setup();
        let mut s = c.connect(0).unwrap();
        let err = s
            .copy(
                "t",
                CopySource::Csv {
                    text: "bad,row\n1,1.0\n".into(),
                    delimiter: ',',
                },
                CopyOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::CopyRejected { rejected: 1, .. }));
        // Nothing committed.
        let stats = c.table_stats("t").unwrap();
        assert_eq!(
            stats
                .iter()
                .map(|st| st.ros_rows + st.wos_rows)
                .sum::<usize>(),
            0
        );
    }

    #[test]
    fn avro_copy_round_trip() {
        let c = setup();
        let schema = c.table_def("t").unwrap().schema;
        let avro_schema = avrolite::AvroSchema::from_schema("t", &schema);
        let mut w = avrolite::Writer::new(avro_schema, avrolite::Codec::Rle);
        for i in 0..100i64 {
            w.write_row(&common::row![i, i as f64 / 2.0]).unwrap();
        }
        let bytes = w.finish();
        let mut s = c.connect(1).unwrap();
        let result = s
            .copy("t", CopySource::Avro(bytes), CopyOptions::default())
            .unwrap();
        assert_eq!(result.loaded, 100);
        let q = s
            .query(&crate::query::QuerySpec::scan("t").count())
            .unwrap();
        assert_eq!(q.count, 100);
    }

    #[test]
    fn avro_schema_mismatch_rejected() {
        let c = setup();
        let wrong =
            avrolite::AvroSchema::new("w", vec![("only_one".into(), avrolite::AvroType::Long)]);
        let w = avrolite::Writer::new(wrong, avrolite::Codec::Null);
        let bytes = w.finish();
        let mut s = c.connect(0).unwrap();
        assert!(s
            .copy("t", CopySource::Avro(bytes), CopyOptions::default())
            .is_err());
    }
}
