//! The database's internal distributed file system.
//!
//! The paper stores deployed PMML models "in an internal distributed
//! file system (DFS) and hence ... accessible to the database query
//! engine and User-Defined Functions" (Sec. 3.3). This is that store: a
//! flat namespace of immutable blobs replicated cluster-wide (we keep
//! one logical copy; replication of catalog-scale metadata is not load-
//! bearing for the reproduction).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{DbError, DbResult};

/// A cluster-internal blob store.
#[derive(Debug, Default)]
pub struct Dfs {
    files: RwLock<BTreeMap<String, Arc<Vec<u8>>>>,
}

impl Dfs {
    pub fn new() -> Dfs {
        Dfs::default()
    }

    /// Write a file. Fails if the path exists unless `overwrite`.
    pub fn store(&self, path: &str, data: Vec<u8>, overwrite: bool) -> DbResult<()> {
        let mut files = self.files.write();
        if !overwrite && files.contains_key(path) {
            return Err(DbError::Dfs(format!("path already exists: {path}")));
        }
        files.insert(path.to_string(), Arc::new(data));
        Ok(())
    }

    pub fn read(&self, path: &str) -> DbResult<Arc<Vec<u8>>> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| DbError::Dfs(format!("no such path: {path}")))
    }

    pub fn delete(&self, path: &str) -> DbResult<()> {
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| DbError::Dfs(format!("no such path: {path}")))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    pub fn size(&self, path: &str) -> DbResult<usize> {
        self.read(path).map(|d| d.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_read_delete() {
        let dfs = Dfs::new();
        dfs.store("/models/m1.pmml", vec![1, 2, 3], false).unwrap();
        assert_eq!(*dfs.read("/models/m1.pmml").unwrap(), vec![1, 2, 3]);
        assert_eq!(dfs.size("/models/m1.pmml").unwrap(), 3);
        assert!(dfs.exists("/models/m1.pmml"));
        dfs.delete("/models/m1.pmml").unwrap();
        assert!(!dfs.exists("/models/m1.pmml"));
        assert!(dfs.read("/models/m1.pmml").is_err());
    }

    #[test]
    fn overwrite_guard() {
        let dfs = Dfs::new();
        dfs.store("/a", vec![1], false).unwrap();
        assert!(dfs.store("/a", vec![2], false).is_err());
        dfs.store("/a", vec![2], true).unwrap();
        assert_eq!(*dfs.read("/a").unwrap(), vec![2]);
    }

    #[test]
    fn list_by_prefix_sorted() {
        let dfs = Dfs::new();
        dfs.store("/models/b", vec![], false).unwrap();
        dfs.store("/models/a", vec![], false).unwrap();
        dfs.store("/other/c", vec![], false).unwrap();
        assert_eq!(dfs.list("/models/"), vec!["/models/a", "/models/b"]);
    }
}
