//! Database error type.

use std::fmt;

use common::error::Error as CommonError;

pub type DbResult<T> = std::result::Result<T, DbError>;

/// Errors surfaced by the database engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Catalog: object not found.
    UnknownTable(String),
    /// Catalog: object already exists.
    TableExists(String),
    /// Node index out of range or node is down.
    NodeUnavailable(usize),
    /// A new connection attempt was refused at the TCP level (injected
    /// fault; the node itself may be healthy).
    ConnectionRefused { node: usize },
    /// An established session's connection dropped: the node was killed
    /// under the session, or the link died mid-operation. Distinct from
    /// [`DbError::NodeUnavailable`] so callers can tell "this node is
    /// down" from "my connection to it is gone".
    ConnectionLost { node: usize },
    /// Per-node session limit (MAX_CLIENT_SESSIONS) reached.
    TooManySessions { node: usize, limit: usize },
    /// Lock wait timed out (possible deadlock); transaction aborted.
    LockTimeout { table: String },
    /// Statement requires an active transaction or is invalid in one.
    TxnState(String),
    /// Data/type problems from the shared layer.
    Data(CommonError),
    /// SQL syntax error.
    Syntax(String),
    /// Semantic errors during planning/execution.
    Execution(String),
    /// COPY exceeded the rejected-rows tolerance.
    CopyRejected { rejected: u64, tolerance: u64 },
    /// UDF not found or misused.
    Udf(String),
    /// DFS path errors.
    Dfs(String),
    /// Query referenced an epoch that does not exist yet.
    BadEpoch { requested: u64, current: u64 },
    /// Not enough live nodes to serve a segment (exceeded k-safety).
    DataUnavailable { segment: usize },
    /// Admission control shed the statement: the resource pool's queue
    /// was full or the statement waited past the pool's queue timeout.
    /// Transient by design — back off and retry.
    Overloaded { pool: String },
    /// The query was planned against a segment-map version that is not
    /// the one authoritative at its snapshot epoch — the cluster
    /// rebalanced under the client. Transient: refresh the map and
    /// re-plan.
    StaleSegmentMap { requested: u64, current: u64 },
    /// A rebalance migration was interrupted (injected crash or node
    /// loss) and left pending. Transient: `run_rebalance` resumes the
    /// plan idempotently.
    RebalanceInterrupted { node: usize },
}

impl DbError {
    /// Whether retrying the same statement can plausibly succeed.
    ///
    /// The match is exhaustive on purpose — `fabriclint` checks that
    /// every variant is classified here, so adding a variant without
    /// deciding its retry semantics fails both the build and the lint.
    pub fn is_transient(&self) -> bool {
        match self {
            // Connectivity and capacity: the cluster can heal or drain.
            DbError::NodeUnavailable(_)
            | DbError::ConnectionRefused { .. }
            | DbError::ConnectionLost { .. }
            | DbError::TooManySessions { .. }
            | DbError::LockTimeout { .. }
            | DbError::DataUnavailable { .. }
            | DbError::Overloaded { .. }
            | DbError::StaleSegmentMap { .. }
            | DbError::RebalanceInterrupted { .. } => true,
            // Semantic/schema/data errors: retrying replays the failure.
            DbError::UnknownTable(_)
            | DbError::TableExists(_)
            | DbError::TxnState(_)
            | DbError::Data(_)
            | DbError::Syntax(_)
            | DbError::Execution(_)
            | DbError::CopyRejected { .. }
            | DbError::Udf(_)
            | DbError::Dfs(_)
            | DbError::BadEpoch { .. } => false,
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table or view: {t}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NodeUnavailable(n) => write!(f, "node {n} unavailable"),
            DbError::ConnectionRefused { node } => {
                write!(f, "connection refused by node {node}")
            }
            DbError::ConnectionLost { node } => {
                write!(f, "connection to node {node} lost")
            }
            DbError::TooManySessions { node, limit } => {
                write!(
                    f,
                    "node {node} refused session: MAX_CLIENT_SESSIONS={limit}"
                )
            }
            DbError::LockTimeout { table } => {
                write!(f, "lock wait timeout on table {table}; transaction aborted")
            }
            DbError::TxnState(msg) => write!(f, "transaction state error: {msg}"),
            DbError::Data(e) => write!(f, "data error: {e}"),
            DbError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            DbError::Execution(msg) => write!(f, "execution error: {msg}"),
            DbError::CopyRejected {
                rejected,
                tolerance,
            } => write!(
                f,
                "COPY aborted: {rejected} rows rejected exceeds tolerance {tolerance}"
            ),
            DbError::Udf(msg) => write!(f, "UDF error: {msg}"),
            DbError::Dfs(msg) => write!(f, "DFS error: {msg}"),
            DbError::BadEpoch { requested, current } => {
                write!(
                    f,
                    "epoch {requested} not available (current epoch {current})"
                )
            }
            DbError::DataUnavailable { segment } => {
                write!(
                    f,
                    "segment {segment} unavailable: too many nodes down for k-safety"
                )
            }
            DbError::Overloaded { pool } => {
                write!(f, "statement shed by overloaded resource pool {pool}")
            }
            DbError::StaleSegmentMap { requested, current } => {
                write!(
                    f,
                    "segment map version {requested} is stale (current {current}); refresh and re-plan"
                )
            }
            DbError::RebalanceInterrupted { node } => {
                write!(
                    f,
                    "rebalance migration to node {node} interrupted; plan left pending"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<CommonError> for DbError {
    fn from(e: CommonError) -> DbError {
        DbError::Data(e)
    }
}
