//! Database-side fault injection: a seeded, deterministic plan of
//! connection refusals, mid-COPY crashes, and crash-after-commit acks,
//! threaded through the session/COPY/commit paths.
//!
//! The compute engine already has a scripted [`sparklet`
//! `FailureInjector`]; this is the database-side analog. Two layers:
//!
//! * **Scripted one-shots** ([`FaultInjector::inject_once`]) — "refuse
//!   the next connect", "drop the next COPY mid-stream". Fully
//!   deterministic; the unit-test surface.
//! * **A seeded plan** ([`FaultPlan`], armed via
//!   [`FaultInjector::arm`]) — per-touchpoint firing probabilities
//!   drawn from one seeded PRNG, with a total *budget* of faults the
//!   plan may fire before going quiet. The budget is what makes chaos
//!   schedules survivable: a retry policy with more attempts than the
//!   plan has budget always wins eventually.
//!
//! Every fired fault is recorded as a [`obs::EventKind::FaultInject`]
//! event and a `fault.*` counter, so `dc_events` / `dc_counters` show
//! exactly what the chaos layer did to a run.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A database touchpoint where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `Cluster::connect` fails with `DbError::ConnectionRefused`.
    Connect,
    /// COPY dies after shipping/parsing the data but before it is
    /// applied (`DbError::ConnectionLost`); the transaction aborts.
    MidCopy,
    /// The commit lands in the database but the acknowledgement is lost
    /// (`DbError::ConnectionLost`) — the Sec. 2.2.2 hazard: the client
    /// cannot tell a successful commit from a failed one.
    PostCommit,
}

impl FaultSite {
    fn label(self) -> &'static str {
        match self {
            FaultSite::Connect => "connect_refused",
            FaultSite::MidCopy => "mid_copy_crash",
            FaultSite::PostCommit => "post_commit_crash",
        }
    }

    fn counter(self) -> &'static str {
        match self {
            FaultSite::Connect => "fault.connect_refused",
            FaultSite::MidCopy => "fault.mid_copy",
            FaultSite::PostCommit => "fault.post_commit",
        }
    }
}

/// A seeded, deterministic schedule of injectable faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's PRNG; the same seed over the same operation
    /// sequence fires the same faults.
    pub seed: u64,
    /// Probability that a `connect` is refused.
    pub refuse_connect: f64,
    /// Probability that a COPY crashes mid-stream.
    pub mid_copy_crash: f64,
    /// Probability that a commit's acknowledgement is lost.
    pub post_commit_crash: f64,
    /// Total faults the plan may fire before going quiet. Bounds the
    /// chaos so retries can always make progress.
    pub budget: u64,
}

impl FaultPlan {
    /// A quiet plan (all probabilities zero) with the given seed;
    /// combine with the `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            refuse_connect: 0.0,
            mid_copy_crash: 0.0,
            post_commit_crash: 0.0,
            budget: u64::MAX,
        }
    }

    pub fn with_refuse_connect(mut self, p: f64) -> FaultPlan {
        self.refuse_connect = p;
        self
    }

    pub fn with_mid_copy_crash(mut self, p: f64) -> FaultPlan {
        self.mid_copy_crash = p;
        self
    }

    pub fn with_post_commit_crash(mut self, p: f64) -> FaultPlan {
        self.post_commit_crash = p;
        self
    }

    pub fn with_budget(mut self, budget: u64) -> FaultPlan {
        self.budget = budget;
        self
    }

    fn probability(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Connect => self.refuse_connect,
            FaultSite::MidCopy => self.mid_copy_crash,
            FaultSite::PostCommit => self.post_commit_crash,
        }
    }
}

struct ActivePlan {
    plan: FaultPlan,
    rng: StdRng,
    fired: u64,
}

/// The cluster's fault-injection switchboard. Disarmed and empty by
/// default, so production paths pay one relaxed lock per touchpoint
/// only when something is armed (a single `Mutex<Option<..>>` check).
#[derive(Default)]
pub struct FaultInjector {
    plan: Mutex<Option<ActivePlan>>,
    scripted: Mutex<Vec<FaultSite>>,
    total_fired: std::sync::atomic::AtomicU64,
}

impl FaultInjector {
    /// Arm a seeded plan (replacing any previous one).
    pub fn arm(&self, plan: FaultPlan) {
        let rng = StdRng::seed_from_u64(plan.seed);
        *self.plan.lock() = Some(ActivePlan {
            plan,
            rng,
            fired: 0,
        });
    }

    /// Disarm the plan and drop pending scripted faults. Returns how
    /// many faults the armed plan fired.
    pub fn disarm(&self) -> u64 {
        self.scripted.lock().clear();
        self.plan.lock().take().map(|a| a.fired).unwrap_or(0)
    }

    /// Script a one-shot fault: the next operation hitting `site` fails.
    pub fn inject_once(&self, site: FaultSite) {
        self.scripted.lock().push(site);
    }

    /// Total faults fired since the injector was created.
    pub fn fired(&self) -> u64 {
        self.total_fired.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Consulted by the engine at each touchpoint.
    pub(crate) fn should_fire(&self, site: FaultSite, node: usize) -> bool {
        let scripted = {
            let mut scripted = self.scripted.lock();
            match scripted.iter().position(|&s| s == site) {
                Some(i) => {
                    scripted.remove(i);
                    true
                }
                None => false,
            }
        };
        let fire = scripted || {
            let mut guard = self.plan.lock();
            match guard.as_mut() {
                Some(active) if active.fired < active.plan.budget => {
                    let p = active.plan.probability(site);
                    let fire = p > 0.0 && active.rng.random_bool(p);
                    if fire {
                        active.fired += 1;
                    }
                    fire
                }
                _ => false,
            }
        };
        if fire {
            self.total_fired
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            obs::global().emit(obs::EventKind::FaultInject, |e| {
                e.node = Some(node as u64);
                e.detail = format!("{} at node {node}", site.label());
            });
            obs::global().incr(site.counter());
            obs::global().incr("fault.injected");
        }
        fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_once_in_order() {
        let inj = FaultInjector::default();
        inj.inject_once(FaultSite::Connect);
        inj.inject_once(FaultSite::MidCopy);
        assert!(inj.should_fire(FaultSite::Connect, 0));
        assert!(!inj.should_fire(FaultSite::Connect, 0));
        assert!(inj.should_fire(FaultSite::MidCopy, 1));
        assert!(!inj.should_fire(FaultSite::MidCopy, 1));
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn plan_respects_budget_and_seed() {
        let inj = FaultInjector::default();
        inj.arm(FaultPlan::seeded(7).with_refuse_connect(1.0).with_budget(3));
        let fired = (0..100)
            .filter(|_| inj.should_fire(FaultSite::Connect, 0))
            .count();
        assert_eq!(fired, 3, "budget caps the plan");
        assert_eq!(inj.disarm(), 3);
        // Same seed, same outcomes.
        let a = FaultInjector::default();
        let b = FaultInjector::default();
        for i in [&a, &b] {
            i.arm(FaultPlan::seeded(42).with_mid_copy_crash(0.5));
        }
        let fa: Vec<bool> = (0..50)
            .map(|_| a.should_fire(FaultSite::MidCopy, 0))
            .collect();
        let fb: Vec<bool> = (0..50)
            .map(|_| b.should_fire(FaultSite::MidCopy, 0))
            .collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn disarmed_injector_never_fires() {
        let inj = FaultInjector::default();
        assert!(!inj.should_fire(FaultSite::Connect, 0));
        assert!(!inj.should_fire(FaultSite::PostCommit, 0));
        inj.arm(FaultPlan::seeded(1).with_post_commit_crash(1.0));
        assert!(inj.should_fire(FaultSite::PostCommit, 0));
        inj.disarm();
        assert!(!inj.should_fire(FaultSite::PostCommit, 0));
    }
}
