//! Database-side fault injection: a seeded, deterministic plan of
//! connection refusals, mid-COPY crashes, crash-after-commit acks, and
//! *latency* faults (slow nodes and one-shot stalls), threaded through
//! the session/COPY/commit/scan paths.
//!
//! The compute engine already has a scripted [`sparklet`
//! `FailureInjector`]; this is the database-side analog. Three layers:
//!
//! * **Scripted one-shots** ([`FaultInjector::inject_once`],
//!   [`FaultInjector::stall_once`]) — "refuse the next connect", "drop
//!   the next COPY mid-stream", "stall the next scan on node 2". Fully
//!   deterministic; the unit-test surface.
//! * **A seeded plan** ([`FaultPlan`], armed via
//!   [`FaultInjector::arm`]) — per-touchpoint firing probabilities
//!   drawn from one seeded PRNG, with a total *budget* of faults the
//!   plan may fire before going quiet. The budget is what makes chaos
//!   schedules survivable: a retry policy with more attempts than the
//!   plan has budget always wins eventually. Stall probabilities share
//!   the same RNG and budget as the fail-stop probabilities.
//! * **Grey failures** ([`FaultInjector::set_latency_profile`],
//!   [`FaultInjector::slow_node`]) — a per-site nominal service time
//!   multiplied by a per-node slowdown factor. A factor of 1.0 models
//!   the site's clean-run cost; a factor of 50.0 makes the node alive
//!   but 50× slower, the grey failure the connector's health tracker
//!   and hedged reads must route around.
//!
//! Every fired fault is recorded as a [`obs::EventKind::FaultInject`]
//! event and a `fault.*` counter, so `dc_events` / `dc_counters` show
//! exactly what the chaos layer did to a run. Base-profile delays with
//! factor 1.0 are *not* counted as faults: they are the simulated
//! clean-run service time, not an injected anomaly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A database touchpoint where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `Cluster::connect` fails with `DbError::ConnectionRefused`.
    Connect,
    /// COPY dies after shipping/parsing the data but before it is
    /// applied (`DbError::ConnectionLost`); the transaction aborts.
    MidCopy,
    /// The commit lands in the database but the acknowledgement is lost
    /// (`DbError::ConnectionLost`) — the Sec. 2.2.2 hazard: the client
    /// cannot tell a successful commit from a failed one.
    PostCommit,
    /// The tuple mover dies at the start of a moveout/mergeout pass over
    /// one store. Mover passes mutate a store atomically under its write
    /// lock, so a crash here means the pass simply never ran — visible
    /// data must be byte-identical with or without the crash.
    Moveout,
    /// A rebalance migration dies after copying a range to its target
    /// but before the plan records the copy as durable
    /// (`DbError::RebalanceInterrupted`). The plan stays pending;
    /// `run_rebalance` resumes idempotently, re-copying any range whose
    /// target restarted since the copy.
    Rebalance,
}

impl FaultSite {
    fn label(self) -> &'static str {
        match self {
            FaultSite::Connect => "connect_refused",
            FaultSite::MidCopy => "mid_copy_crash",
            FaultSite::PostCommit => "post_commit_crash",
            FaultSite::Moveout => "moveout_crash",
            FaultSite::Rebalance => "rebalance_crash",
        }
    }

    fn counter(self) -> &'static str {
        match self {
            FaultSite::Connect => "fault.connect_refused",
            FaultSite::MidCopy => "fault.mid_copy",
            FaultSite::PostCommit => "fault.post_commit",
            FaultSite::Moveout => "fault.moveout",
            FaultSite::Rebalance => "fault.rebalance",
        }
    }
}

/// A path where injected latency (a slowdown factor or a stall)
/// applies. Distinct from [`FaultSite`]: these operations *succeed*,
/// just slowly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencySite {
    /// `Cluster::connect`.
    Connect,
    /// COPY statement execution (per COPY, before rows are applied).
    Copy,
    /// Table scans issued through `Session::query`.
    Scan,
}

impl LatencySite {
    fn label(self) -> &'static str {
        match self {
            LatencySite::Connect => "connect",
            LatencySite::Copy => "copy",
            LatencySite::Scan => "scan",
        }
    }

    fn counter(self) -> &'static str {
        match self {
            LatencySite::Connect => "fault.slow_connect",
            LatencySite::Copy => "fault.slow_copy",
            LatencySite::Scan => "fault.slow_scan",
        }
    }
}

/// Per-site nominal service times. Each node's effective latency at a
/// site is `base × slowdown_factor(node)`; the default profile is all
/// zeros, so slowdown factors alone do nothing until a profile is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyProfile {
    pub connect: Duration,
    pub copy: Duration,
    pub scan: Duration,
}

impl LatencyProfile {
    /// The same nominal service time at every site.
    pub fn uniform(d: Duration) -> LatencyProfile {
        LatencyProfile {
            connect: d,
            copy: d,
            scan: d,
        }
    }

    fn base(&self, site: LatencySite) -> Duration {
        match site {
            LatencySite::Connect => self.connect,
            LatencySite::Copy => self.copy,
            LatencySite::Scan => self.scan,
        }
    }
}

/// A seeded, deterministic schedule of injectable faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's PRNG; the same seed over the same operation
    /// sequence fires the same faults.
    pub seed: u64,
    /// Probability that a `connect` is refused.
    pub refuse_connect: f64,
    /// Probability that a COPY crashes mid-stream.
    pub mid_copy_crash: f64,
    /// Probability that a commit's acknowledgement is lost.
    pub post_commit_crash: f64,
    /// Probability that a tuple-mover pass over one store crashes
    /// before doing any work.
    pub moveout_crash: f64,
    /// Probability that a rebalance migration crashes after copying its
    /// range, leaving the plan pending.
    pub rebalance_crash: f64,
    /// Probability that a connect stalls for [`FaultPlan::stall`].
    pub stall_connect: f64,
    /// Probability that a COPY stalls for [`FaultPlan::stall`].
    pub stall_copy: f64,
    /// Probability that a scan stalls for [`FaultPlan::stall`].
    pub stall_scan: f64,
    /// How long a seeded stall lasts when it fires.
    pub stall: Duration,
    /// Total faults the plan may fire before going quiet. Bounds the
    /// chaos so retries can always make progress. Stalls draw from the
    /// same budget as fail-stop faults.
    pub budget: u64,
}

impl FaultPlan {
    /// A quiet plan (all probabilities zero) with the given seed;
    /// combine with the `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            refuse_connect: 0.0,
            mid_copy_crash: 0.0,
            post_commit_crash: 0.0,
            moveout_crash: 0.0,
            rebalance_crash: 0.0,
            stall_connect: 0.0,
            stall_copy: 0.0,
            stall_scan: 0.0,
            stall: Duration::from_millis(2),
            budget: u64::MAX,
        }
    }

    pub fn with_refuse_connect(mut self, p: f64) -> FaultPlan {
        self.refuse_connect = p;
        self
    }

    pub fn with_mid_copy_crash(mut self, p: f64) -> FaultPlan {
        self.mid_copy_crash = p;
        self
    }

    pub fn with_post_commit_crash(mut self, p: f64) -> FaultPlan {
        self.post_commit_crash = p;
        self
    }

    pub fn with_moveout_crash(mut self, p: f64) -> FaultPlan {
        self.moveout_crash = p;
        self
    }

    pub fn with_rebalance_crash(mut self, p: f64) -> FaultPlan {
        self.rebalance_crash = p;
        self
    }

    pub fn with_stall_connect(mut self, p: f64) -> FaultPlan {
        self.stall_connect = p;
        self
    }

    pub fn with_stall_copy(mut self, p: f64) -> FaultPlan {
        self.stall_copy = p;
        self
    }

    pub fn with_stall_scan(mut self, p: f64) -> FaultPlan {
        self.stall_scan = p;
        self
    }

    /// Duration of each seeded stall (default 2ms).
    pub fn with_stall(mut self, stall: Duration) -> FaultPlan {
        self.stall = stall;
        self
    }

    pub fn with_budget(mut self, budget: u64) -> FaultPlan {
        self.budget = budget;
        self
    }

    fn probability(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Connect => self.refuse_connect,
            FaultSite::MidCopy => self.mid_copy_crash,
            FaultSite::PostCommit => self.post_commit_crash,
            FaultSite::Moveout => self.moveout_crash,
            FaultSite::Rebalance => self.rebalance_crash,
        }
    }

    fn stall_probability(&self, site: LatencySite) -> f64 {
        match site {
            LatencySite::Connect => self.stall_connect,
            LatencySite::Copy => self.stall_copy,
            LatencySite::Scan => self.stall_scan,
        }
    }

    fn has_stalls(&self) -> bool {
        self.stall_connect > 0.0 || self.stall_copy > 0.0 || self.stall_scan > 0.0
    }
}

struct ActivePlan {
    plan: FaultPlan,
    rng: StdRng,
    fired: u64,
}

#[derive(Default)]
struct LatencyState {
    profile: LatencyProfile,
    factors: HashMap<usize, f64>,
    stalls: Vec<(LatencySite, usize, Duration)>,
}

impl LatencyState {
    fn is_quiet(&self) -> bool {
        self.profile == LatencyProfile::default() && self.stalls.is_empty()
    }
}

/// The cluster's fault-injection switchboard. Disarmed and empty by
/// default, so production paths pay one relaxed lock per touchpoint
/// only when something is armed (a single `Mutex<Option<..>>` check;
/// the latency path short-circuits on a relaxed atomic flag).
#[derive(Default)]
pub struct FaultInjector {
    plan: Mutex<Option<ActivePlan>>,
    scripted: Mutex<Vec<FaultSite>>,
    latency: Mutex<LatencyState>,
    /// Fast path: true iff `apply_latency` could possibly delay, i.e.
    /// a latency profile/stall is set or the armed plan has nonzero
    /// stall probabilities.
    may_delay: AtomicBool,
    total_fired: std::sync::atomic::AtomicU64,
}

impl FaultInjector {
    /// Arm a seeded plan (replacing any previous one).
    pub fn arm(&self, plan: FaultPlan) {
        let rng = StdRng::seed_from_u64(plan.seed);
        let has_stalls = plan.has_stalls();
        *self.plan.lock() = Some(ActivePlan {
            plan,
            rng,
            fired: 0,
        });
        if has_stalls {
            self.may_delay.store(true, Ordering::Relaxed);
        }
    }

    /// Disarm the plan, drop pending scripted faults, and clear all
    /// latency state (profile, slowdown factors, pending stalls).
    /// Returns how many faults the armed plan fired.
    pub fn disarm(&self) -> u64 {
        self.scripted.lock().clear();
        *self.latency.lock() = LatencyState::default();
        self.may_delay.store(false, Ordering::Relaxed);
        self.plan.lock().take().map(|a| a.fired).unwrap_or(0)
    }

    /// Script a one-shot fault: the next operation hitting `site` fails.
    pub fn inject_once(&self, site: FaultSite) {
        self.scripted.lock().push(site);
    }

    /// Set the nominal per-site service times simulated at every node.
    /// Factor-1.0 delays from the profile model the clean-run cost and
    /// are not counted as injected faults.
    pub fn set_latency_profile(&self, profile: LatencyProfile) {
        let mut st = self.latency.lock();
        st.profile = profile;
        let quiet = st.is_quiet();
        drop(st);
        if !quiet {
            self.may_delay.store(true, Ordering::Relaxed);
        }
    }

    /// Make `node` grey: every latency site there takes `factor ×` the
    /// profile's nominal time. Requires a profile to have any effect.
    pub fn slow_node(&self, node: usize, factor: f64) {
        self.latency.lock().factors.insert(node, factor.max(0.0));
    }

    /// Restore `node` to the nominal (factor 1.0) service time.
    pub fn clear_slow_node(&self, node: usize) {
        self.latency.lock().factors.remove(&node);
    }

    /// Script a one-shot stall: the next operation hitting `site` on
    /// `node` sleeps an extra `delay` (on top of any profile latency).
    pub fn stall_once(&self, site: LatencySite, node: usize, delay: Duration) {
        let mut st = self.latency.lock();
        st.stalls.push((site, node, delay));
        drop(st);
        self.may_delay.store(true, Ordering::Relaxed);
    }

    /// Total faults fired since the injector was created.
    pub fn fired(&self) -> u64 {
        self.total_fired.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Consulted by the engine at each touchpoint.
    pub(crate) fn should_fire(&self, site: FaultSite, node: usize) -> bool {
        let scripted = {
            let mut scripted = self.scripted.lock();
            match scripted.iter().position(|&s| s == site) {
                Some(i) => {
                    scripted.remove(i);
                    true
                }
                None => false,
            }
        };
        let fire = scripted || {
            let mut guard = self.plan.lock();
            match guard.as_mut() {
                Some(active) if active.fired < active.plan.budget => {
                    let p = active.plan.probability(site);
                    let fire = p > 0.0 && active.rng.random_bool(p);
                    if fire {
                        active.fired += 1;
                    }
                    fire
                }
                _ => false,
            }
        };
        if fire {
            self.total_fired
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            obs::global().emit(obs::EventKind::FaultInject, |e| {
                e.node = Some(node as u64);
                e.detail = format!("{} at node {node}", site.label());
            });
            obs::global().incr(site.counter());
            obs::global().incr(obs::names::FAULT_INJECTED);
        }
        fire
    }

    /// Compute (without sleeping) the delay an operation at `site` on
    /// `node` should experience right now. Consumes one-shot stalls and
    /// seeded stall-plan budget. The second component of the return is
    /// true when the delay is an injected *fault* (slowdown factor > 1
    /// or a stall) rather than just the nominal profile time.
    fn delay_for(&self, site: LatencySite, node: usize) -> (Duration, bool) {
        let (mut delay, mut faulted) = {
            let mut st = self.latency.lock();
            let base = st.profile.base(site);
            let factor = st.factors.get(&node).copied().unwrap_or(1.0);
            let scaled = base.mul_f64(factor);
            let mut faulted = factor > 1.0 && scaled > base;
            let mut delay = scaled;
            if let Some(i) = st
                .stalls
                .iter()
                .position(|&(s, n, _)| s == site && n == node)
            {
                delay += st.stalls.remove(i).2;
                faulted = true;
            }
            (delay, faulted)
        };
        {
            let mut guard = self.plan.lock();
            if let Some(active) = guard.as_mut() {
                if active.fired < active.plan.budget {
                    let p = active.plan.stall_probability(site);
                    if p > 0.0 && active.rng.random_bool(p) {
                        active.fired += 1;
                        delay += active.plan.stall;
                        faulted = true;
                    }
                }
            }
        }
        (delay, faulted)
    }

    /// Consulted by the engine at each latency touchpoint: sleeps for
    /// whatever grey-failure delay is due at `site` on `node`. Injected
    /// slowdowns and stalls are recorded as faults; nominal profile
    /// time is not.
    pub(crate) fn apply_latency(&self, site: LatencySite, node: usize) {
        if !self.may_delay.load(Ordering::Relaxed) {
            return;
        }
        let (delay, faulted) = self.delay_for(site, node);
        if faulted {
            self.total_fired
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            obs::global().emit(obs::EventKind::FaultInject, |e| {
                e.node = Some(node as u64);
                e.detail = format!(
                    "slow {} at node {node} ({} us)",
                    site.label(),
                    delay.as_micros()
                );
            });
            obs::global().incr(site.counter());
            obs::global().incr(obs::names::FAULT_INJECTED);
            obs::global().record_time("fault.delay_us", delay);
        }
        if !delay.is_zero() {
            // Tell the lock-order witness a deliberate stall is about
            // to happen: sleeping while holding an instrumented lock
            // turns an injected grey failure into a real convoy, which
            // the witness reports as a `lockwitness.hazards` count.
            parking_lot::witness::note_sleep(obs::names::FAULT_DELAY);
            std::thread::sleep(delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_once_in_order() {
        let inj = FaultInjector::default();
        inj.inject_once(FaultSite::Connect);
        inj.inject_once(FaultSite::MidCopy);
        assert!(inj.should_fire(FaultSite::Connect, 0));
        assert!(!inj.should_fire(FaultSite::Connect, 0));
        assert!(inj.should_fire(FaultSite::MidCopy, 1));
        assert!(!inj.should_fire(FaultSite::MidCopy, 1));
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn plan_respects_budget_and_seed() {
        let inj = FaultInjector::default();
        inj.arm(FaultPlan::seeded(7).with_refuse_connect(1.0).with_budget(3));
        let fired = (0..100)
            .filter(|_| inj.should_fire(FaultSite::Connect, 0))
            .count();
        assert_eq!(fired, 3, "budget caps the plan");
        assert_eq!(inj.disarm(), 3);
        // Same seed, same outcomes.
        let a = FaultInjector::default();
        let b = FaultInjector::default();
        for i in [&a, &b] {
            i.arm(FaultPlan::seeded(42).with_mid_copy_crash(0.5));
        }
        let fa: Vec<bool> = (0..50)
            .map(|_| a.should_fire(FaultSite::MidCopy, 0))
            .collect();
        let fb: Vec<bool> = (0..50)
            .map(|_| b.should_fire(FaultSite::MidCopy, 0))
            .collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn disarmed_injector_never_fires() {
        let inj = FaultInjector::default();
        assert!(!inj.should_fire(FaultSite::Connect, 0));
        assert!(!inj.should_fire(FaultSite::PostCommit, 0));
        inj.arm(FaultPlan::seeded(1).with_post_commit_crash(1.0));
        assert!(inj.should_fire(FaultSite::PostCommit, 0));
        inj.disarm();
        assert!(!inj.should_fire(FaultSite::PostCommit, 0));
    }

    #[test]
    fn slow_node_scales_profile_and_counts_as_fault() {
        let inj = FaultInjector::default();
        // No profile, no delay — even with a factor set.
        inj.slow_node(2, 50.0);
        let (d, f) = inj.delay_for(LatencySite::Scan, 2);
        assert_eq!(d, Duration::ZERO);
        assert!(!f);
        inj.set_latency_profile(LatencyProfile::uniform(Duration::from_micros(100)));
        let (d, f) = inj.delay_for(LatencySite::Scan, 2);
        assert_eq!(d, Duration::from_millis(5));
        assert!(f, "slowdown factor > 1 is an injected fault");
        // Other nodes run at the nominal time, not counted as faults.
        let (d, f) = inj.delay_for(LatencySite::Connect, 0);
        assert_eq!(d, Duration::from_micros(100));
        assert!(!f);
        inj.clear_slow_node(2);
        let (d, f) = inj.delay_for(LatencySite::Scan, 2);
        assert_eq!(d, Duration::from_micros(100));
        assert!(!f);
    }

    #[test]
    fn stall_once_fires_once_on_matching_site_and_node() {
        let inj = FaultInjector::default();
        inj.stall_once(LatencySite::Copy, 1, Duration::from_millis(3));
        // Wrong node / site: untouched.
        assert_eq!(inj.delay_for(LatencySite::Copy, 0).0, Duration::ZERO);
        assert_eq!(inj.delay_for(LatencySite::Scan, 1).0, Duration::ZERO);
        let (d, f) = inj.delay_for(LatencySite::Copy, 1);
        assert_eq!(d, Duration::from_millis(3));
        assert!(f);
        // Consumed.
        assert_eq!(inj.delay_for(LatencySite::Copy, 1).0, Duration::ZERO);
    }

    #[test]
    fn seeded_stalls_share_the_plan_budget() {
        let inj = FaultInjector::default();
        inj.arm(
            FaultPlan::seeded(9)
                .with_stall_scan(1.0)
                .with_stall(Duration::from_millis(1))
                .with_budget(2),
        );
        let stalled = (0..50)
            .filter(|_| inj.delay_for(LatencySite::Scan, 0).1)
            .count();
        assert_eq!(stalled, 2, "stalls draw from the shared budget");
        assert_eq!(inj.disarm(), 2);
    }

    #[test]
    fn disarm_clears_latency_state() {
        let inj = FaultInjector::default();
        inj.set_latency_profile(LatencyProfile::uniform(Duration::from_millis(1)));
        inj.slow_node(0, 10.0);
        inj.stall_once(LatencySite::Connect, 0, Duration::from_millis(1));
        inj.disarm();
        assert!(!inj.may_delay.load(Ordering::Relaxed));
        assert_eq!(inj.delay_for(LatencySite::Connect, 0).0, Duration::ZERO);
    }
}
