//! An MPP column-store database in the mold of the paper's enterprise
//! analytic engine (Sec. 2.1.1).
//!
//! The database is a multi-node cluster running in one process. It
//! provides every feature the connector's correctness and performance
//! story depends on:
//!
//! * **Segmentation** — tables are hash-segmented across nodes on a
//!   64-bit hash ring; the segment boundaries and node placement are
//!   queryable from the system catalog, which is what lets the connector
//!   formulate node-local range queries (Sec. 3.1.2). Unsegmented tables
//!   are replicated on every node.
//! * **Epochs** — every commit advances a global epoch; any query can
//!   read *as of* an epoch, giving the connector its consistent
//!   cross-task snapshot (Sec. 3.1.2).
//! * **ACID transactions** — strict table-level two-phase locking for
//!   writers with pending-until-commit visibility, so snapshot readers
//!   never block and the S2V protocol's conditional updates are
//!   serializable (Sec. 3.2.1).
//! * **ROS/WOS storage** — committed rows land in a row-oriented write
//!   buffer (WOS) and are moved out by a tuple mover into read-optimized
//!   encoded column containers (ROS) with RLE/dictionary/plain encodings.
//! * **k-safety** — segments are replicated to `k` buddy nodes and scans
//!   fail over when a node is down.
//! * **COPY** — a bulk-load utility accepting CSV and Avro sources with
//!   a rejected-rows tolerance, the substrate for both S2V and the
//!   native-COPY baseline (Table 4).
//! * **SQL** — a lexer/parser/executor for the DDL and DML the paper's
//!   examples use, including scalar UDx invocation with
//!   `USING PARAMETERS`, joins, and grouped aggregates (so that views
//!   can push joins/aggregations below the connector, Sec. 3.1.1).
//! * **An internal DFS** — blob storage for deployed PMML models with a
//!   metadata table, used by the MD component (Sec. 3.3).

pub mod catalog;
pub mod cluster;
pub mod copy;
pub mod dfs;
pub mod error;
pub mod fault;
pub mod query;
pub mod rebalance;
pub mod resource;
pub mod segmentation;
pub mod session;
pub mod sql;
pub mod storage;
pub mod system;
pub mod txn;
pub mod udf;

pub use catalog::{Catalog, Segmentation, TableDef};
pub use cluster::{Cluster, ClusterConfig};
pub use copy::{CopyOptions, CopyResult, CopySource};
pub use error::{DbError, DbResult};
pub use fault::{FaultInjector, FaultPlan, FaultSite, LatencyProfile, LatencySite};
pub use query::{estimate_scan_rows, QueryResult, QuerySpec};
pub use rebalance::{RebalanceOp, RebalanceReport};
pub use segmentation::{HashRange, Segment, SegmentMap, SegmentMove};
pub use session::Session;
pub use storage::{ColumnBatch, ColumnVec, MergeOutcome, MoverOp, MoverPassReport};
pub use udf::ScalarUdf;
