//! Programmatic scan execution: the engine's physical access path.
//!
//! A [`QuerySpec`] is the lowered form of a single-table read. It is
//! what the SQL planner produces for simple selects, and — more
//! importantly — what database clients (the connector, the JDBC-style
//! baseline) submit directly. It expresses everything the paper's V2S
//! needs to push down: projection, filter, count, an epoch pin, and a
//! hash range (or a synthetic row range for unsegmented tables and
//! views).

use std::sync::atomic::{AtomicUsize, Ordering};

use common::agg::{AggFunc, AggRequest, GroupedAccs};
use common::{DataType, Expr, Row, Schema};
use netsim::record::{NetClass, NodeRef};
use parking_lot::Mutex;

use crate::catalog::TableDef;
use crate::cluster::Cluster;
use crate::error::{DbError, DbResult};
use crate::segmentation::HashRange;
use crate::storage::{BatchScan, ColumnBatch};

/// A single-table read request.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub table: String,
    /// Column names to return; `None` = all columns.
    pub projection: Option<Vec<String>>,
    /// Filter over the table's columns (pushed down: evaluated on the
    /// serving nodes before any data moves).
    pub predicate: Option<Expr>,
    /// Restrict to rows whose segmentation hash falls in the range.
    /// Only valid for segmented tables.
    pub hash_range: Option<HashRange>,
    /// Restrict to a window `[start, end)` of the stable row order.
    /// Only valid for unsegmented tables and views (the connector's
    /// "synthetic hash ranges", Sec. 3.1.1).
    pub row_range: Option<(u64, u64)>,
    /// Epoch to read as of; `None` = the last committed epoch.
    pub as_of_epoch: Option<u64>,
    /// Segment-map version the client planned this read against, if it
    /// planned against one at all (the V2S piece path does). The scan
    /// is rejected with [`DbError::StaleSegmentMap`] when it differs
    /// from the version authoritative at the read's snapshot epoch —
    /// the signal that the cluster rebalanced under the client and the
    /// plan's hash ranges may no longer mean what it thinks.
    pub map_version: Option<u64>,
    /// Return only the row count (the `.count()` pushdown).
    pub count_only: bool,
    pub limit: Option<u64>,
    /// Aggregate spec (the `.agg()` pushdown): evaluated node-side so
    /// only group keys and accumulator states cross the wire.
    pub aggregate: Option<AggRequest>,
    /// With `aggregate`: return per-store partial accumulator rows
    /// ([`AggRequest::partial_schema`]) instead of finalized values, so
    /// a driver can merge partials from many pieces exactly once.
    pub aggregate_partial: bool,
    /// Disable zone-map skipping and conjunct reordering (ablation and
    /// differential-testing hook; results must be identical).
    pub no_skip: bool,
}

impl QuerySpec {
    pub fn scan(table: impl Into<String>) -> QuerySpec {
        QuerySpec {
            table: table.into(),
            projection: None,
            predicate: None,
            hash_range: None,
            row_range: None,
            as_of_epoch: None,
            map_version: None,
            count_only: false,
            limit: None,
            aggregate: None,
            aggregate_partial: false,
            no_skip: false,
        }
    }

    pub fn project(mut self, columns: &[&str]) -> QuerySpec {
        self.projection = Some(columns.iter().map(|c| c.to_string()).collect());
        self
    }

    pub fn filter(mut self, predicate: Expr) -> QuerySpec {
        self.predicate = Some(predicate);
        self
    }

    pub fn with_hash_range(mut self, range: HashRange) -> QuerySpec {
        self.hash_range = Some(range);
        self
    }

    pub fn with_row_range(mut self, start: u64, end: u64) -> QuerySpec {
        self.row_range = Some((start, end));
        self
    }

    pub fn at_epoch(mut self, epoch: u64) -> QuerySpec {
        self.as_of_epoch = Some(epoch);
        self
    }

    /// Assert the segment-map version this read was planned against.
    pub fn expect_map_version(mut self, version: u64) -> QuerySpec {
        self.map_version = Some(version);
        self
    }

    pub fn count(mut self) -> QuerySpec {
        self.count_only = true;
        self
    }

    pub fn with_limit(mut self, limit: u64) -> QuerySpec {
        self.limit = Some(limit);
        self
    }

    pub fn aggregate(mut self, request: AggRequest) -> QuerySpec {
        self.aggregate = Some(request);
        self
    }

    /// Return partial accumulator rows instead of finalized aggregates.
    pub fn partial_aggregates(mut self) -> QuerySpec {
        self.aggregate_partial = true;
        self
    }

    /// Disable zone-map skipping and conjunct reordering.
    pub fn without_skipping(mut self) -> QuerySpec {
        self.no_skip = true;
        self
    }
}

/// The result of a read.
///
/// Table scans carry their data in exactly one of two forms: the
/// columnar `batch` (requested through [`crate::Session::query_batched`]
/// — the connector's zero-row-materialization path) or the
/// materialized `rows` compatibility view (everything else). The
/// accessors below work over either form.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
    /// Row count: `num_rows()` for materializing reads, the count for
    /// `count_only` reads.
    pub count: u64,
    /// The epoch the read was served at.
    pub epoch: u64,
    /// Columnar form of the result, populated instead of `rows` for
    /// batched reads. `None` for row-materialized results.
    pub batch: Option<ColumnBatch>,
}

impl QueryResult {
    /// Number of materialized result rows, whichever form holds them.
    pub fn num_rows(&self) -> usize {
        match &self.batch {
            Some(b) => b.num_rows(),
            None => self.rows.len(),
        }
    }

    /// Materialize the result as rows, consuming the batch if present
    /// (values are moved, not cloned).
    pub fn into_rows(self) -> Vec<Row> {
        match self.batch {
            Some(b) => b.into_rows(),
            None => self.rows,
        }
    }

    /// Total wire size of the materialized result.
    pub fn wire_bytes(&self) -> u64 {
        match &self.batch {
            Some(b) => b.wire_size() as u64,
            None => self.rows.iter().map(|r| r.wire_size() as u64).sum(),
        }
    }

    /// Total textual (JDBC result set) wire size of the result.
    pub fn text_wire_bytes(&self) -> u64 {
        match &self.batch {
            Some(b) => b.text_wire_size() as u64,
            None => self.rows.iter().map(|r| r.text_wire_size() as u64).sum(),
        }
    }
}

/// Apply a spec's row window, predicate, projection, count, and limit
/// to already-materialized rows (views and system tables).
pub(crate) fn apply_spec_to_rows(
    schema: Schema,
    mut rows: Vec<Row>,
    spec: &QuerySpec,
    epoch: u64,
) -> DbResult<QueryResult> {
    if let Some((start, end)) = spec.row_range {
        let start = (start as usize).min(rows.len());
        let end = (end as usize).min(rows.len());
        rows = rows[start..end].to_vec();
    }
    if let Some(pred) = &spec.predicate {
        let bound = pred.bind(&schema).map_err(DbError::Data)?;
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if bound.matches(&row).map_err(DbError::Data)? {
                kept.push(row);
            }
        }
        rows = kept;
    }
    let (schema, mut rows) = match &spec.projection {
        Some(cols) => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            let projected = schema.project(&refs).map_err(DbError::Data)?;
            let idx: Vec<usize> = cols
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<_, _>>()
                .map_err(DbError::Data)?;
            (
                projected,
                rows.into_iter().map(|r| r.into_projected(&idx)).collect(),
            )
        }
        None => (schema, rows),
    };
    let count = rows.len() as u64;
    if spec.count_only {
        return Ok(QueryResult {
            schema,
            rows: Vec::new(),
            count,
            epoch,
            batch: None,
        });
    }
    if let Some(limit) = spec.limit {
        rows.truncate(limit as usize);
    }
    Ok(QueryResult {
        count: rows.len() as u64,
        schema,
        rows,
        epoch,
        batch: None,
    })
}

/// Execution context: where the query entered the cluster and on whose
/// behalf.
#[derive(Clone, Copy)]
pub(crate) struct ExecCtx<'a> {
    pub cluster: &'a Cluster,
    /// The node the client session is connected to.
    pub node: usize,
    /// Task attribution for the recorder.
    pub task: Option<u64>,
    /// Open transaction id, for read-your-writes visibility.
    pub txn: Option<u64>,
    /// Upper bound on scan threads for this statement (the session's
    /// resource-pool concurrency capped by the host's parallelism).
    pub parallelism: usize,
}

pub(crate) fn resolve_epoch(cluster: &Cluster, requested: Option<u64>) -> DbResult<u64> {
    let current = cluster.current_epoch();
    match requested {
        None => Ok(current),
        Some(e) if e <= current => Ok(e),
        Some(e) => Err(DbError::BadEpoch {
            requested: e,
            current,
        }),
    }
}

/// Execute a table scan (not a view — the SQL executor handles views by
/// running their stored select). The scan itself is always vectorized;
/// `want_batch` chooses whether the result keeps the columnar batch or
/// materializes the `rows` compatibility view.
pub(crate) fn execute_table_scan(
    ctx: ExecCtx<'_>,
    spec: &QuerySpec,
    want_batch: bool,
) -> DbResult<QueryResult> {
    let def = ctx.cluster.table_def(&spec.table)?;
    let as_of = resolve_epoch(ctx.cluster, spec.as_of_epoch)?;
    if let Some(expected) = spec.map_version {
        let current = ctx.cluster.segment_map_at(as_of).version();
        if expected != current {
            return Err(DbError::StaleSegmentMap {
                requested: expected,
                current,
            });
        }
    }

    let predicate = match &spec.predicate {
        Some(p) => Some(p.bind(&def.schema)?),
        None => None,
    };
    if let Some(req) = &spec.aggregate {
        return execute_aggregate_scan(ctx, &def, as_of, spec, req, predicate.as_ref());
    }
    let projection_idx: Option<Vec<usize>> = match &spec.projection {
        Some(cols) => Some(
            cols.iter()
                .map(|c| def.schema.index_of(c))
                .collect::<Result<Vec<_>, _>>()
                .map_err(DbError::Data)?,
        ),
        None => None,
    };
    let out_schema = match &spec.projection {
        Some(cols) => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            def.schema.project(&refs).map_err(DbError::Data)?
        }
        None => def.schema.clone(),
    };
    let dtypes: Vec<DataType> = out_schema.fields().iter().map(|f| f.dtype).collect();

    let mut batch = if def.is_segmented() {
        if spec.row_range.is_some() {
            return Err(DbError::Execution(format!(
                "row ranges apply to unsegmented tables and views; {} is segmented",
                def.name
            )));
        }
        scan_segmented(
            ctx,
            &def,
            as_of,
            spec,
            predicate.as_ref(),
            projection_idx.as_deref(),
            &dtypes,
        )?
    } else {
        if spec.hash_range.is_some() {
            return Err(DbError::Execution(format!(
                "hash ranges apply to segmented tables; {} is unsegmented",
                def.name
            )));
        }
        scan_unsegmented(
            ctx,
            &def,
            as_of,
            spec,
            predicate.as_ref(),
            projection_idx.as_deref(),
            &dtypes,
        )?
    };

    let count = batch.num_rows() as u64;
    if spec.count_only {
        return Ok(QueryResult {
            schema: out_schema,
            rows: Vec::new(),
            count,
            epoch: as_of,
            batch: None,
        });
    }
    if let Some(limit) = spec.limit {
        batch.truncate(limit as usize);
    }
    let count = batch.num_rows() as u64;
    let (rows, batch) = if want_batch {
        (Vec::new(), Some(batch))
    } else {
        (batch.into_rows(), None)
    };
    Ok(QueryResult {
        count,
        schema: out_schema,
        rows,
        epoch: as_of,
        batch,
    })
}

/// Approximate stored width of a column, for scan-cost accounting.
fn column_width(dtype: common::DataType) -> u64 {
    match dtype {
        common::DataType::Boolean => 1,
        common::DataType::Int64 | common::DataType::Float64 => 8,
        common::DataType::Varchar => 32,
    }
}

/// Decoded width per examined row: the segmentation columns when a hash
/// range restricts the query, plus the bound predicate's referenced
/// columns. Computed once per statement from `referenced_indices` (not
/// per piece, and without per-column name lookups).
fn examined_width(def: &TableDef, hash_restricted: bool, predicate: Option<&Expr>) -> u64 {
    let mut width = 0u64;
    if hash_restricted {
        width += def
            .seg_columns
            .iter()
            .map(|&i| column_width(def.schema.field(i).dtype))
            .sum::<u64>();
    }
    if let Some(p) = predicate {
        let mut cols = Vec::new();
        p.referenced_indices(&mut cols);
        width += cols
            .iter()
            .map(|&i| column_width(def.schema.field(i).dtype))
            .sum::<u64>();
    }
    width
}

/// The one scan-cost formula, shared by the segmented and unsegmented
/// paths so recorded volumes are comparable across table kinds: every
/// examined row decodes the referenced-column width, and matched rows
/// additionally materialize their full projected wire size.
fn scan_cost(examined: u64, examined_width: u64, matched_bytes: u64) -> u64 {
    examined * examined_width + matched_bytes
}

/// One segment's scan, produced by a (possibly parallel) worker and
/// folded into the result on the coordinating thread.
struct PieceResult {
    batch: ColumnBatch,
    examined: u64,
    scanned: u64,
    serving: usize,
}

fn scan_segmented(
    ctx: ExecCtx<'_>,
    def: &TableDef,
    as_of: u64,
    spec: &QuerySpec,
    predicate: Option<&Expr>,
    projection: Option<&[usize]>,
    dtypes: &[DataType],
) -> DbResult<ColumnBatch> {
    let cluster = ctx.cluster;
    // Ownership resolves through the map version authoritative at the
    // read's snapshot epoch: a scan pinned before a rebalance flip keeps
    // using the old map (whose owners still hold every pre-flip row),
    // one pinned after uses the new.
    let map = cluster.segment_map_at(as_of);
    let range = spec.hash_range.unwrap_or_else(HashRange::full);
    let k = cluster.config().k_safety;

    // Columnar scan cost: every visible row is examined, but only the
    // *referenced* columns are decoded for it. Matched rows additionally
    // materialize their full (projected) width; that part is the
    // recorded wire volume below.
    let exam_width = examined_width(def, spec.hash_range.is_some(), predicate);

    let pieces = map.segments_intersecting(&range);

    let scan_store = |serving: usize, sub: &HashRange| -> DbResult<PieceResult> {
        let state = cluster
            .node_state(serving)
            .ok_or(DbError::NodeUnavailable(serving))?;
        let stores = state.stores.read();
        let store = stores
            .get(&def.name)
            .ok_or_else(|| DbError::UnknownTable(def.name.clone()))?;
        // A range query has no hash index: the node examines every
        // visible row to test it against the range — the per-query
        // overhead that makes very high parallelism lose (Fig. 6).
        let out = store
            .scan_batch(&BatchScan {
                as_of,
                my_txn: ctx.txn,
                hash_range: Some(sub),
                row_range: None,
                predicate,
                projection,
                dtypes,
                no_skip: spec.no_skip,
            })
            .map_err(DbError::Data)?;
        Ok(PieceResult {
            batch: out.batch,
            examined: out.examined,
            scanned: out.scanned,
            serving,
        })
    };
    let scan_piece = |segment: usize, subrange: &HashRange| -> DbResult<Vec<PieceResult>> {
        // Serve from the owner at the pinned epoch, failing over to its
        // buddies under that same map version.
        if let Some(serving) = std::iter::once(segment)
            .chain(map.buddies(segment, k))
            .find(|&n| cluster.is_node_up(n))
        {
            return Ok(vec![scan_store(serving, subrange)?]);
        }
        // Last resort for epoch-pinned reads that outlived a rebalance:
        // the current map's owners hold the full verbatim history of
        // their ranges, so a pre-flip snapshot whose old replica set is
        // gone (a retired node at k=0, say) is still servable there.
        let current = cluster.segment_map();
        if current.version() == map.version() {
            return Err(DbError::DataUnavailable { segment });
        }
        let mut out = Vec::new();
        for (owner, subsub) in current.segments_intersecting(subrange) {
            let serving = std::iter::once(owner)
                .chain(current.buddies(owner, k))
                .find(|&n| cluster.is_node_up(n))
                .ok_or(DbError::DataUnavailable { segment: owner })?;
            out.push(scan_store(serving, &subsub)?);
        }
        Ok(out)
    };

    // Fan the per-segment scans across worker threads, bounded by the
    // statement's resource-pool concurrency. Workers only scan; all
    // recording and merging happens below on this thread, in segment
    // order, so the recorder log and the output order are identical to
    // a serial scan — including which error surfaces first.
    let workers = ctx.parallelism.min(pieces.len());
    let results: Vec<Option<DbResult<Vec<PieceResult>>>> = if workers <= 1 {
        pieces
            .iter()
            .map(|(seg, sub)| Some(scan_piece(*seg, sub)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<DbResult<Vec<PieceResult>>>>> =
            Mutex::new((0..pieces.len()).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= pieces.len() {
                        break;
                    }
                    let (seg, sub) = &pieces[i];
                    let r = scan_piece(*seg, sub);
                    slots.lock()[i] = Some(r);
                });
            }
        });
        slots.into_inner()
    };

    let mut out = ColumnBatch::new(dtypes);
    for slot in results {
        let piece_group =
            slot.ok_or_else(|| DbError::Execution("scan worker left no result".into()))??;
        for piece in piece_group {
            // Only surviving rows materialize their full projected width.
            let matched_bytes = piece.batch.wire_size() as u64;
            cluster.recorder().work(
                ctx.task,
                NodeRef::Db(piece.serving),
                "scan_hash",
                piece.examined,
                scan_cost(piece.examined, exam_width, matched_bytes),
            );
            if predicate.is_some() {
                cluster.recorder().work(
                    ctx.task,
                    NodeRef::Db(piece.serving),
                    "filter_eval",
                    piece.scanned,
                    0,
                );
            }

            // Only post-pushdown rows cross between database nodes; a
            // count-only request ships just the count.
            if piece.serving != ctx.node {
                let (bytes, rows) = if spec.count_only {
                    (8, 1)
                } else {
                    (matched_bytes, piece.batch.num_rows() as u64)
                };
                cluster.recorder().transfer(
                    ctx.task,
                    NodeRef::Db(piece.serving),
                    NodeRef::Db(ctx.node),
                    NetClass::DbInternal,
                    bytes,
                    rows,
                );
            }
            out.append(piece.batch).map_err(DbError::Data)?;
        }
    }
    Ok(out)
}

fn scan_unsegmented(
    ctx: ExecCtx<'_>,
    def: &TableDef,
    as_of: u64,
    spec: &QuerySpec,
    predicate: Option<&Expr>,
    projection: Option<&[usize]>,
    dtypes: &[DataType],
) -> DbResult<ColumnBatch> {
    let cluster = ctx.cluster;
    // Unsegmented tables are replicated everywhere: serve from the local
    // replica — no inter-node traffic at all.
    let serving = if cluster.is_node_up(ctx.node) {
        ctx.node
    } else {
        return Err(DbError::NodeUnavailable(ctx.node));
    };
    // Same cost model as the segmented path, so fig6/fig7 volumes are
    // comparable across table kinds (no hash range here, so the
    // examined width is just the predicate's referenced columns).
    let exam_width = examined_width(def, false, predicate);
    let scanned = {
        let state = cluster
            .node_state(serving)
            .ok_or(DbError::NodeUnavailable(serving))?;
        let stores = state.stores.read();
        let store = stores
            .get(&def.name)
            .ok_or_else(|| DbError::UnknownTable(def.name.clone()))?;
        let scanned = store.scan_batch(&BatchScan {
            as_of,
            my_txn: ctx.txn,
            hash_range: None,
            row_range: spec.row_range,
            predicate,
            projection,
            dtypes,
            no_skip: spec.no_skip,
        });
        // The scan walks every visible row before the window and filter
        // apply; a predicate evaluation error still pays for that walk
        // (but materializes nothing).
        let (examined, scanned_rows, matched_bytes) = match &scanned {
            Ok(out) => (out.examined, out.scanned, out.batch.wire_size() as u64),
            Err(_) => (store.visible_count(as_of, ctx.txn) as u64, 0, 0),
        };
        cluster.recorder().work(
            ctx.task,
            NodeRef::Db(serving),
            "scan_local",
            examined,
            scan_cost(examined, exam_width, matched_bytes),
        );
        if predicate.is_some() && scanned_rows > 0 {
            cluster.recorder().work(
                ctx.task,
                NodeRef::Db(serving),
                "filter_eval",
                scanned_rows,
                0,
            );
        }
        scanned
    };
    Ok(scanned.map_err(DbError::Data)?.batch)
}

/// Execute an aggregate-pushdown scan: every serving store folds its
/// visible rows into per-group partial accumulators (answering from
/// zone maps where it can), only those partials cross between nodes,
/// and this coordinating node merges them — in segment order, so the
/// result and any error are deterministic. With `aggregate_partial` the
/// partials themselves are returned (for a driver that merges pieces
/// from many queries exactly once); otherwise they are finalized here.
fn execute_aggregate_scan(
    ctx: ExecCtx<'_>,
    def: &TableDef,
    as_of: u64,
    spec: &QuerySpec,
    req: &AggRequest,
    predicate: Option<&Expr>,
) -> DbResult<QueryResult> {
    if spec.count_only {
        return Err(DbError::Execution(
            "count_only and aggregate are mutually exclusive".into(),
        ));
    }
    if spec.row_range.is_some() {
        return Err(DbError::Execution(
            "aggregate pushdown does not compose with row windows".into(),
        ));
    }
    req.validate().map_err(DbError::Data)?;
    let group_idx: Vec<usize> = req
        .group_by
        .iter()
        .map(|c| def.schema.index_of(c))
        .collect::<Result<_, _>>()
        .map_err(DbError::Data)?;
    let funcs: Vec<(AggFunc, Option<usize>)> = req
        .calls
        .iter()
        .map(|call| {
            Ok((
                call.func,
                match &call.column {
                    Some(c) => Some(def.schema.index_of(c).map_err(DbError::Data)?),
                    None => None,
                },
            ))
        })
        .collect::<DbResult<_>>()?;
    let out_schema = if spec.aggregate_partial {
        req.partial_schema(&def.schema).map_err(DbError::Data)?
    } else {
        req.output_schema(&def.schema).map_err(DbError::Data)?
    };
    let exam_width = examined_width(def, spec.hash_range.is_some(), predicate);
    obs::global().add("agg.pushdown.queries", 1);

    let cluster = ctx.cluster;
    let mut accs = GroupedAccs::new(funcs.iter().map(|(f, _)| *f).collect());
    // Fold one store's partials into the running result, recording the
    // scan work and the (tiny) partial transfer.
    let mut fold_store =
        |serving: usize, subrange: Option<&HashRange>, op: &'static str| -> DbResult<()> {
            let state = cluster
                .node_state(serving)
                .ok_or(DbError::NodeUnavailable(serving))?;
            let stores = state.stores.read();
            let store = stores
                .get(&def.name)
                .ok_or_else(|| DbError::UnknownTable(def.name.clone()))?;
            let out = store
                .scan_aggregate(
                    &BatchScan {
                        as_of,
                        my_txn: ctx.txn,
                        hash_range: subrange,
                        row_range: None,
                        predicate,
                        projection: None,
                        dtypes: &[],
                        no_skip: spec.no_skip,
                    },
                    &funcs,
                    &group_idx,
                )
                .map_err(DbError::Data)?;
            let partial_rows = out.accs.to_partial_rows();
            let partial_bytes: u64 = partial_rows.iter().map(|r| r.wire_size() as u64).sum();
            cluster.recorder().work(
                ctx.task,
                NodeRef::Db(serving),
                op,
                out.examined,
                scan_cost(out.examined, exam_width, partial_bytes),
            );
            if predicate.is_some() && out.scanned > 0 {
                cluster.recorder().work(
                    ctx.task,
                    NodeRef::Db(serving),
                    "filter_eval",
                    out.scanned,
                    0,
                );
            }
            // Only accumulator states cross between database nodes — the
            // whole point of the pushdown.
            if serving != ctx.node {
                cluster.recorder().transfer(
                    ctx.task,
                    NodeRef::Db(serving),
                    NodeRef::Db(ctx.node),
                    NetClass::DbInternal,
                    partial_bytes.max(8),
                    partial_rows.len().max(1) as u64,
                );
            }
            accs.merge(&out.accs).map_err(DbError::Data)
        };

    if def.is_segmented() {
        // Same epoch-pinned resolution (and post-rebalance fallback) as
        // the row-scan path.
        let map = cluster.segment_map_at(as_of);
        let range = spec.hash_range.unwrap_or_else(HashRange::full);
        let k = cluster.config().k_safety;
        for (segment, subrange) in map.segments_intersecting(&range) {
            let pinned = std::iter::once(segment)
                .chain(map.buddies(segment, k))
                .find(|&n| cluster.is_node_up(n));
            match pinned {
                Some(serving) => fold_store(serving, Some(&subrange), "scan_hash")?,
                None => {
                    let current = cluster.segment_map();
                    if current.version() == map.version() {
                        return Err(DbError::DataUnavailable { segment });
                    }
                    for (owner, subsub) in current.segments_intersecting(&subrange) {
                        let serving = std::iter::once(owner)
                            .chain(current.buddies(owner, k))
                            .find(|&n| cluster.is_node_up(n))
                            .ok_or(DbError::DataUnavailable { segment: owner })?;
                        fold_store(serving, Some(&subsub), "scan_hash")?;
                    }
                }
            }
        }
    } else {
        if spec.hash_range.is_some() {
            return Err(DbError::Execution(format!(
                "hash ranges apply to segmented tables; {} is unsegmented",
                def.name
            )));
        }
        if !cluster.is_node_up(ctx.node) {
            return Err(DbError::NodeUnavailable(ctx.node));
        }
        fold_store(ctx.node, None, "scan_local")?;
    }

    // A global aggregate over zero rows still yields one (all-NULL /
    // zero-count) group — but only in the finalized form; a partial
    // result stays empty so a driver merging many pieces doesn't count
    // phantom groups.
    if req.group_by.is_empty() && !spec.aggregate_partial {
        accs.ensure_global_group();
    }
    let mut rows = if spec.aggregate_partial {
        accs.to_partial_rows()
    } else {
        accs.finalize_rows()
    };
    if let Some(limit) = spec.limit {
        rows.truncate(limit as usize);
    }
    Ok(QueryResult {
        count: rows.len() as u64,
        schema: out_schema,
        rows,
        epoch: as_of,
        batch: None,
    })
}

/// Estimate the visible-row count a scan of `table` leaves after
/// predicate pushdown, from per-container zone maps and NDV sketches —
/// the planner input for V2S piece sizing. Sums per-store estimates
/// across all nodes and divides by the replication factor (k+1 buddy
/// copies for segmented tables, every node for unsegmented ones).
pub fn estimate_scan_rows(
    cluster: &Cluster,
    table: &str,
    predicate: Option<&Expr>,
) -> DbResult<u64> {
    let def = cluster.table_def(table)?;
    let bound = match predicate {
        Some(p) => Some(p.bind(&def.schema).map_err(DbError::Data)?),
        None => None,
    };
    let replicas = if def.is_segmented() {
        cluster.config().k_safety as u64 + 1
    } else {
        cluster.node_count() as u64
    };
    let mut est = 0f64;
    for node in cluster.node_states() {
        let stores = node.stores.read();
        if let Some(store) = stores.get(&def.name) {
            est += store.estimate_rows(bound.as_ref());
        }
    }
    let est = (est / replicas.max(1) as f64).round() as u64;
    obs::global().add("planner.estimated_rows", est);
    Ok(est)
}
