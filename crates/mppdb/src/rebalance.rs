//! Online rebalance: elastic membership with epoch-pinned map flips
//! ("C-Store 7 Years Later" Sec. 6's online rebalance, adapted to this
//! cluster's epoch MVCC).
//!
//! The protocol, end to end:
//!
//! 1. **Plan.** [`Cluster::add_node`] registers a fresh node slot
//!    (empty stores, dual-write eligible) and derives the target map
//!    with [`SegmentMap::with_node_added`]; [`Cluster::remove_node`]
//!    derives it with [`SegmentMap::with_node_removed`]. Either way the
//!    target map and the minimal [`SegmentMap::migration_plan`] become
//!    the cluster's *pending rebalance*.
//! 2. **Dual writes.** While a rebalance is pending, `insert_rows`
//!    routes every row to the union of its current-map and target-map
//!    replica sets, and `delete_where` marks matches on every
//!    registered node — so data copied early cannot go stale while
//!    later ranges migrate.
//! 3. **Copy.** Each migration copies one hash range to one target
//!    node under a short commit-lock critical section: the source's
//!    rows are exported with commit/delete state verbatim
//!    (pending transactions included — `commit_txn`/`abort_txn` stamp
//!    every registered node, so they resolve on the target exactly as
//!    on the source), the target's range is cleared first
//!    (idempotency), and the rows land as one encoded ROS container
//!    rebuilt through the `ContainerStats` path so the migrated data
//!    stays zone-map-skippable. The target's kill-generation is
//!    recorded per migration; a kill between copy and flip invalidates
//!    the record and forces a re-copy on resume.
//! 4. **Flip.** When every migration is durable, the target map is
//!    published at the *next* epoch boundary under the commit lock:
//!    epoch `E` advances to `E+1` and the map version becomes
//!    effective at `E+1`. Reads and V2S pieces pinned at epochs `<= E`
//!    keep resolving ownership through the old map — whose owners
//!    still hold every pre-flip row — while anything at `>= E+1` uses
//!    the new map, whose owners hold the full verbatim history. No
//!    in-flight job is ever wrong; migrated ranges are merely
//!    dual-served until the old snapshots age out.
//! 5. **Crash/resume.** [`FaultSite::Rebalance`] kills the rebalance
//!    right after a migration is recorded. The plan stays pending;
//!    [`Cluster::run_rebalance`] recomputes the deterministic plan,
//!    skips migrations whose recorded target generation still
//!    matches, and re-copies the rest — `remove_hash_range` before
//!    each landing makes re-copies exact, never additive. A target
//!    killed *during* a copy bumps its generation, so that migration
//!    is left unrecorded and resumed from scratch.
//!
//! Every completed operation lands in a bounded op log surfaced as the
//! `dc_rebalance` system table, the map history as `dc_segment_map`,
//! and `rebalance.*` counters/timers in the data collector.
//!
//! [`FaultSite::Rebalance`]: crate::fault::FaultSite::Rebalance

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::cluster::Cluster;
use crate::error::{DbError, DbResult};
use crate::fault::FaultSite;
use crate::segmentation::{HashRange, SegmentMap, SegmentMove};

/// Most recent rebalance operations retained for `dc_rebalance`.
const OP_LOG_CAP: usize = 1024;

/// One completed rebalance operation, as surfaced by the
/// `dc_rebalance` system table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceOp {
    /// Monotonic per-cluster sequence number.
    pub seq: u64,
    /// `"plan"`, `"copy"`, `"skip"`, `"crash"`, or `"flip"`.
    pub op: &'static str,
    /// Target node of the migration (or the added/removed node for
    /// plan/flip entries).
    pub node: usize,
    /// Table migrated; empty for plan/flip entries.
    pub table: String,
    /// Rows copied.
    pub rows: u64,
    pub range_start: u64,
    pub range_end: Option<u64>,
    /// The target map version this operation works toward.
    pub map_version: u64,
    /// Cluster epoch when the operation ran.
    pub epoch: u64,
    pub dur_us: u64,
}

/// The cluster's pending rebalance: target map, what kind of
/// membership change it is, and which migrations are already durable.
pub(crate) struct PendingRebalance {
    target: Arc<SegmentMap>,
    /// Node being drained for removal (retired at flip), if any.
    remove: Option<usize>,
    /// Node added by this rebalance, if any.
    add: Option<usize>,
    /// Durable copies: (table, target node, range start) -> the
    /// target's kill-generation when the copy landed. A generation
    /// mismatch at resume or flip time means the target restarted and
    /// the copy must be redone.
    done: HashMap<(String, usize, u64), u64>,
}

/// Per-cluster rebalance state: the pending plan and the bounded op
/// log.
#[derive(Default)]
pub(crate) struct RebalanceState {
    pub(crate) pending: Mutex<Option<PendingRebalance>>,
    ops: Mutex<VecDeque<RebalanceOp>>,
    seq: AtomicU64,
}

impl RebalanceState {
    fn log(&self, mut op: RebalanceOp) {
        op.seq = self.seq.fetch_add(1, Ordering::AcqRel);
        let mut ops = self.ops.lock();
        if ops.len() == OP_LOG_CAP {
            ops.pop_front();
        }
        ops.push_back(op);
    }
}

/// Outcome of a completed [`Cluster::run_rebalance`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The map version that became authoritative.
    pub map_version: u64,
    /// The epoch at which the new map took effect.
    pub flip_epoch: u64,
    /// Migrations copied this run.
    pub migrations: usize,
    /// Migrations skipped because a previous (interrupted) run already
    /// landed them durably.
    pub skipped: usize,
    /// Rows copied this run.
    pub rows_copied: usize,
    /// Node added by this rebalance, if any.
    pub added: Option<usize>,
    /// Node retired by this rebalance, if any.
    pub removed: Option<usize>,
}

impl Cluster {
    /// Whether a rebalance is planned but not yet flipped.
    pub fn rebalance_in_progress(&self) -> bool {
        self.rebalance.pending.lock().is_some()
    }

    /// The pending rebalance's target map, if any — what `insert_rows`
    /// dual-writes against.
    pub(crate) fn rebalance_target_map(&self) -> Option<Arc<SegmentMap>> {
        self.rebalance
            .pending
            .lock()
            .as_ref()
            .map(|p| Arc::clone(&p.target))
    }

    /// Add a node to the cluster and rebalance onto it online. Returns
    /// the new node's id. The node is registered (up, empty stores,
    /// receiving dual-writes) before any data moves, then
    /// [`Cluster::run_rebalance`] copies its share and flips the map.
    ///
    /// On interruption (injected crash, target killed mid-copy) the
    /// error is returned and the plan stays pending: the node id is
    /// `node_count() - 1`, and a later `run_rebalance` resumes from
    /// where the copy stopped.
    pub fn add_node(&self) -> DbResult<usize> {
        let node;
        {
            let mut pending = self.rebalance.pending.lock();
            if pending.is_some() {
                return Err(DbError::Execution(
                    "a rebalance is already in progress".to_string(),
                ));
            }
            let _guard = self.commit_lock.lock();
            node = self.register_node();
            let target = Arc::new(self.segment_map().with_node_added(node));
            self.rebalance.log(RebalanceOp {
                seq: 0,
                op: "plan",
                node,
                table: String::new(),
                rows: 0,
                range_start: 0,
                range_end: None,
                map_version: target.version(),
                epoch: self.current_epoch(),
                dur_us: 0,
            });
            *pending = Some(PendingRebalance {
                target,
                remove: None,
                add: Some(node),
                done: HashMap::new(),
            });
        }
        obs::global().incr("rebalance.node_adds");
        obs::global().emit(obs::EventKind::FaultInject, |e| {
            e.node = Some(node as u64);
            e.detail = format!("node {node} added; rebalance planned");
        });
        self.run_rebalance()?;
        Ok(node)
    }

    /// Remove a member node online: its data migrates to the remaining
    /// members, and at the flip the node is retired for good (sessions
    /// die, `restore_node` refuses it). Node ids stay stable — no
    /// renumbering.
    ///
    /// On interruption the plan stays pending (the node keeps serving)
    /// and a later [`Cluster::run_rebalance`] resumes it.
    pub fn remove_node(&self, node: usize) -> DbResult<()> {
        {
            let mut pending = self.rebalance.pending.lock();
            if pending.is_some() {
                return Err(DbError::Execution(
                    "a rebalance is already in progress".to_string(),
                ));
            }
            let map = self.segment_map();
            if !map.is_member(node) {
                return Err(DbError::NodeUnavailable(node));
            }
            if map.node_count() <= 1 {
                return Err(DbError::Execution(
                    "cannot remove the last member node".to_string(),
                ));
            }
            let _guard = self.commit_lock.lock();
            let target = Arc::new(map.with_node_removed(node));
            self.rebalance.log(RebalanceOp {
                seq: 0,
                op: "plan",
                node,
                table: String::new(),
                rows: 0,
                range_start: 0,
                range_end: None,
                map_version: target.version(),
                epoch: self.current_epoch(),
                dur_us: 0,
            });
            *pending = Some(PendingRebalance {
                target,
                remove: Some(node),
                add: None,
                done: HashMap::new(),
            });
        }
        obs::global().incr("rebalance.node_removes");
        obs::global().emit(obs::EventKind::FaultInject, |e| {
            e.node = Some(node as u64);
            e.detail = format!("node {node} leaving; rebalance planned");
        });
        self.run_rebalance()
    }

    /// Run (or resume) the pending rebalance to completion: copy every
    /// outstanding migration, then flip the map at an epoch boundary.
    /// `Ok(None)`-equivalent behavior: with nothing pending this is a
    /// no-op. Idempotent under crashes — migrations already durable
    /// (recorded generation still matching the target's) are skipped.
    pub fn run_rebalance(&self) -> DbResult<()> {
        let mut pending_guard = self.rebalance.pending.lock();
        let Some(pending) = pending_guard.as_mut() else {
            return Ok(());
        };
        let old = self.segment_map();
        let target = Arc::clone(&pending.target);
        let k = self.config().k_safety;
        let was_resumed = !pending.done.is_empty();
        if was_resumed {
            obs::global().incr("rebalance.resumes");
        }
        let mut report = RebalanceReport {
            map_version: target.version(),
            added: pending.add,
            removed: pending.remove,
            ..RebalanceReport::default()
        };

        // The deterministic migration list: segmented tables move the
        // minimal plan's ranges; unsegmented tables full-copy to a
        // freshly added node (every surviving member already holds a
        // full replica, so removals copy nothing).
        let moves = old.migration_plan(&target, k);
        let catalog_tables: Vec<(String, bool)> = {
            let catalog = self.catalog.read();
            catalog
                .table_names()
                .into_iter()
                .filter_map(|name| {
                    let def = catalog.table(&name).ok()?;
                    if def.is_temp {
                        return None;
                    }
                    Some((def.name.clone(), def.is_segmented()))
                })
                .collect()
        };
        for (table, segmented) in &catalog_tables {
            let table_moves: Vec<SegmentMove> = if *segmented {
                moves.clone()
            } else {
                match pending.add {
                    Some(node) => vec![SegmentMove {
                        range: HashRange::full(),
                        node,
                    }],
                    None => Vec::new(),
                }
            };
            for mv in table_moves {
                let key = (table.clone(), mv.node, mv.range.start);
                let gen_now = self.node_generation(mv.node);
                if pending.done.get(&key) == Some(&gen_now) {
                    report.skipped += 1;
                    obs::global().incr("rebalance.migrations_skipped");
                    self.rebalance.log(RebalanceOp {
                        seq: 0,
                        op: "skip",
                        node: mv.node,
                        table: table.clone(),
                        rows: 0,
                        range_start: mv.range.start,
                        range_end: mv.range.end,
                        map_version: target.version(),
                        epoch: self.current_epoch(),
                        dur_us: 0,
                    });
                    continue;
                }
                if !self.is_node_up(mv.node) {
                    // Target down mid-rebalance: leave the plan pending;
                    // resume after the node is restored.
                    return Err(DbError::RebalanceInterrupted { node: mv.node });
                }
                let started = Instant::now();
                let rows = self.copy_migration(&old, table, *segmented, &mv, k)?;
                // A kill during the copy bumped the generation: the
                // target's staged rows died with it. Leave unrecorded —
                // a resume re-copies it exactly (the landing clears the
                // range first).
                if self.node_generation(mv.node) != gen_now {
                    return Err(DbError::RebalanceInterrupted { node: mv.node });
                }
                pending.done.insert(key, gen_now);
                report.migrations += 1;
                report.rows_copied += rows;
                let dur = started.elapsed();
                obs::global().incr("rebalance.migrations");
                obs::global().add("rebalance.rows_copied", rows as u64);
                obs::global().record_time("rebalance.migration_us", dur);
                self.rebalance.log(RebalanceOp {
                    seq: 0,
                    op: "copy",
                    node: mv.node,
                    table: table.clone(),
                    rows: rows as u64,
                    range_start: mv.range.start,
                    range_end: mv.range.end,
                    map_version: target.version(),
                    epoch: self.current_epoch(),
                    dur_us: dur.as_micros() as u64,
                });
                // The seeded mid-rebalance crash: this migration is
                // recorded, but the run dies before reaching the next
                // one. A resume skips recorded work (generation
                // permitting) and picks up where the crash hit.
                if self.faults().should_fire(FaultSite::Rebalance, mv.node) {
                    self.rebalance.log(RebalanceOp {
                        seq: 0,
                        op: "crash",
                        node: mv.node,
                        table: table.clone(),
                        rows: rows as u64,
                        range_start: mv.range.start,
                        range_end: mv.range.end,
                        map_version: target.version(),
                        epoch: self.current_epoch(),
                        dur_us: started.elapsed().as_micros() as u64,
                    });
                    return Err(DbError::RebalanceInterrupted { node: mv.node });
                }
            }
        }

        // Flip: publish the target map at the next epoch boundary. Any
        // migration whose target restarted since its copy is stale —
        // drop it and report interrupted instead of flipping onto lost
        // data.
        let flip_epoch;
        {
            let _guard = self.commit_lock.lock();
            let mut stale: Option<usize> = None;
            pending.done.retain(|(_, node, _), gen| {
                let ok = self.node_generation(*node) == *gen && self.is_node_up(*node);
                if !ok {
                    stale = Some(*node);
                }
                ok
            });
            if let Some(node) = stale {
                return Err(DbError::RebalanceInterrupted { node });
            }
            flip_epoch = self.epoch.load(Ordering::Acquire) + 1;
            self.push_map_version(flip_epoch, Arc::clone(&target));
            self.epoch.store(flip_epoch, Ordering::Release);
        }
        report.flip_epoch = flip_epoch;
        if let Some(node) = pending.remove {
            self.retire_node(node);
        }
        *pending_guard = None;
        drop(pending_guard);

        obs::global().incr("rebalance.flips");
        obs::global().incr("db.epoch_advance");
        obs::global().emit(obs::EventKind::EpochAdvance, |e| {
            e.detail = format!(
                "epoch {flip_epoch}: segment map v{} authoritative",
                target.version()
            );
        });
        self.rebalance.log(RebalanceOp {
            seq: 0,
            op: "flip",
            node: report.removed.or(report.added).unwrap_or(0),
            table: String::new(),
            rows: report.rows_copied as u64,
            range_start: 0,
            range_end: None,
            map_version: target.version(),
            epoch: flip_epoch,
            dur_us: 0,
        });
        Ok(())
    }

    /// Copy one migration's range to its target under a short
    /// commit-lock hold, so no commit can stamp epochs between export
    /// and landing. Returns rows copied.
    fn copy_migration(
        &self,
        old: &SegmentMap,
        table: &str,
        segmented: bool,
        mv: &SegmentMove,
        k: usize,
    ) -> DbResult<usize> {
        let _guard = self.commit_lock.lock();
        let target_state = self
            .node_state(mv.node)
            .ok_or(DbError::NodeUnavailable(mv.node))?;
        let mut copied = 0usize;
        // A merged move range can span several old-map segments, each
        // with its own source replica set.
        let pieces: Vec<(usize, HashRange)> = if segmented {
            old.segments_intersecting(&mv.range)
        } else {
            // Unsegmented full copy: any live holder serves as source.
            let src = (0..self.node_count())
                .find(|&n| n != mv.node && self.is_node_up(n))
                .ok_or(DbError::DataUnavailable { segment: 0 })?;
            vec![(src, mv.range)]
        };
        for (src_owner, sub) in pieces {
            let source = if segmented {
                std::iter::once(src_owner)
                    .chain(old.buddies(src_owner, k))
                    .find(|&n| n != mv.node && self.is_node_up(n))
                    .ok_or(DbError::RebalanceInterrupted { node: mv.node })?
            } else {
                src_owner
            };
            let src_state = self
                .node_state(source)
                .ok_or(DbError::NodeUnavailable(source))?;
            let exported = {
                let stores = src_state.stores.read();
                match stores.get(table) {
                    Some(store) => store.export_rows(if segmented { Some(&sub) } else { None }),
                    None => continue,
                }
            };
            let mut stores = target_state.stores.write();
            let Some(store) = stores.get_mut(table) else {
                continue;
            };
            // Idempotency: clear the landing range first, so a resumed
            // copy replaces rather than duplicates.
            store.remove_hash_range(&sub);
            copied += exported.len();
            store.import_rows_ros(exported);
        }
        Ok(copied)
    }

    /// The retained rebalance operation log, oldest first (what
    /// `dc_rebalance` serves).
    pub fn rebalance_ops(&self) -> Vec<RebalanceOp> {
        self.rebalance.ops.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Segmentation, TableDef};
    use crate::cluster::ClusterConfig;
    use common::{row, DataType, Row, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)])
    }

    fn seeded(node_count: usize, k_safety: usize, rows: usize) -> Arc<Cluster> {
        let c = Cluster::new(ClusterConfig {
            node_count,
            k_safety,
            ..ClusterConfig::default()
        });
        c.create_table(
            TableDef::new("t", schema(), Segmentation::ByHash(vec!["id".into()])).unwrap(),
        )
        .unwrap();
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (0..rows).map(|i| row![i as i64, i as f64]).collect();
        c.insert_rows(&mut txn, 0, None, "t", rows, false).unwrap();
        c.commit_txn(txn);
        c
    }

    fn all_ids(c: &Arc<Cluster>, epoch: u64) -> Vec<i64> {
        let def = c.table_def("t").unwrap();
        let mut ids: Vec<i64> = c
            .scan_primary_live(&def, epoch, None)
            .unwrap()
            .into_iter()
            .map(|r| match r.values()[0] {
                common::Value::Int64(v) => v,
                _ => panic!("id column must be int"),
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn add_node_preserves_ids_and_versions_map() {
        let c = seeded(4, 0, 500);
        let before = all_ids(&c, c.current_epoch());
        let pre_epoch = c.current_epoch();
        let node = c.add_node().unwrap();
        assert_eq!(node, 4);
        assert_eq!(c.node_count(), 5);
        assert_eq!(c.segment_map().version(), 1);
        assert!(c.segment_map().is_member(4));
        // Post-flip scans see the same multiset; the new node now
        // serves its share.
        assert_eq!(all_ids(&c, c.current_epoch()), before);
        // Epoch-pinned resolution: the pre-flip epoch resolves the old
        // map version.
        assert_eq!(c.segment_map_at(pre_epoch).version(), 0);
        assert_eq!(c.segment_map_at(c.current_epoch()).version(), 1);
        let stats = c.table_stats("t").unwrap();
        assert!(
            stats[4].ros_rows > 0,
            "migrated rows must land as ROS on the new node"
        );
    }

    #[test]
    fn remove_node_retires_it_and_preserves_ids() {
        let c = seeded(4, 0, 500);
        let before = all_ids(&c, c.current_epoch());
        c.remove_node(2).unwrap();
        assert!(c.is_node_retired(2));
        assert!(!c.is_node_up(2));
        assert_eq!(c.segment_map().members(), &[0, 1, 3]);
        assert_eq!(all_ids(&c, c.current_epoch()), before);
        // A retired node never comes back.
        c.restore_node(2);
        assert!(!c.is_node_up(2));
        assert!(c.connect(2).is_err());
    }

    #[test]
    fn interrupted_rebalance_resumes_idempotently() {
        let c = seeded(4, 0, 400);
        let before = all_ids(&c, c.current_epoch());
        // Crash the first migration attempt, every time until the
        // budget runs out.
        c.faults().arm(
            crate::fault::FaultPlan::seeded(7)
                .with_rebalance_crash(1.0)
                .with_budget(2),
        );
        let err = c.add_node().unwrap_err();
        assert!(matches!(err, DbError::RebalanceInterrupted { .. }));
        assert!(c.rebalance_in_progress());
        assert_eq!(c.segment_map().version(), 0, "no flip before completion");
        // Resume: one more crash, then the budget is spent.
        let _ = c.run_rebalance();
        c.run_rebalance().unwrap();
        assert!(!c.rebalance_in_progress());
        assert_eq!(c.segment_map().version(), 1);
        assert_eq!(all_ids(&c, c.current_epoch()), before);
        assert!(c.rebalance_ops().iter().any(|op| op.op == "crash"));
        assert!(c.rebalance_ops().iter().any(|op| op.op == "skip"));
    }

    #[test]
    fn dual_writes_reach_the_new_owner_before_flip() {
        let c = seeded(4, 0, 200);
        // Plan an add but crash after the first migration records,
        // leaving the rebalance pending.
        c.faults().inject_once(FaultSite::Rebalance);
        let err = c.add_node().unwrap_err();
        assert!(matches!(err, DbError::RebalanceInterrupted { node: 4 }));
        // Insert while pending: rows dual-write to current and target
        // owners.
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (200..400).map(|i| row![i as i64, 0.0f64]).collect();
        c.insert_rows(&mut txn, 0, None, "t", rows, false).unwrap();
        c.commit_txn(txn);
        let stats = c.table_stats("t").unwrap();
        assert!(
            stats[4].wos_rows > 0,
            "dual-writes must land on the pending target"
        );
        // Finish the rebalance; the multiset is exact (no duplicates
        // from dual-written rows, since the copy clears before landing).
        c.run_rebalance().unwrap();
        let ids = all_ids(&c, c.current_epoch());
        assert_eq!(ids, (0..400).collect::<Vec<i64>>());
    }

    #[test]
    fn k_safety_migration_keeps_replication() {
        let c = seeded(4, 1, 300);
        let before = all_ids(&c, c.current_epoch());
        c.add_node().unwrap();
        assert_eq!(all_ids(&c, c.current_epoch()), before);
        // Every logical row still has 2 physical copies among the
        // *new-map* replica set; total physical rows can exceed 2x
        // because old owners keep their pre-flip copies for epoch-
        // pinned readers.
        let map = c.segment_map();
        assert_eq!(map.node_count(), 5);
        // Kill one node: everything stays readable under k=1.
        c.kill_node(1);
        assert_eq!(all_ids(&c, c.current_epoch()), before);
    }

    #[test]
    fn unsegmented_tables_full_copy_to_new_node() {
        let c = Cluster::new(ClusterConfig::default());
        c.create_table(TableDef::new("u", schema(), Segmentation::Unsegmented).unwrap())
            .unwrap();
        let mut txn = c.begin_txn();
        let rows: Vec<Row> = (0..50).map(|i| row![i as i64, 0.0f64]).collect();
        c.insert_rows(&mut txn, 0, None, "u", rows, false).unwrap();
        c.commit_txn(txn);
        let node = c.add_node().unwrap();
        let stats = c.table_stats("u").unwrap();
        assert_eq!(
            stats[node].ros_rows, 50,
            "new node must hold the full unsegmented replica"
        );
    }

    #[test]
    fn concurrent_rebalance_refused() {
        let c = seeded(4, 0, 100);
        c.faults().inject_once(FaultSite::Rebalance);
        assert!(c.add_node().is_err());
        assert!(c.rebalance_in_progress());
        assert!(matches!(c.add_node(), Err(DbError::Execution(_))));
        assert!(matches!(c.remove_node(0), Err(DbError::Execution(_))));
        c.run_rebalance().unwrap();
        assert!(!c.rebalance_in_progress());
    }
}
