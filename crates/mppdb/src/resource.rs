//! Resource pools: named admission-control buckets for query workloads.
//!
//! The paper isolates the connector's data-movement traffic in a
//! dedicated pool sized at half the machine RAM (Sec. 4.1). Our pools
//! track memory budget and bound concurrent statement admissions; the
//! benchmark harness reads the high-water marks when reporting resource
//! usage.
//!
//! Pools built with [`ResourcePool::new`] queue without bound, the
//! legacy Vertica-queues-rather-than-rejects behavior. Pools configured
//! via [`ResourcePool::with_admission`] add *load shedding*: a bounded
//! wait queue and a queue-time deadline. A statement that would overflow
//! the queue, or that waits past the deadline, is shed with
//! [`DbError::Overloaded`] — a typed, transient error the connector
//! retries with backoff instead of piling more work onto a saturated
//! node. Sheds are counted under `shed.*`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{DbError, DbResult};

#[derive(Debug, Default)]
struct PoolState {
    active: usize,
    waiting: usize,
}

/// A named resource pool.
#[derive(Debug)]
pub struct ResourcePool {
    name: String,
    memory_bytes: u64,
    max_concurrency: usize,
    /// Statements allowed to wait for a slot; beyond this, shed.
    max_queue: usize,
    /// How long a queued statement may wait before it is shed.
    queue_timeout: Option<Duration>,
    state: Mutex<PoolState>,
    released: Condvar,
    high_water: AtomicUsize,
    shed_total: AtomicU64,
}

impl ResourcePool {
    pub fn new(name: impl Into<String>, memory_bytes: u64, max_concurrency: usize) -> ResourcePool {
        ResourcePool {
            name: name.into(),
            memory_bytes,
            max_concurrency: max_concurrency.max(1),
            max_queue: usize::MAX,
            queue_timeout: None,
            state: Mutex::new(PoolState::default()),
            released: Condvar::new(),
            high_water: AtomicUsize::new(0),
            shed_total: AtomicU64::new(0),
        }
    }

    /// Bound the admission queue: at most `max_queue` statements may
    /// wait for a slot, and none may wait longer than `queue_timeout`.
    pub fn with_admission(mut self, max_queue: usize, queue_timeout: Duration) -> ResourcePool {
        self.max_queue = max_queue;
        self.queue_timeout = Some(queue_timeout);
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    pub fn max_concurrency(&self) -> usize {
        self.max_concurrency
    }

    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    pub fn queue_timeout(&self) -> Option<Duration> {
        self.queue_timeout
    }

    /// Admit one statement, queueing while the pool is full. Panics if
    /// a bounded pool sheds the statement — callers of bounded pools
    /// must use [`ResourcePool::try_admit`] and handle
    /// [`DbError::Overloaded`].
    pub fn admit(self: &Arc<Self>) -> PoolGuard {
        // fabriclint: allow(panic-hygiene): documented contract — bounded pools must call try_admit
        self.try_admit().expect("bounded pools require try_admit")
    }

    /// Admit one statement, queueing while the pool is full (Vertica
    /// queues rather than rejects — up to this pool's admission
    /// bounds). Returns a guard releasing the slot, or
    /// [`DbError::Overloaded`] if the statement was shed.
    pub fn try_admit(self: &Arc<Self>) -> DbResult<PoolGuard> {
        let started = Instant::now();
        let mut st = self.state.lock();
        let queued = st.active >= self.max_concurrency;
        if queued {
            if st.waiting >= self.max_queue {
                drop(st);
                return Err(self.shed("queue full", "shed.queue_full", started));
            }
            st.waiting += 1;
            let deadline = self.queue_timeout.map(|t| started + t);
            while st.active >= self.max_concurrency {
                match deadline {
                    Some(d) => {
                        if self.released.wait_until(&mut st, d).timed_out()
                            && st.active >= self.max_concurrency
                        {
                            st.waiting -= 1;
                            drop(st);
                            return Err(self.shed("queue timeout", "shed.timeout", started));
                        }
                    }
                    None => self.released.wait(&mut st),
                }
            }
            st.waiting -= 1;
        }
        st.active += 1;
        self.high_water.fetch_max(st.active, Ordering::AcqRel);
        let now_active = st.active;
        drop(st);
        let waited = started.elapsed();
        obs::global().emit(obs::EventKind::PoolAdmit, |e| {
            e.dur_us = waited.as_micros() as u64;
            e.detail = format!(
                "pool {}, {now_active} active{}",
                self.name,
                if queued { ", queued" } else { "" }
            );
        });
        obs::global().add("db.pool_admissions", 1);
        if queued {
            obs::global().add("db.pool_queued", 1);
        }
        obs::global().record_time("db.pool_admit_wait_us", waited);
        Ok(PoolGuard {
            pool: Arc::clone(self),
        })
    }

    fn shed(&self, why: &str, counter: &'static str, started: Instant) -> DbError {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
        let waited = started.elapsed();
        obs::global().emit(obs::EventKind::PoolAdmit, |e| {
            e.dur_us = waited.as_micros() as u64;
            e.detail = format!("pool {} shed ({why})", self.name);
        });
        obs::global().incr(counter);
        obs::global().incr("shed.total");
        DbError::Overloaded {
            pool: self.name.clone(),
        }
    }

    pub fn active(&self) -> usize {
        self.state.lock().active
    }

    /// Statements currently waiting in the admission queue.
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting
    }

    /// Highest concurrent admission count observed.
    pub fn high_water_mark(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }

    /// Statements shed by this pool since creation.
    pub fn shed_count(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }
}

/// RAII admission guard.
#[derive(Debug)]
pub struct PoolGuard {
    pool: Arc<ResourcePool>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock();
        st.active -= 1;
        self.pool.released.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_tracks_active_and_high_water() {
        let pool = Arc::new(ResourcePool::new("p", 1 << 30, 8));
        let g1 = pool.admit();
        let g2 = pool.admit();
        assert_eq!(pool.active(), 2);
        drop(g1);
        assert_eq!(pool.active(), 1);
        drop(g2);
        assert_eq!(pool.active(), 0);
        assert_eq!(pool.high_water_mark(), 2);
    }

    #[test]
    fn concurrency_bound_enforced() {
        let pool = Arc::new(ResourcePool::new("p", 1 << 30, 2));
        let observed_max = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let observed = Arc::clone(&observed_max);
                s.spawn(move || {
                    let _g = pool.admit();
                    observed.fetch_max(pool.active(), Ordering::AcqRel);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                });
            }
        });
        assert!(observed_max.load(Ordering::Acquire) <= 2);
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let pool = Arc::new(
            ResourcePool::new("tiny", 1 << 20, 1).with_admission(0, Duration::from_secs(1)),
        );
        let g = pool.try_admit().expect("first admission fits");
        let err = pool.try_admit().expect_err("queue of 0 sheds at once");
        assert_eq!(
            err,
            DbError::Overloaded {
                pool: "tiny".into()
            }
        );
        assert_eq!(pool.shed_count(), 1);
        drop(g);
        // Slot free again: admission succeeds.
        assert!(pool.try_admit().is_ok());
    }

    #[test]
    fn queue_timeout_sheds_after_deadline() {
        let pool = Arc::new(
            ResourcePool::new("slowq", 1 << 20, 1).with_admission(4, Duration::from_millis(10)),
        );
        let _g = pool.try_admit().expect("first admission fits");
        let started = Instant::now();
        let err = pool.try_admit().expect_err("waiter times out");
        assert!(matches!(err, DbError::Overloaded { .. }));
        assert!(
            started.elapsed() >= Duration::from_millis(9),
            "shed only after the queue deadline"
        );
        assert_eq!(pool.waiting(), 0, "shed waiter leaves the queue");
    }

    #[test]
    fn queued_waiter_admitted_when_slot_frees() {
        let pool =
            Arc::new(ResourcePool::new("q", 1 << 20, 1).with_admission(4, Duration::from_secs(5)));
        let g = pool.try_admit().expect("first admission fits");
        std::thread::scope(|s| {
            let p2 = Arc::clone(&pool);
            let h = s.spawn(move || p2.try_admit().map(drop).is_ok());
            std::thread::sleep(Duration::from_millis(5));
            drop(g);
            assert!(h.join().unwrap(), "waiter admitted once the slot frees");
        });
        assert_eq!(pool.shed_count(), 0);
    }
}
