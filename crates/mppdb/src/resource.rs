//! Resource pools: named admission-control buckets for query workloads.
//!
//! The paper isolates the connector's data-movement traffic in a
//! dedicated pool sized at half the machine RAM (Sec. 4.1). Our pools
//! track memory budget and bound concurrent statement admissions; the
//! benchmark harness reads the high-water marks when reporting resource
//! usage.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// A named resource pool.
#[derive(Debug)]
pub struct ResourcePool {
    name: String,
    memory_bytes: u64,
    max_concurrency: usize,
    active: Mutex<usize>,
    released: Condvar,
    high_water: AtomicUsize,
}

impl ResourcePool {
    pub fn new(name: impl Into<String>, memory_bytes: u64, max_concurrency: usize) -> ResourcePool {
        ResourcePool {
            name: name.into(),
            memory_bytes,
            max_concurrency: max_concurrency.max(1),
            active: Mutex::new(0),
            released: Condvar::new(),
            high_water: AtomicUsize::new(0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    pub fn max_concurrency(&self) -> usize {
        self.max_concurrency
    }

    /// Admit one statement, queueing while the pool is full (Vertica
    /// queues rather than rejects). Returns a guard releasing the slot.
    pub fn admit(self: &Arc<Self>) -> PoolGuard {
        let started = std::time::Instant::now();
        let mut active = self.active.lock();
        let queued = *active >= self.max_concurrency;
        while *active >= self.max_concurrency {
            self.released.wait(&mut active);
        }
        *active += 1;
        self.high_water.fetch_max(*active, Ordering::AcqRel);
        let now_active = *active;
        drop(active);
        let waited = started.elapsed();
        obs::global().emit(obs::EventKind::PoolAdmit, |e| {
            e.dur_us = waited.as_micros() as u64;
            e.detail = format!(
                "pool {}, {now_active} active{}",
                self.name,
                if queued { ", queued" } else { "" }
            );
        });
        obs::global().add("db.pool_admissions", 1);
        if queued {
            obs::global().add("db.pool_queued", 1);
        }
        obs::global().record_time("db.pool_admit_wait_us", waited);
        PoolGuard {
            pool: Arc::clone(self),
        }
    }

    pub fn active(&self) -> usize {
        *self.active.lock()
    }

    /// Highest concurrent admission count observed.
    pub fn high_water_mark(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }
}

/// RAII admission guard.
pub struct PoolGuard {
    pool: Arc<ResourcePool>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let mut active = self.pool.active.lock();
        *active -= 1;
        self.pool.released.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_tracks_active_and_high_water() {
        let pool = Arc::new(ResourcePool::new("p", 1 << 30, 8));
        let g1 = pool.admit();
        let g2 = pool.admit();
        assert_eq!(pool.active(), 2);
        drop(g1);
        assert_eq!(pool.active(), 1);
        drop(g2);
        assert_eq!(pool.active(), 0);
        assert_eq!(pool.high_water_mark(), 2);
    }

    #[test]
    fn concurrency_bound_enforced() {
        let pool = Arc::new(ResourcePool::new("p", 1 << 30, 2));
        let observed_max = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let observed = Arc::clone(&observed_max);
                s.spawn(move || {
                    let _g = pool.admit();
                    observed.fetch_max(pool.active(), Ordering::AcqRel);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                });
            }
        });
        assert!(observed_max.load(Ordering::Acquire) <= 2);
        assert_eq!(pool.active(), 0);
    }
}
