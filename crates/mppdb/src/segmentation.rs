//! The hash ring: segment boundaries and node placement.
//!
//! The 64-bit hash space is split into `n` contiguous segments, one per
//! node (paper Fig. 4's inner ring). The segment map is part of the
//! system catalog and is queryable by clients — this is the information
//! the connector uses to formulate node-local hash-range queries.

use common::hash;
use common::Row;

/// A half-open hash range `[start, end)`; `end == None` means the range
/// extends to the top of the 64-bit space (inclusive of `u64::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashRange {
    pub start: u64,
    pub end: Option<u64>,
}

impl HashRange {
    pub fn new(start: u64, end: Option<u64>) -> HashRange {
        if let Some(e) = end {
            assert!(start <= e, "range start must not exceed end");
        }
        HashRange { start, end }
    }

    /// The full hash space.
    pub fn full() -> HashRange {
        HashRange {
            start: 0,
            end: None,
        }
    }

    pub fn contains(&self, h: u64) -> bool {
        h >= self.start && self.end.is_none_or(|e| h < e)
    }

    /// Intersection of two ranges, or `None` when disjoint.
    pub fn intersect(&self, other: &HashRange) -> Option<HashRange> {
        let start = self.start.max(other.start);
        let end = match (self.end, other.end) {
            (None, None) => None,
            (Some(a), None) | (None, Some(a)) => Some(a),
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        match end {
            Some(e) if start >= e => None,
            _ => Some(HashRange { start, end }),
        }
    }

    /// Split the range into `parts` near-equal contiguous subranges.
    /// Used by the connector to fan one segment out over several tasks
    /// (Fig. 4(b)) and to produce synthetic ranges.
    pub fn split(&self, parts: usize) -> Vec<HashRange> {
        assert!(parts > 0);
        let start = self.start as u128;
        let end = self.end.map(|e| e as u128).unwrap_or(1u128 << 64);
        let width = end - start;
        let mut out = Vec::with_capacity(parts);
        for i in 0..parts {
            let lo = start + width * i as u128 / parts as u128;
            let hi = start + width * (i + 1) as u128 / parts as u128;
            if lo == hi {
                continue; // range narrower than parts
            }
            out.push(HashRange {
                start: lo as u64,
                end: if hi == 1u128 << 64 {
                    None
                } else {
                    Some(hi as u64)
                },
            });
        }
        out
    }
}

/// The cluster's segment map: segment `i` of `node_count` covers an
/// equal slice of the hash space and is owned by node `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMap {
    node_count: usize,
}

impl SegmentMap {
    pub fn new(node_count: usize) -> SegmentMap {
        assert!(node_count > 0, "cluster needs at least one node");
        SegmentMap { node_count }
    }

    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Boundaries of segment `i` as a hash range.
    pub fn segment_range(&self, segment: usize) -> HashRange {
        assert!(segment < self.node_count);
        let width = (1u128 << 64) / self.node_count as u128;
        let start = (width * segment as u128) as u64;
        let end = if segment + 1 == self.node_count {
            None
        } else {
            Some((width * (segment + 1) as u128) as u64)
        };
        HashRange { start, end }
    }

    /// The node owning the segment that contains hash `h`.
    pub fn owner_of_hash(&self, h: u64) -> usize {
        let width = (1u128 << 64) / self.node_count as u128;
        let seg = (h as u128 / width) as usize;
        seg.min(self.node_count - 1)
    }

    /// The node owning a row given the segmentation column ordinals.
    pub fn owner_of_row(&self, row: &Row, seg_columns: &[usize]) -> usize {
        self.owner_of_hash(hash::hash_row_columns(row, seg_columns))
    }

    /// Buddy nodes holding replicas of node `n`'s segment under
    /// k-safety `k` (the next `k` nodes around the ring).
    pub fn buddies(&self, node: usize, k: usize) -> Vec<usize> {
        (1..=k.min(self.node_count - 1))
            .map(|i| (node + i) % self.node_count)
            .collect()
    }

    /// All `(segment, intersection)` pairs whose segment intersects the
    /// requested range.
    pub fn segments_intersecting(&self, range: &HashRange) -> Vec<(usize, HashRange)> {
        (0..self.node_count)
            .filter_map(|s| self.segment_range(s).intersect(range).map(|r| (s, r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::row;

    #[test]
    fn segments_partition_the_ring() {
        let map = SegmentMap::new(4);
        // Consecutive segments tile the space.
        for s in 0..3 {
            let cur = map.segment_range(s);
            let next = map.segment_range(s + 1);
            assert_eq!(cur.end, Some(next.start));
        }
        assert_eq!(map.segment_range(0).start, 0);
        assert_eq!(map.segment_range(3).end, None);
    }

    #[test]
    fn owner_matches_segment_range() {
        let map = SegmentMap::new(4);
        for h in [0u64, 1, u64::MAX / 4, u64::MAX / 2, u64::MAX] {
            let owner = map.owner_of_hash(h);
            assert!(map.segment_range(owner).contains(h), "hash {h:x}");
        }
    }

    #[test]
    fn row_owner_is_deterministic() {
        let map = SegmentMap::new(3);
        let r = row![17i64, "abc"];
        assert_eq!(map.owner_of_row(&r, &[0]), map.owner_of_row(&r, &[0]));
    }

    #[test]
    fn buddies_wrap_around() {
        let map = SegmentMap::new(4);
        assert_eq!(map.buddies(3, 1), vec![0]);
        assert_eq!(map.buddies(2, 2), vec![3, 0]);
        // k capped at node_count - 1.
        assert_eq!(map.buddies(0, 10).len(), 3);
    }

    #[test]
    fn range_contains_and_intersect() {
        let a = HashRange::new(10, Some(20));
        let b = HashRange::new(15, Some(30));
        assert!(a.contains(10));
        assert!(!a.contains(20));
        assert_eq!(a.intersect(&b), Some(HashRange::new(15, Some(20))));
        let c = HashRange::new(20, Some(25));
        assert_eq!(a.intersect(&c), None);
        let full = HashRange::full();
        assert_eq!(full.intersect(&a), Some(a));
        assert!(full.contains(u64::MAX));
    }

    #[test]
    fn split_covers_exactly() {
        let r = HashRange::full();
        for parts in [1usize, 2, 3, 7, 64] {
            let splits = r.split(parts);
            assert_eq!(splits.len(), parts);
            assert_eq!(splits[0].start, 0);
            assert_eq!(splits[parts - 1].end, None);
            for w in splits.windows(2) {
                assert_eq!(w[0].end, Some(w[1].start));
            }
        }
    }

    #[test]
    fn split_of_narrow_range() {
        let r = HashRange::new(5, Some(7));
        let splits = r.split(4);
        // Only 2 non-empty subranges exist.
        assert_eq!(splits.len(), 2);
        assert!(splits.iter().all(|s| s.end.is_some()));
    }

    #[test]
    fn segments_intersecting_subrange() {
        let map = SegmentMap::new(4);
        // A range spanning the middle two segments.
        let q1 = map.segment_range(1);
        let q2 = map.segment_range(2);
        let r = HashRange::new(q1.start + 5, Some(q2.end.unwrap() - 5));
        let hits = map.segments_intersecting(&r);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 2);
    }
}
