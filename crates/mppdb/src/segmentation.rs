//! The hash ring: segment boundaries and node placement.
//!
//! The 64-bit hash space is split into contiguous segments, each owned
//! by a node (paper Fig. 4's inner ring). The segment map is part of
//! the system catalog and is queryable by clients — this is the
//! information the connector uses to formulate node-local hash-range
//! queries.
//!
//! Since the elastic-cluster work the map is **versioned**: membership
//! changes produce a *new* map (`with_node_added` /
//! `with_node_removed`) with `version + 1`, and the cluster keeps the
//! whole history so a reader can resolve ownership through the map
//! that was authoritative at its snapshot epoch. Maps are immutable
//! values; the cluster decides when a new version becomes
//! authoritative (at an epoch boundary, after the rebalancer has
//! copied every migrating range).

use common::hash;
use common::Row;

/// A half-open hash range `[start, end)`; `end == None` means the range
/// extends to the top of the 64-bit space (inclusive of `u64::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashRange {
    pub start: u64,
    pub end: Option<u64>,
}

impl HashRange {
    pub fn new(start: u64, end: Option<u64>) -> HashRange {
        if let Some(e) = end {
            assert!(start <= e, "range start must not exceed end");
        }
        HashRange { start, end }
    }

    /// The full hash space.
    pub fn full() -> HashRange {
        HashRange {
            start: 0,
            end: None,
        }
    }

    pub fn contains(&self, h: u64) -> bool {
        h >= self.start && self.end.is_none_or(|e| h < e)
    }

    /// Number of hash points in the range (`u64::MAX + 1` for the full
    /// ring, hence the `u128`).
    pub fn width(&self) -> u128 {
        let end = self.end.map(|e| e as u128).unwrap_or(1u128 << 64);
        end - self.start as u128
    }

    /// Intersection of two ranges, or `None` when disjoint.
    pub fn intersect(&self, other: &HashRange) -> Option<HashRange> {
        let start = self.start.max(other.start);
        let end = match (self.end, other.end) {
            (None, None) => None,
            (Some(a), None) | (None, Some(a)) => Some(a),
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        match end {
            Some(e) if start >= e => None,
            _ => Some(HashRange { start, end }),
        }
    }

    /// Split the range into `parts` near-equal contiguous subranges.
    /// Used by the connector to fan one segment out over several tasks
    /// (Fig. 4(b)) and to produce synthetic ranges.
    ///
    /// # Contract
    ///
    /// The returned pieces always tile `self` exactly (no gaps, no
    /// overlap, first piece starts at `self.start`, last piece ends at
    /// `self.end`) — but the *count* of pieces is
    /// `min(parts, width)`: a range narrower than `parts` hash points
    /// cannot be cut into `parts` non-empty half-open pieces, so
    /// degenerate ranges return **fewer pieces than requested**.
    /// Callers that pre-allocate per-piece state (the V2S piece
    /// planner, task accounting) must size it from `splits.len()`,
    /// never from `parts`.
    pub fn split(&self, parts: usize) -> Vec<HashRange> {
        assert!(parts > 0);
        let start = self.start as u128;
        let end = self.end.map(|e| e as u128).unwrap_or(1u128 << 64);
        let width = end - start;
        let mut out = Vec::with_capacity(parts);
        for i in 0..parts {
            let lo = start + width * i as u128 / parts as u128;
            let hi = start + width * (i + 1) as u128 / parts as u128;
            if lo == hi {
                continue; // range narrower than parts: piece would be empty
            }
            out.push(HashRange {
                start: lo as u64,
                end: if hi == 1u128 << 64 {
                    None
                } else {
                    Some(hi as u64)
                },
            });
        }
        out
    }
}

/// One contiguous slice of the ring and the node that owns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub range: HashRange,
    pub owner: usize,
}

/// One range a rebalance must copy to one node: the unit of the
/// migration plan computed by [`SegmentMap::migration_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMove {
    pub range: HashRange,
    /// The node that must *receive* a copy of `range` (a new owner or a
    /// new buddy under the target map).
    pub node: usize,
}

/// A versioned segment map: an explicit list of contiguous segments
/// tiling the 64-bit ring, each pinned to an owning node, plus the
/// sorted member list. `SegmentMap::new(n)` builds version 0 — the
/// classic equal split where segment `i` is owned by node `i` — and
/// membership changes derive successor versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMap {
    version: u64,
    /// Sorted ids of member nodes. Node ids are stable for the life of
    /// the cluster: removing node 1 from `{0,1,2}` leaves `{0,2}`, it
    /// does not renumber node 2.
    members: Vec<usize>,
    /// Contiguous, sorted by `range.start`, tiling the full ring.
    segments: Vec<Segment>,
}

impl SegmentMap {
    /// The initial (version 0) map: an equal split of the ring over
    /// nodes `0..node_count`, segment `i` owned by node `i`.
    pub fn new(node_count: usize) -> SegmentMap {
        assert!(node_count > 0, "cluster needs at least one node");
        let width = (1u128 << 64) / node_count as u128;
        let segments = (0..node_count)
            .map(|i| {
                let start = (width * i as u128) as u64;
                let end = if i + 1 == node_count {
                    None
                } else {
                    Some((width * (i + 1) as u128) as u64)
                };
                Segment {
                    range: HashRange { start, end },
                    owner: i,
                }
            })
            .collect();
        SegmentMap {
            version: 0,
            members: (0..node_count).collect(),
            segments,
        }
    }

    /// Rebuild a map from its catalog representation (version, member
    /// list, segment list) — the round-trip used when a client
    /// refreshes its map from `dc_segment_map`. Panics if the segments
    /// do not tile the ring or an owner is not a member.
    pub fn from_parts(version: u64, members: Vec<usize>, segments: Vec<Segment>) -> SegmentMap {
        assert!(!members.is_empty(), "map needs at least one member");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted and unique"
        );
        assert!(!segments.is_empty(), "map needs at least one segment");
        assert_eq!(segments[0].range.start, 0, "segments must start at 0");
        assert_eq!(
            // fabriclint: allow(panic-hygiene): non-empty asserted just above
            segments.last().unwrap().range.end,
            None,
            "segments must reach the top of the ring"
        );
        for w in segments.windows(2) {
            assert_eq!(
                w[0].range.end,
                Some(w[1].range.start),
                "segments must tile the ring without gaps"
            );
        }
        for s in &segments {
            assert!(
                members.binary_search(&s.owner).is_ok(),
                "segment owner {} is not a member",
                s.owner
            );
        }
        SegmentMap {
            version,
            members,
            segments,
        }
    }

    /// The version of this map. Version 0 is the map pinned at
    /// `Cluster::new`; each membership change increments it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Sorted ids of the member nodes.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether `node` is a member of this map version.
    pub fn is_member(&self, node: usize) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// The explicit segment list, sorted by range start, tiling the
    /// full ring.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Boundaries of segment `i` as a hash range. For a version-0 map
    /// this is the classic equal slice owned by node `i`; successor
    /// versions may hold more segments than members.
    pub fn segment_range(&self, segment: usize) -> HashRange {
        self.segments[segment].range
    }

    /// Total fraction of the ring owned by `node` (0.0 to 1.0).
    pub fn owned_fraction(&self, node: usize) -> f64 {
        let owned: u128 = self
            .segments
            .iter()
            .filter(|s| s.owner == node)
            .map(|s| s.range.width())
            .sum();
        owned as f64 / (1u128 << 64) as f64
    }

    /// The node owning the segment that contains hash `h`.
    pub fn owner_of_hash(&self, h: u64) -> usize {
        // Last segment whose start <= h; segments tile the ring so it
        // always exists and contains h.
        let idx = match self.segments.partition_point(|s| s.range.start <= h) {
            0 => 0,
            p => p - 1,
        };
        self.segments[idx].owner
    }

    /// The node owning a row given the segmentation column ordinals.
    pub fn owner_of_row(&self, row: &Row, seg_columns: &[usize]) -> usize {
        self.owner_of_hash(hash::hash_row_columns(row, seg_columns))
    }

    /// Buddy nodes holding replicas of node `n`'s data under k-safety
    /// `k`: the next `k` member nodes around the ring (by member-list
    /// order, wrapping). For the version-0 map over `0..n` this is the
    /// classic `(node + i) % n`.
    pub fn buddies(&self, node: usize, k: usize) -> Vec<usize> {
        let m = self.members.len();
        let pos = self
            .members
            .binary_search(&node)
            .unwrap_or_else(|p| p % m.max(1));
        (1..=k.min(m.saturating_sub(1)))
            .map(|i| self.members[(pos + i) % m])
            .collect()
    }

    /// All `(owner, intersection)` pairs for segments intersecting the
    /// requested range, in ring order. A node owning several segments
    /// in the range appears once per segment.
    pub fn segments_intersecting(&self, range: &HashRange) -> Vec<(usize, HashRange)> {
        self.segments
            .iter()
            .filter_map(|s| s.range.intersect(range).map(|r| (s.owner, r)))
            .collect()
    }

    /// Derive the successor map with `node` added: the trailing
    /// `1/(m+1)` fraction of every existing segment is carved off and
    /// reassigned to the new node (`m` = current member count). This
    /// moves exactly `1/(m+1)` of the ring — the information-theoretic
    /// minimum for an equal-share rebalance — and keeps the map
    /// balanced if it was balanced before.
    pub fn with_node_added(&self, node: usize) -> SegmentMap {
        assert!(!self.is_member(node), "node {node} is already a member");
        let m = self.members.len() as u128;
        let mut segments = Vec::with_capacity(self.segments.len() * 2);
        for seg in &self.segments {
            let start = seg.range.start as u128;
            let end = seg.range.end.map(|e| e as u128).unwrap_or(1u128 << 64);
            let cut = start + (end - start) * m / (m + 1);
            if cut > start && cut < end {
                segments.push(Segment {
                    range: HashRange {
                        start: seg.range.start,
                        end: Some(cut as u64),
                    },
                    owner: seg.owner,
                });
                segments.push(Segment {
                    range: HashRange {
                        start: cut as u64,
                        end: seg.range.end,
                    },
                    owner: node,
                });
            } else {
                // Segment too narrow to carve: keep it whole.
                segments.push(*seg);
            }
        }
        let mut members = self.members.clone();
        let pos = members.binary_search(&node).unwrap_err();
        members.insert(pos, node);
        SegmentMap {
            version: self.version + 1,
            members,
            segments: merge_adjacent(segments),
        }
    }

    /// Derive the successor map with `node` removed: its segments are
    /// reassigned round-robin over the remaining members (ids stay
    /// stable — no renumbering), then adjacent same-owner segments
    /// merge. Panics when removing the last member.
    pub fn with_node_removed(&self, node: usize) -> SegmentMap {
        assert!(self.is_member(node), "node {node} is not a member");
        assert!(self.members.len() > 1, "cannot remove the last member");
        let remaining: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|&n| n != node)
            .collect();
        let mut next = 0usize;
        let segments = self
            .segments
            .iter()
            .map(|seg| {
                if seg.owner == node {
                    let owner = remaining[next % remaining.len()];
                    next += 1;
                    Segment {
                        range: seg.range,
                        owner,
                    }
                } else {
                    *seg
                }
            })
            .collect();
        SegmentMap {
            version: self.version + 1,
            members: remaining,
            segments: merge_adjacent(segments),
        }
    }

    /// The minimal copy plan to go from `self` to `target` under
    /// k-safety `k`: for every interval of the overlaid ring, any node
    /// that holds a replica (owner or buddy) under `target` but not
    /// under `self` must receive a copy of that interval. Adjacent
    /// intervals bound for the same node are merged. Intervals whose
    /// replica set is unchanged (or shrinks) copy nothing — this is
    /// what makes the plan minimal.
    pub fn migration_plan(&self, target: &SegmentMap, k: usize) -> Vec<SegmentMove> {
        // Overlay: every boundary from either map.
        let mut cuts: Vec<u64> = self
            .segments
            .iter()
            .chain(target.segments.iter())
            .map(|s| s.range.start)
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut moves: Vec<SegmentMove> = Vec::new();
        for (i, &start) in cuts.iter().enumerate() {
            let end = cuts.get(i + 1).copied();
            let range = HashRange { start, end };
            let old_owner = self.owner_of_hash(start);
            let new_owner = target.owner_of_hash(start);
            let mut old_set = vec![old_owner];
            old_set.extend(self.buddies(old_owner, k));
            let mut new_set = vec![new_owner];
            new_set.extend(target.buddies(new_owner, k));
            for node in new_set {
                if old_set.contains(&node) {
                    continue;
                }
                // Merge with the previous move when contiguous and for
                // the same node.
                if let Some(last) = moves
                    .iter_mut()
                    .rev()
                    .find(|m| m.node == node && m.range.end == Some(start))
                {
                    last.range.end = end;
                } else {
                    moves.push(SegmentMove { range, node });
                }
            }
        }
        moves
    }
}

/// Merge possibly-overlapping hash ranges into the minimal sorted list
/// of disjoint ranges covering their union — so a consumer importing
/// each merged range copies every covered row exactly once.
pub fn merge_ranges(mut ranges: Vec<HashRange>) -> Vec<HashRange> {
    const TOP: u128 = 1 << 64;
    ranges.retain(|r| r.width() > 0);
    ranges.sort_by_key(|r| r.start);
    let mut merged: Vec<HashRange> = Vec::new();
    for r in ranges {
        let rend = r.end.map(u128::from).unwrap_or(TOP);
        match merged.last_mut() {
            Some(last) if u128::from(r.start) <= last.end.map(u128::from).unwrap_or(TOP) => {
                if rend > last.end.map(u128::from).unwrap_or(TOP) {
                    last.end = if rend == TOP { None } else { Some(rend as u64) };
                }
            }
            _ => merged.push(r),
        }
    }
    merged
}

/// Merge runs of adjacent segments with the same owner.
fn merge_adjacent(segments: Vec<Segment>) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
    for seg in segments {
        match out.last_mut() {
            Some(last) if last.owner == seg.owner && last.range.end == Some(seg.range.start) => {
                last.range.end = seg.range.end;
            }
            _ => out.push(seg),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::row;
    use proptest::prelude::*;

    #[test]
    fn segments_partition_the_ring() {
        let map = SegmentMap::new(4);
        // Consecutive segments tile the space.
        for s in 0..3 {
            let cur = map.segment_range(s);
            let next = map.segment_range(s + 1);
            assert_eq!(cur.end, Some(next.start));
        }
        assert_eq!(map.segment_range(0).start, 0);
        assert_eq!(map.segment_range(3).end, None);
    }

    #[test]
    fn owner_matches_segment_range() {
        let map = SegmentMap::new(4);
        for h in [0u64, 1, u64::MAX / 4, u64::MAX / 2, u64::MAX] {
            let owner = map.owner_of_hash(h);
            let seg = map
                .segments()
                .iter()
                .find(|s| s.owner == owner && s.range.contains(h));
            assert!(seg.is_some(), "hash {h:x}");
        }
    }

    #[test]
    fn row_owner_is_deterministic() {
        let map = SegmentMap::new(3);
        let r = row![17i64, "abc"];
        assert_eq!(map.owner_of_row(&r, &[0]), map.owner_of_row(&r, &[0]));
    }

    #[test]
    fn buddies_wrap_around() {
        let map = SegmentMap::new(4);
        assert_eq!(map.buddies(3, 1), vec![0]);
        assert_eq!(map.buddies(2, 2), vec![3, 0]);
        // k capped at node_count - 1.
        assert_eq!(map.buddies(0, 10).len(), 3);
    }

    #[test]
    fn buddies_skip_removed_members() {
        let map = SegmentMap::new(4).with_node_removed(2);
        // Ring order over members {0, 1, 3}: after 1 comes 3, not 2.
        assert_eq!(map.buddies(1, 1), vec![3]);
        assert_eq!(map.buddies(3, 1), vec![0]);
        assert_eq!(map.buddies(0, 2), vec![1, 3]);
    }

    #[test]
    fn range_contains_and_intersect() {
        let a = HashRange::new(10, Some(20));
        let b = HashRange::new(15, Some(30));
        assert!(a.contains(10));
        assert!(!a.contains(20));
        assert_eq!(a.intersect(&b), Some(HashRange::new(15, Some(20))));
        let c = HashRange::new(20, Some(25));
        assert_eq!(a.intersect(&c), None);
        let full = HashRange::full();
        assert_eq!(full.intersect(&a), Some(a));
        assert!(full.contains(u64::MAX));
    }

    #[test]
    fn split_covers_exactly() {
        let r = HashRange::full();
        for parts in [1usize, 2, 3, 7, 64] {
            let splits = r.split(parts);
            assert_eq!(splits.len(), parts);
            assert_eq!(splits[0].start, 0);
            assert_eq!(splits[parts - 1].end, None);
            for w in splits.windows(2) {
                assert_eq!(w[0].end, Some(w[1].start));
            }
        }
    }

    /// The documented degenerate case: a range narrower than `parts`
    /// returns `width` pieces, not `parts` — but still tiles exactly.
    #[test]
    fn split_of_narrow_range() {
        let r = HashRange::new(5, Some(7));
        let splits = r.split(4);
        // Only 2 non-empty subranges exist (width 2 < parts 4).
        assert_eq!(splits.len(), 2);
        assert!(splits.iter().all(|s| s.end.is_some()));
        // The shortfall pieces still tile the original range.
        assert_eq!(splits[0].start, 5);
        assert_eq!(splits.last().unwrap().end, Some(7));
        for w in splits.windows(2) {
            assert_eq!(w[0].end, Some(w[1].start));
        }
        // Fully degenerate: width 1 can only ever be one piece.
        let one = HashRange::new(9, Some(10)).split(16);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], HashRange::new(9, Some(10)));
        // Empty range yields no pieces at all.
        assert!(HashRange::new(9, Some(9)).split(3).is_empty());
    }

    #[test]
    fn merge_ranges_unions_overlaps() {
        let merged = merge_ranges(vec![
            HashRange::new(50, Some(80)),
            HashRange::new(0, Some(10)),
            HashRange::new(5, Some(20)),
            HashRange::new(20, Some(30)),
            HashRange::new(60, None),
            HashRange::new(90, Some(90)), // empty: dropped
        ]);
        assert_eq!(
            merged,
            vec![HashRange::new(0, Some(30)), HashRange::new(50, None)]
        );
        // A contained range does not shrink its container.
        let merged = merge_ranges(vec![HashRange::new(0, None), HashRange::new(10, Some(20))]);
        assert_eq!(merged, vec![HashRange::new(0, None)]);
        assert!(merge_ranges(Vec::new()).is_empty());
    }

    #[test]
    fn segments_intersecting_subrange() {
        let map = SegmentMap::new(4);
        // A range spanning the middle two segments.
        let q1 = map.segment_range(1);
        let q2 = map.segment_range(2);
        let r = HashRange::new(q1.start + 5, Some(q2.end.unwrap() - 5));
        let hits = map.segments_intersecting(&r);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 2);
    }

    #[test]
    fn add_node_moves_minimal_fraction() {
        let map = SegmentMap::new(4);
        let grown = map.with_node_added(4);
        assert_eq!(grown.version(), 1);
        assert_eq!(grown.members(), &[0, 1, 2, 3, 4]);
        // The new node owns exactly 1/5 of the ring; old owners keep
        // 4/5 of their former share.
        assert!((grown.owned_fraction(4) - 0.2).abs() < 1e-9);
        for n in 0..4 {
            assert!((grown.owned_fraction(n) - 0.2).abs() < 1e-9);
        }
        // Any hash not owned by the new node kept its old owner: the
        // *only* data that moves is what lands on node 4.
        for h in (0..64).map(|i| i * (u64::MAX / 63)) {
            let new_owner = grown.owner_of_hash(h);
            if new_owner != 4 {
                assert_eq!(new_owner, map.owner_of_hash(h), "hash {h:x}");
            }
        }
    }

    #[test]
    fn remove_node_keeps_ids_stable() {
        let map = SegmentMap::new(4);
        let shrunk = map.with_node_removed(1);
        assert_eq!(shrunk.version(), 1);
        assert_eq!(shrunk.members(), &[0, 2, 3]);
        assert_eq!(shrunk.node_count(), 3);
        // Node 1's former range is served by a remaining member; all
        // other ranges kept their owner.
        for h in (0..64).map(|i| i * (u64::MAX / 63)) {
            let owner = shrunk.owner_of_hash(h);
            assert_ne!(owner, 1);
            if map.owner_of_hash(h) != 1 {
                assert_eq!(owner, map.owner_of_hash(h), "hash {h:x}");
            }
        }
    }

    #[test]
    fn migration_plan_for_node_add_targets_only_new_replicas() {
        let map = SegmentMap::new(4);
        let grown = map.with_node_added(4);
        let plan = map.migration_plan(&grown, 0);
        // k=0: only the new owner receives copies, and every move
        // targets node 4.
        assert!(!plan.is_empty());
        assert!(plan.iter().all(|m| m.node == 4));
        // The plan covers exactly the ranges node 4 now owns.
        let moved: u128 = plan.iter().map(|m| m.range.width()).sum();
        let owned: u128 = grown
            .segments()
            .iter()
            .filter(|s| s.owner == 4)
            .map(|s| s.range.width())
            .sum();
        assert_eq!(moved, owned);
    }

    #[test]
    fn migration_plan_with_buddies_covers_new_buddy_holders() {
        let map = SegmentMap::new(3);
        let grown = map.with_node_added(3);
        let plan = map.migration_plan(&grown, 1);
        // Under k=1 the new node needs its owned ranges AND the ranges
        // it buddies for; some old nodes gain buddy ranges too. Every
        // move targets a node that did not hold the range before.
        for m in &plan {
            let old_owner = map.owner_of_hash(m.range.start);
            let mut old_set = vec![old_owner];
            old_set.extend(map.buddies(old_owner, 1));
            assert!(
                !old_set.contains(&m.node),
                "move to {} of a range it already held",
                m.node
            );
        }
        assert!(plan.iter().any(|m| m.node == 3));
    }

    #[test]
    fn map_round_trips_through_parts() {
        let map = SegmentMap::new(4).with_node_added(4).with_node_removed(1);
        let rebuilt = SegmentMap::from_parts(
            map.version(),
            map.members().to_vec(),
            map.segments().to_vec(),
        );
        assert_eq!(map, rebuilt);
    }

    proptest! {
        /// At any node count — power of two or not — segments tile the
        /// ring exactly: start at 0, end at the top, no gaps.
        #[test]
        fn prop_segments_partition_ring(n in 1usize..23) {
            let map = SegmentMap::new(n);
            let segs = map.segments();
            prop_assert_eq!(segs[0].range.start, 0);
            prop_assert_eq!(segs.last().unwrap().range.end, None);
            for w in segs.windows(2) {
                prop_assert_eq!(w[0].range.end, Some(w[1].range.start));
            }
        }

        /// `owner_of_hash` agrees with `segments_intersecting`: the
        /// segment found by intersection carries the same owner.
        #[test]
        fn prop_owner_agrees_with_intersection(n in 1usize..23, h in any::<u64>()) {
            let map = SegmentMap::new(n);
            let owner = map.owner_of_hash(h);
            let point = HashRange { start: h, end: h.checked_add(1) };
            let hits = map.segments_intersecting(&point);
            prop_assert_eq!(hits.len(), 1);
            prop_assert_eq!(hits[0].0, owner);
        }

        /// Membership changes preserve the partition invariant and
        /// ownership survives a catalog round-trip unchanged.
        #[test]
        fn prop_membership_changes_keep_partition(
            n in 2usize..17,
            remove_pos in 0usize..16,
            h in any::<u64>(),
        ) {
            let base = SegmentMap::new(n);
            let grown = base.with_node_added(n);
            let shrunk = grown.with_node_removed(remove_pos % n);
            for map in [&grown, &shrunk] {
                let segs = map.segments();
                prop_assert_eq!(segs[0].range.start, 0);
                prop_assert_eq!(segs.last().unwrap().range.end, None);
                for w in segs.windows(2) {
                    prop_assert_eq!(w[0].range.end, Some(w[1].range.start));
                }
                // Every owner is a member.
                for s in segs {
                    prop_assert!(map.is_member(s.owner));
                }
                // Round-trip through the catalog representation is
                // lossless: same version, members, and ownership.
                let rebuilt = SegmentMap::from_parts(
                    map.version(),
                    map.members().to_vec(),
                    map.segments().to_vec(),
                );
                prop_assert_eq!(map.clone(), rebuilt.clone());
                prop_assert_eq!(map.owner_of_hash(h), rebuilt.owner_of_hash(h));
            }
        }

        /// Splitting any subrange tiles it exactly, even degenerate
        /// (width < parts) ones — the count may fall short but never
        /// the coverage.
        #[test]
        fn prop_split_tiles_exactly(start in any::<u64>(), len in 0u64..1000, parts in 1usize..12) {
            let end = start.saturating_add(len);
            let r = HashRange::new(start.min(end), Some(end));
            let splits = r.split(parts);
            let width = r.width() as usize;
            prop_assert_eq!(splits.len(), parts.min(width));
            if width > 0 {
                prop_assert_eq!(splits[0].start, r.start);
                prop_assert_eq!(splits.last().unwrap().end, r.end);
                for w in splits.windows(2) {
                    prop_assert_eq!(w[0].end, Some(w[1].start));
                }
            }
        }
    }
}
